//! Control-theoretic tour of Section 4: stability, damping, and the
//! delay-ratio design rule, on both the analytic model and the ODE.
//!
//! ```text
//! cargo run --release --example stability_analysis
//! ```

use mcd_analysis::{step_response, ModelParams, OdeModel, OdeState, SystemParams};

fn main() {
    // Remark 1: the characteristic roots stay in the left half-plane for
    // any positive parameters.
    println!("Remark 1 — stability for any positive setting");
    for (t_m0, t_l0) in [(50.0, 8.0), (10.0, 2.0), (400.0, 100.0)] {
        let sys = SystemParams {
            t_m0,
            t_l0,
            ..SystemParams::paper_default()
        };
        let (r1, r2) = sys.roots();
        println!(
            "  T_m0={t_m0:>5}  T_l0={t_l0:>5}  roots = {r1}, {r2}  stable = {}",
            sys.is_stable()
        );
    }

    // Remark 3: the delay ratio controls the damping ratio and overshoot.
    println!("\nRemark 3 — overshoot vs T_m0/T_l0 (paper picks 50/8 = 6.25)");
    for ratio in [1.0, 2.0, 4.0, 6.25, 8.0, 12.0] {
        let sys = SystemParams {
            t_m0: 8.0 * ratio,
            t_l0: 8.0,
            ..SystemParams::paper_default()
        };
        let m = step_response(&sys);
        println!(
            "  ratio {ratio:>5.2}: xi = {:.3}  overshoot = {:>5.1}%  rise = {:>6.1}",
            sys.damping_ratio(),
            m.overshoot * 100.0,
            m.rise_time
        );
    }

    // The nonlinear model: a square-wave workload and the frequency the
    // controller settles on.
    println!("\nNonlinear model (eqs 7-9) under a square-wave load:");
    let model = OdeModel::new(ModelParams::paper_default());
    let init = OdeState {
        t: 0.0,
        q: 4.0,
        f: 1.0,
    };
    let traj = model.simulate(init, 0.05, 40_000, |t| {
        if ((t / 250.0) as u64).is_multiple_of(2) {
            0.85
        } else {
            0.45
        }
    });
    for s in traj.iter().step_by(4_000) {
        println!("  t = {:>7.1}  q = {:>6.2}  f = {:.3}", s.t, s.q, s.f);
    }
    println!(
        "  equilibria: f(0.85) = {:.3}, f(0.45) = {:.3}",
        model.equilibrium_frequency(0.85),
        model.equilibrium_frequency(0.45)
    );
}
