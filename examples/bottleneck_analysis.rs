//! Bottleneck analysis: where does dispatch stall, and how does the DVFS
//! controller shift the picture?
//!
//! ```text
//! cargo run --release --example bottleneck_analysis
//! ```

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_sim::metrics::StallCause;
use mcd_sim::{DomainId, Machine, SimConfig, SimResult};
use mcd_workloads::{registry, TraceGenerator};

fn run(name: &str, adaptive: bool) -> SimResult {
    let spec = registry::by_name(name).expect("registered benchmark");
    let mut m = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 200_000, 1));
    if adaptive {
        m = m.with_controllers(|d| {
            Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d)))
        });
    }
    m.run()
}

fn report(name: &str, r: &SimResult, label: &str) {
    let fe_cycles = r.domain(DomainId::FrontEnd).cycles;
    let total = r.metrics.total_dispatch_stalls();
    println!(
        "{name} [{label}]: IPC {:.2}, {} dispatch-stall cycles ({:.1}% of front-end cycles)",
        r.ipc(),
        total,
        total as f64 / fe_cycles as f64 * 100.0
    );
    for &cause in &StallCause::ALL {
        let n = r.metrics.dispatch_stalls[cause.index()];
        if n > 0 {
            println!(
                "    {cause:<16} {n:>8}  ({:.1}%)",
                n as f64 / total.max(1) as f64 * 100.0
            );
        }
    }
}

fn main() {
    for name in ["adpcm_decode", "mcf", "swim"] {
        let base = run(name, false);
        report(name, &base, "baseline");
        let adap = run(name, true);
        report(name, &adap, "adaptive");
        println!(
            "    queue peaks (INT/FP/LS): baseline {:?}, adaptive {:?}\n",
            base.queue_peaks, adap.queue_peaks
        );
    }
    println!(
        "Reading guide: under the adaptive controller the controlled domains run\n\
         slower, so their queues absorb more of the slack — stall cycles migrate\n\
         from the ROB toward the issue queues of whichever domain was scaled."
    );
}
