//! Trace tooling tour: export a generated trace to the text format, read
//! it back, and analyze the queue-occupancy series with the spectral
//! toolkit (spectrum, band variance, autocorrelation).
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use mcd_analysis::spectrum::{dominant_wavelength, multitaper};
use mcd_analysis::WorkloadClassifier;
use mcd_sim::{DomainId, Machine, SimConfig};
use mcd_workloads::{synthetic, trace_io, TraceGenerator, TraceStats};

fn main() {
    // A square wave with a 30k-instruction period.
    let spec = synthetic::square_wave(30_000, 0.5);
    let ops = 240_000;

    // Export / reimport through the text trace format.
    let trace: Vec<_> = TraceGenerator::new(&spec, ops, 3).collect();
    let mut text = Vec::new();
    trace_io::write_trace(trace.iter().copied(), &mut text).expect("write to memory");
    println!(
        "exported {} ops as {} KiB of text",
        trace.len(),
        text.len() / 1024
    );
    let reloaded = trace_io::read_trace(text.as_slice()).expect("reparse own output");
    assert_eq!(trace, reloaded);
    let stats = TraceStats::from_trace(&reloaded);
    println!(
        "reimported: fp fraction {:.3}, mem fraction {:.3}, mean dep distance {:.1}\n",
        stats.fp_fraction(),
        stats.mem_fraction(),
        stats.mean_dep_distance
    );

    // Simulate with traces on, then analyze the FP queue's occupancy.
    let result = Machine::new(SimConfig::default().with_traces(), reloaded.into_iter()).run();
    let occupancy = result
        .metrics
        .occupancy_series(DomainId::Fp.backend_index());
    println!("FP queue: {} samples recorded", occupancy.len());

    let spectrum = multitaper(&occupancy, 4);
    println!(
        "total occupancy variance: {:.2} entries^2",
        spectrum.total_variance()
    );

    let c = WorkloadClassifier::default().classify(&occupancy);
    println!(
        "fast-band variance: {:.2} entries^2 -> {}",
        c.fast_variance,
        if c.is_fast {
            "FAST workload"
        } else {
            "slow workload"
        }
    );

    if let Some(w) = dominant_wavelength(&occupancy) {
        println!(
            "dominant wavelength from autocorrelation: ~{w:.0} samples \
             (~{:.0}k instructions at the observed rate)",
            w * result.instructions as f64 / result.metrics.samples as f64 / 1e3
        );
    }
}
