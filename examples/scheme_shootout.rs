//! Scheme shootout: adaptive vs PID vs attack/decay on a media workload
//! with fast phase alternation (the paper's motivating scenario).
//!
//! ```text
//! cargo run --release --example scheme_shootout
//! ```

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_baselines::{AttackDecayController, PidController};
use mcd_sim::{DomainId, DvfsController, Machine, SimConfig, SimResult};
use mcd_workloads::{registry, TraceGenerator};

fn simulate(
    benchmark: &str,
    ops: u64,
    make: Option<&dyn Fn(DomainId) -> Box<dyn DvfsController>>,
) -> SimResult {
    let spec = registry::by_name(benchmark).expect("registered benchmark");
    let mut machine = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, 1));
    if let Some(make) = make {
        for &d in &DomainId::BACKEND {
            machine = machine.with_controller(d, make(d));
        }
    }
    machine.run()
}

fn main() {
    let benchmark = "mpeg2_decode";
    let ops = 400_000;
    println!("benchmark: {benchmark} — IDCT / motion / VLD macroblock loop, fast alternation\n");

    let baseline = simulate(benchmark, ops, None);

    type ControllerFactory = Box<dyn Fn(DomainId) -> Box<dyn DvfsController>>;
    let schemes: Vec<(&str, ControllerFactory)> = vec![
        (
            "adaptive (this paper)",
            Box::new(|d| {
                Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d)))
                    as Box<dyn DvfsController>
            }),
        ),
        (
            "PID, 10k-inst interval",
            Box::new(|d| Box::new(PidController::for_domain(d)) as Box<dyn DvfsController>),
        ),
        (
            "attack/decay",
            Box::new(|d| Box::new(AttackDecayController::for_domain(d)) as Box<dyn DvfsController>),
        ),
    ];

    println!(
        "{:24}  {:>9}  {:>9}  {:>9}  {:>13}",
        "scheme", "energy", "slowdown", "EDP gain", "DVFS actions"
    );
    println!("{}", "-".repeat(72));
    for (name, make) in &schemes {
        let r = simulate(benchmark, ops, Some(make.as_ref()));
        let actions: u64 = r.metrics.dvfs_actions.iter().sum();
        println!(
            "{:24}  {:>8.1}%  {:>8.1}%  {:>8.1}%  {:>13}",
            name,
            r.energy_savings_vs(&baseline) * 100.0,
            r.perf_degradation_vs(&baseline) * 100.0,
            r.edp_improvement_vs(&baseline) * 100.0,
            actions
        );
    }
    println!("\n(positive energy/EDP numbers are improvements over the full-speed baseline)");
}
