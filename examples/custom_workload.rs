//! Building a custom workload: define your own phase program, run it under
//! adaptive DVFS, and inspect the queue-occupancy spectrum.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_analysis::WorkloadClassifier;
use mcd_sim::{DomainId, Machine, SimConfig};
use mcd_workloads::{
    BenchmarkSpec, InstructionMix, PhaseSpec, Suite, TraceGenerator, VariabilityClass,
};

fn main() {
    // A hypothetical audio pipeline: short FP filter bursts between long
    // integer framing phases.
    let custom = BenchmarkSpec {
        name: "audio_pipeline",
        suite: Suite::MediaBench,
        description: "synthetic example: FP filter bursts inside integer framing",
        phases: vec![
            PhaseSpec::new("frame", InstructionMix::integer_kernel(), 24_000)
                .with_dep_mean(4.0)
                .with_misses(0.02, 0.2),
            PhaseSpec::new("filter", InstructionMix::fp_burst(), 12_000)
                .with_dep_mean(8.0)
                .with_misses(0.03, 0.2),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    };

    let ops = 300_000;
    let cfg = SimConfig::default().with_traces();
    let baseline = Machine::new(cfg.clone(), TraceGenerator::new(&custom, ops, 7)).run();
    let adaptive = Machine::new(cfg, TraceGenerator::new(&custom, ops, 7))
        .with_controllers(|d| Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d))))
        .run();

    println!("custom benchmark: {} — {}", custom.name, custom.description);
    println!(
        "adaptive vs baseline: {:+.1}% energy, {:+.1}% time, {:+.1}% EDP\n",
        adaptive.energy_savings_vs(&baseline) * 100.0,
        adaptive.perf_degradation_vs(&baseline) * 100.0,
        adaptive.edp_improvement_vs(&baseline) * 100.0
    );

    // Classify the workload's variability from its FP-queue spectrum, the
    // way Table 2 does.
    let classifier = WorkloadClassifier::default();
    for &d in &DomainId::BACKEND {
        let series = baseline.metrics.occupancy_series(d.backend_index());
        let c = classifier.classify(&series);
        println!(
            "{:>3} queue: fast-band variance {:>7.2} / total {:>7.2}  -> {}",
            format!("{d}"),
            c.fast_variance,
            c.total_variance,
            if c.is_fast {
                "FAST workload"
            } else {
                "slow workload"
            }
        );
    }
}
