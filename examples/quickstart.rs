//! Quickstart: simulate one benchmark under adaptive DVFS and compare it
//! to the full-speed baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_sim::{DomainId, Machine, SimConfig};
use mcd_workloads::{registry, TraceGenerator};

fn main() {
    let ops = 200_000;
    let spec = registry::by_name("gzip").expect("gzip is a registered benchmark");
    println!(
        "benchmark: {} ({}) — {}",
        spec.name, spec.suite, spec.description
    );

    // Full-speed MCD baseline: no controllers attached.
    let baseline = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, 1)).run();

    // The paper's adaptive controller on each back-end domain.
    let adaptive = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, 1))
        .with_controllers(|d| Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d))))
        .run();

    println!("\n                      baseline     adaptive");
    println!(
        "execution time     {:>11}  {:>11}",
        format!("{}", baseline.sim_time),
        format!("{}", adaptive.sim_time)
    );
    println!(
        "total energy       {:>11}  {:>11}",
        format!("{}", baseline.total_energy()),
        format!("{}", adaptive.total_energy())
    );
    println!(
        "IPC                {:>11.3}  {:>11.3}",
        baseline.ipc(),
        adaptive.ipc()
    );
    for &d in &DomainId::ALL {
        println!(
            "mean f/f_max {:>5}  {:>11.3}  {:>11.3}",
            format!("{d}"),
            baseline.domain(d).mean_rel_freq,
            adaptive.domain(d).mean_rel_freq
        );
    }
    println!(
        "\nadaptive vs baseline: {:+.1}% energy, {:+.1}% execution time, {:+.1}% EDP",
        -adaptive.energy_savings_vs(&baseline) * 100.0,
        adaptive.perf_degradation_vs(&baseline) * 100.0,
        -adaptive.edp_improvement_vs(&baseline) * 100.0
    );
}
