//! Linearization of the nonlinear model (Section 4.3).
//!
//! Transforming the controller equation to the service-rate state variable
//! `μ` and choosing `h(f) = f²` compensates the nonlinearity of
//! `μ = 1/(t₁ + c₂/f)` up to the quadratic approximation
//! `c₂/(t₁·f + c₂)² ≈ k/f²`, yielding the linear system (12):
//!
//! ```text
//! q̇ = γλ − γμ
//! μ̇ = (m·k·step/T_m0)(q − q_ref) + (l·k·step/T_l0)·q̇
//! ```

use crate::ode::ModelParams;
use crate::stability::SystemParams;

/// Produces the linearized [`SystemParams`] of the model around operating
/// frequency `f_op`.
pub fn linearize(params: &ModelParams, f_op: f64) -> SystemParams {
    SystemParams {
        m: params.m,
        l: params.l,
        gamma: params.gamma,
        k: params.k_at(f_op),
        step: params.step,
        t_m0: params.t_m0,
        t_l0: params.t_l0,
    }
}

/// Simulates the *linear* system (12) with RK4 — used to validate the
/// analytic formulas and to cross-check the nonlinear model.
///
/// Returns `(t, q, μ)` triples, starting from `(q0, μ0)`.
pub fn simulate_linear(
    sys: &SystemParams,
    q_ref: f64,
    q0: f64,
    mu0: f64,
    lambda: f64,
    dt: f64,
    steps: usize,
) -> Vec<(f64, f64, f64)> {
    assert!(dt > 0.0, "step size must be positive");
    let km = sys.k_m();
    let kl = sys.k_l();
    let gamma = sys.gamma;
    let rhs = |q: f64, mu: f64| {
        let q_dot = gamma * (lambda - mu);
        let mu_dot = km * (q - q_ref) + kl * q_dot;
        (q_dot, mu_dot)
    };
    let mut out = Vec::with_capacity(steps + 1);
    let (mut q, mut mu, mut t) = (q0, mu0, 0.0);
    out.push((t, q, mu));
    for _ in 0..steps {
        let (k1q, k1m) = rhs(q, mu);
        let (k2q, k2m) = rhs(q + dt / 2.0 * k1q, mu + dt / 2.0 * k1m);
        let (k3q, k3m) = rhs(q + dt / 2.0 * k2q, mu + dt / 2.0 * k2m);
        let (k4q, k4m) = rhs(q + dt * k3q, mu + dt * k3m);
        q += dt / 6.0 * (k1q + 2.0 * k2q + 2.0 * k3q + k4q);
        mu += dt / 6.0 * (k1m + 2.0 * k2m + 2.0 * k3m + k4m);
        t += dt;
        out.push((t, q, mu));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearized_k_matches_operating_point() {
        let p = ModelParams::paper_default();
        let sys = linearize(&p, 1.0);
        assert!((sys.k - p.k_at(1.0)).abs() < 1e-12);
        assert_eq!(sys.t_m0, p.t_m0);
        assert!(sys.is_stable());
    }

    #[test]
    fn linear_sim_converges_to_lambda_and_qref() {
        let p = ModelParams::paper_default();
        let sys = linearize(&p, 0.8);
        let traj = simulate_linear(&sys, 4.0, 10.0, 0.2, 0.7, 0.05, 400_000);
        let &(_, q, mu) = traj.last().expect("nonempty");
        assert!((mu - 0.7).abs() < 1e-3, "μ settled at {mu}");
        assert!((q - 4.0).abs() < 1e-2, "q settled at {q}");
    }

    #[test]
    fn linear_and_nonlinear_agree_near_operating_point() {
        use crate::ode::{OdeModel, OdeState};
        let p = ModelParams::paper_default();
        let lambda = 0.75;
        let nonlinear = OdeModel::new(p);
        let f_eq = nonlinear.equilibrium_frequency(lambda);
        let mu_eq = p.mu(f_eq);
        // Small perturbation around equilibrium.
        let init = OdeState {
            t: 0.0,
            q: 5.0,
            f: f_eq,
        };
        let nl = nonlinear.simulate(init, 0.05, 100_000, |_| lambda);
        let sys = linearize(&p, f_eq);
        let lin = simulate_linear(&sys, p.q_ref, 5.0, mu_eq, lambda, 0.05, 100_000);
        // Compare the queue trajectories at a mid point and the end.
        for idx in [20_000, 100_000] {
            let qn = nl[idx].q;
            let ql = lin[idx].1;
            assert!(
                (qn - ql).abs() < 0.5,
                "idx {idx}: nonlinear q {qn} vs linear q {ql}"
            );
        }
    }

    #[test]
    fn overshoot_formula_matches_simulation() {
        // For an underdamped setting, the simulated step-response
        // overshoot should match exp(−πξ/√(1−ξ²)) within a few percent.
        let sys = SystemParams {
            t_m0: 16.0,
            t_l0: 8.0, // ratio 2 → ξ just under the 0.5 boundary
            ..SystemParams::paper_default()
        };
        let xi = sys.damping_ratio();
        assert!(xi < 1.0);
        let q_ref = 4.0;
        let lambda = 0.7;
        // Step: start with μ equal to the *old* load 0.5; new load 0.7.
        let traj = simulate_linear(&sys, q_ref, q_ref, 0.5, lambda, 0.02, 2_000_000);
        let peak = traj.iter().map(|&(_, _, mu)| mu).fold(f64::MIN, f64::max);
        let overshoot = (peak - lambda) / (lambda - 0.5);
        let predicted = sys.percent_overshoot();
        // The loop has a zero at −K_m/K_l (the K_l·q̇ term), which damps
        // the response relative to the textbook zero-free 2nd-order
        // system, so the ξ-based formula is an upper bound — the bound
        // the paper's Remark 3 argues from.
        assert!(
            overshoot > 0.02,
            "ξ = {xi:.3} must visibly overshoot, got {overshoot:.4}"
        );
        assert!(
            overshoot <= predicted + 0.02,
            "simulated {overshoot:.4} exceeds predicted bound {predicted:.4}"
        );
    }
}
