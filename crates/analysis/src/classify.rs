//! Fast/slow workload classification (Section 5.2, Table 2).
//!
//! A benchmark has "fast workload variations" when a substantial share of
//! its queue-occupancy variance sits at wavelengths shorter than what a
//! fixed-interval controller can track — wavelengths up to roughly twice
//! the interval length (a fixed-interval scheme observes averages over an
//! interval, so variation with period ≤ 2 intervals aliases away inside
//! them).

use crate::spectrum::multitaper;
use crate::spectrum::variance::band_variance;

/// Classifier over queue-occupancy series sampled at the controller's
/// sampling rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadClassifier {
    /// Lower wavelength (samples) of the "fast" band. Excludes
    /// sample-to-sample queue noise, whose white spectrum would otherwise
    /// dominate any band that reaches down to the Nyquist wavelength.
    pub fast_min_wavelength: f64,
    /// Upper wavelength (samples) of the "fast" band. The paper's fixed
    /// intervals are 10 k instructions ≈ 2 500–10 000 samples; twice that
    /// is the default.
    pub fast_max_wavelength: f64,
    /// Minimum fast-band variance (queue entries²) to call a workload
    /// fast.
    pub variance_threshold: f64,
    /// Sine tapers used for the spectral estimate.
    pub tapers: usize,
}

/// A classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedBenchmark {
    /// Variance in the fast band (entries²).
    pub fast_variance: f64,
    /// Total variance of the series (entries²).
    pub total_variance: f64,
    /// The verdict.
    pub is_fast: bool,
}

impl Default for WorkloadClassifier {
    fn default() -> Self {
        WorkloadClassifier {
            fast_min_wavelength: 500.0,
            fast_max_wavelength: 20_000.0,
            // Calibrated on the study's 17 benchmarks: steady workloads
            // carry 2–5 entries² of incidental burst variance in this
            // band, fast-varying ones 6–50 entries².
            variance_threshold: 5.5,
            tapers: 4,
        }
    }
}

impl WorkloadClassifier {
    /// Classifies an occupancy series (one value per sampling period).
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than 8 samples.
    pub fn classify(&self, occupancy: &[f64]) -> ClassifiedBenchmark {
        let spectrum = multitaper(occupancy, self.tapers);
        let fast_variance = band_variance(
            &spectrum,
            self.fast_min_wavelength,
            self.fast_max_wavelength,
        );
        let total_variance = spectrum.total_variance();
        ClassifiedBenchmark {
            fast_variance,
            total_variance,
            is_fast: fast_variance >= self.variance_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: usize, period: usize, low: f64, high: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if (i / (period / 2)).is_multiple_of(2) {
                    high
                } else {
                    low
                }
            })
            .collect()
    }

    #[test]
    fn short_period_square_wave_is_fast() {
        // Period 2 000 samples ≪ 20 000-sample fast band, swing 0 ↔ 12.
        let x = square(262_144, 2_000, 0.0, 12.0);
        let c = WorkloadClassifier::default().classify(&x);
        assert!(c.is_fast, "fast variance {}", c.fast_variance);
        assert!(c.fast_variance > 0.8 * c.total_variance);
    }

    #[test]
    fn long_period_square_wave_is_slow() {
        // Period 200 000 samples ≫ the fast band.
        let x = square(262_144, 200_000, 0.0, 12.0);
        let c = WorkloadClassifier::default().classify(&x);
        assert!(!c.is_fast, "fast variance {}", c.fast_variance);
    }

    #[test]
    fn flat_series_is_slow() {
        let x = vec![5.0; 65_536];
        let c = WorkloadClassifier::default().classify(&x);
        assert!(!c.is_fast);
        assert!(c.total_variance < 1e-9);
    }

    #[test]
    fn small_fast_ripple_stays_below_threshold() {
        // Fast but tiny (amplitude 0.5 → variance 0.125): noise, not a
        // workload swing.
        let x: Vec<f64> = (0..131_072)
            .map(|i| 6.0 + 0.5 * (2.0 * std::f64::consts::PI * i as f64 / 500.0).sin())
            .collect();
        let c = WorkloadClassifier::default().classify(&x);
        assert!(!c.is_fast, "fast variance {}", c.fast_variance);
    }
}
