//! The nonlinear continuous-time model of Section 4.2 (equations 7–9).
//!
//! ```text
//! f′(t) = m·step/(h(f)·T_m0) · (q − q_ref)  +  l·step/(h(f)·T_l0) · q′(t)
//! q′(t) = γ·λ(t) − γ·μ(t)
//! μ(t)  = 1 / (t₁ + c₂/f)
//! ```
//!
//! with `h(f) = f²` (the linearizing choice). Integrated with classic RK4.

/// Parameters of the aggregate model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Unit conversion `m` for the occupancy signal.
    pub m: f64,
    /// Unit conversion `l` for the difference signal.
    pub l: f64,
    /// Frequency step per action (normalized units).
    pub step: f64,
    /// Basic delay `T_m0`.
    pub t_m0: f64,
    /// Basic delay `T_l0`.
    pub t_l0: f64,
    /// Reference occupancy `q_ref`.
    pub q_ref: f64,
    /// Queue constant `γ` (proportional to the sampling period).
    pub gamma: f64,
    /// Frequency-independent seconds per instruction `t₁`.
    pub t1: f64,
    /// Frequency-dependent cycles per instruction `c₂`.
    pub c2: f64,
    /// Queue capacity used to clamp `q` (the physical queue is finite).
    pub q_max: f64,
    /// Normalized frequency bounds.
    pub f_min: f64,
    /// Upper normalized frequency bound.
    pub f_max: f64,
}

impl ModelParams {
    /// A representative configuration: the controller settings of the
    /// evaluation, an order-one μ–f relationship (`t₁ = 0.2`, `c₂ = 0.8`,
    /// so μ(1) = 1), and the same `K_l ≈ 0.5` normalization as
    /// [`crate::stability::SystemParams::paper_default`].
    pub fn paper_default() -> Self {
        ModelParams {
            m: 0.5,
            l: 0.5,
            step: 1.0,
            t_m0: 50.0,
            t_l0: 8.0,
            q_ref: 4.0,
            gamma: 8.0,
            t1: 0.2,
            c2: 0.8,
            q_max: 16.0,
            f_min: 0.25,
            f_max: 1.0,
        }
    }

    /// Service rate `μ(f) = 1/(t₁ + c₂/f)` (equation 9).
    pub fn mu(&self, f: f64) -> f64 {
        1.0 / (self.t1 + self.c2 / f)
    }

    /// The linearized μ–f slope `k ≈ c₂·μ²/f²` at operating point `f`
    /// (the quadratic approximation of Section 4.3).
    pub fn k_at(&self, f: f64) -> f64 {
        let mu = self.mu(f);
        self.c2 * mu * mu / (f * f)
    }
}

/// One integration state: queue occupancy and normalized frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdeState {
    /// Time.
    pub t: f64,
    /// Queue occupancy `q(t)`.
    pub q: f64,
    /// Normalized domain frequency `f(t)`.
    pub f: f64,
}

/// RK4 integrator for the model, driven by an arrival-rate function.
#[derive(Debug, Clone)]
pub struct OdeModel {
    params: ModelParams,
}

impl OdeModel {
    /// Creates a model with the given parameters.
    pub fn new(params: ModelParams) -> Self {
        OdeModel { params }
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Right-hand side `(q′, f′)` at `(q, f)` under arrival rate `lambda`.
    fn rhs(&self, q: f64, f: f64, lambda: f64) -> (f64, f64) {
        let p = &self.params;
        let f = f.clamp(p.f_min, p.f_max);
        let q_dot = p.gamma * lambda - p.gamma * p.mu(f);
        let h = f * f;
        let f_dot =
            p.m * p.step / (h * p.t_m0) * (q - p.q_ref) + p.l * p.step / (h * p.t_l0) * q_dot;
        (q_dot, f_dot)
    }

    /// Integrates from `initial` for `steps` RK4 steps of size `dt`,
    /// sampling the arrival rate `lambda(t)` at the usual RK4 points.
    /// Returns the trajectory including the initial state.
    pub fn simulate<F>(
        &self,
        initial: OdeState,
        dt: f64,
        steps: usize,
        mut lambda: F,
    ) -> Vec<OdeState>
    where
        F: FnMut(f64) -> f64,
    {
        assert!(dt > 0.0, "step size must be positive");
        let p = self.params;
        let mut out = Vec::with_capacity(steps + 1);
        let mut s = initial;
        out.push(s);
        for _ in 0..steps {
            let (k1q, k1f) = self.rhs(s.q, s.f, lambda(s.t));
            let lam_mid = lambda(s.t + dt / 2.0);
            let (k2q, k2f) = self.rhs(s.q + dt / 2.0 * k1q, s.f + dt / 2.0 * k1f, lam_mid);
            let (k3q, k3f) = self.rhs(s.q + dt / 2.0 * k2q, s.f + dt / 2.0 * k2f, lam_mid);
            let lam_end = lambda(s.t + dt);
            let (k4q, k4f) = self.rhs(s.q + dt * k3q, s.f + dt * k3f, lam_end);
            s.q = (s.q + dt / 6.0 * (k1q + 2.0 * k2q + 2.0 * k3q + k4q)).clamp(0.0, p.q_max);
            s.f = (s.f + dt / 6.0 * (k1f + 2.0 * k2f + 2.0 * k3f + k4f)).clamp(p.f_min, p.f_max);
            s.t += dt;
            out.push(s);
        }
        out
    }

    /// The equilibrium frequency for a constant arrival rate: the `f` at
    /// which `μ(f) = λ` (clamped to the frequency range).
    pub fn equilibrium_frequency(&self, lambda: f64) -> f64 {
        let p = &self.params;
        // μ(f) = λ  ⇒  f = c₂·λ / (1 − t₁·λ)
        let denom = 1.0 - p.t1 * lambda;
        if denom <= 0.0 {
            return p.f_max;
        }
        (p.c2 * lambda / denom).clamp(p.f_min, p.f_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OdeModel {
        OdeModel::new(ModelParams::paper_default())
    }

    #[test]
    fn mu_is_increasing_and_saturating() {
        let p = ModelParams::paper_default();
        assert!(p.mu(0.5) < p.mu(1.0));
        assert!((p.mu(1.0) - 1.0).abs() < 1e-12); // t1 + c2 = 1
                                                  // As f → ∞, μ → 1/t₁ = 5.
        assert!(p.mu(1e9) < 5.0 + 1e-6);
    }

    #[test]
    fn k_matches_numeric_derivative() {
        let p = ModelParams::paper_default();
        for &f in &[0.3, 0.5, 0.8, 1.0] {
            let eps = 1e-6;
            let dmu = (p.mu(f + eps) - p.mu(f - eps)) / (2.0 * eps);
            assert!(
                (p.k_at(f) - dmu).abs() < 1e-6,
                "k({f}) = {} vs numeric {dmu}",
                p.k_at(f)
            );
        }
    }

    #[test]
    fn constant_load_converges_to_equilibrium_remark1() {
        let m = model();
        let lambda = 0.7;
        let f_eq = m.equilibrium_frequency(lambda);
        let init = OdeState {
            t: 0.0,
            q: 10.0,
            f: 1.0,
        };
        let traj = m.simulate(init, 0.05, 200_000, |_| lambda);
        let last = traj.last().expect("nonempty");
        assert!(
            (last.f - f_eq).abs() < 0.02,
            "f settled at {} vs equilibrium {f_eq}",
            last.f
        );
        assert!(
            (last.q - m.params().q_ref).abs() < 0.3,
            "q settled at {} vs q_ref",
            last.q
        );
    }

    #[test]
    fn trajectory_is_bounded_for_extreme_inputs_remark1() {
        let m = model();
        let init = OdeState {
            t: 0.0,
            q: 0.0,
            f: 1.0,
        };
        // Violent square-wave load.
        let traj = m.simulate(init, 0.05, 100_000, |t| {
            if ((t / 50.0) as u64).is_multiple_of(2) {
                4.0
            } else {
                0.05
            }
        });
        for s in &traj {
            assert!(s.q.is_finite() && s.f.is_finite());
            assert!((0.0..=16.0).contains(&s.q));
            assert!((0.25..=1.0).contains(&s.f));
        }
    }

    #[test]
    fn equilibrium_frequency_clamps() {
        let m = model();
        assert_eq!(m.equilibrium_frequency(10.0), 1.0); // beyond capacity
        assert_eq!(m.equilibrium_frequency(1e-6), 0.25); // below range
    }

    #[test]
    fn step_load_raises_frequency() {
        let m = model();
        let init = OdeState {
            t: 0.0,
            q: 4.0,
            f: 0.5,
        };
        let traj = m.simulate(init, 0.05, 100_000, |t| if t < 10.0 { 0.55 } else { 0.9 });
        let last = traj.last().expect("nonempty");
        let f_eq = m.equilibrium_frequency(0.9);
        assert!((last.f - f_eq).abs() < 0.05, "f = {} vs {}", last.f, f_eq);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_dt_panics() {
        let m = model();
        let _ = m.simulate(
            OdeState {
                t: 0.0,
                q: 0.0,
                f: 1.0,
            },
            0.0,
            1,
            |_| 1.0,
        );
    }
}
