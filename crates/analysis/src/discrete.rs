//! Discrete-time refinement of the stability analysis.
//!
//! Section 4 notes that "a similar but more complicated discrete-time
//! model can be derived to get a better and more accurate analysis
//! result" and leaves it as future work. This module provides that
//! refinement for the linearized loop: the controller acts once per
//! sampling period `h`, so the closed loop is really the discrete map
//! `x_{k+1} = M(h)·x_k`, stable iff the spectral radius of `M` is below 1.
//!
//! Two discretizations are provided:
//!
//! * [`exact_discretize`] — `M = exp(hA)`: the continuous loop sampled
//!   exactly, which is stable for every `h` whenever the continuous loop
//!   is (eigenvalues map to `e^{sh}`);
//! * [`euler_discretize`] — `M = I + hA`: the controller applies one
//!   forward increment per period, which is what the step-per-trigger
//!   hardware actually does. This map *loses* stability when the
//!   sampling period grows past [`max_stable_period`], recovering the
//!   intuition that the 250 MHz sampling rate must be fast relative to
//!   the loop's time constants.

use crate::stability::SystemParams;

/// A 2×2 real matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Row-major entries `[[a, b], [c, d]]`.
    pub a: f64,
    /// Top-right entry.
    pub b: f64,
    /// Bottom-left entry.
    pub c: f64,
    /// Bottom-right entry.
    pub d: f64,
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        a: 1.0,
        b: 0.0,
        c: 0.0,
        d: 1.0,
    };

    /// Matrix product `self · rhs`.
    pub fn matmul(self, rhs: Mat2) -> Mat2 {
        Mat2 {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }

    /// Scales every entry.
    pub fn scaled(self, k: f64) -> Mat2 {
        Mat2 {
            a: self.a * k,
            b: self.b * k,
            c: self.c * k,
            d: self.d * k,
        }
    }

    /// Entry-wise sum.
    pub fn plus(self, rhs: Mat2) -> Mat2 {
        Mat2 {
            a: self.a + rhs.a,
            b: self.b + rhs.b,
            c: self.c + rhs.c,
            d: self.d + rhs.d,
        }
    }

    /// Trace.
    pub fn trace(self) -> f64 {
        self.a + self.d
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Largest eigenvalue magnitude (spectral radius).
    pub fn spectral_radius(self) -> f64 {
        let tr = self.trace();
        let det = self.det();
        let disc = tr * tr - 4.0 * det;
        // `tr² − 4·det` cancels catastrophically when the eigenvalues are
        // a near-degenerate complex pair; treat near-zero discriminants
        // (relative to tr²) as complex.
        if disc > 1e-9 * tr * tr {
            let sq = disc.sqrt();
            ((tr + sq) / 2.0).abs().max(((tr - sq) / 2.0).abs())
        } else {
            // Complex pair: |λ|² = det.
            det.abs().sqrt()
        }
    }

    /// Matrix exponential via scaling and squaring on a 12-term Taylor
    /// series.
    pub fn exp(self) -> Mat2 {
        // Scale down so the norm is small.
        let norm = self
            .a
            .abs()
            .max(self.b.abs())
            .max(self.c.abs())
            .max(self.d.abs());
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let scaled = self.scaled(1.0 / f64::powi(2.0, squarings as i32));
        // Taylor series.
        let mut term = Mat2::IDENTITY;
        let mut sum = Mat2::IDENTITY;
        for k in 1..=12 {
            term = term.matmul(scaled).scaled(1.0 / k as f64);
            sum = sum.plus(term);
        }
        // Square back up.
        let mut result = sum;
        for _ in 0..squarings {
            result = result.matmul(result);
        }
        result
    }
}

/// The continuous closed-loop system matrix `A` of the linearized model
/// (state `(q̃, μ̃)`):
///
/// ```text
/// q̃̇ = −γ·μ̃
/// μ̃̇ = (K_m/γ)·q̃ − K_l·μ̃
/// ```
pub fn system_matrix(sys: &SystemParams) -> Mat2 {
    Mat2 {
        a: 0.0,
        b: -sys.gamma,
        c: sys.k_m() / sys.gamma,
        d: -sys.k_l(),
    }
}

/// Exact sampling: `M = exp(hA)`.
pub fn exact_discretize(sys: &SystemParams, h: f64) -> Mat2 {
    system_matrix(sys).scaled(h).exp()
}

/// Forward-Euler sampling: `M = I + hA` (one controller increment per
/// period).
pub fn euler_discretize(sys: &SystemParams, h: f64) -> Mat2 {
    Mat2::IDENTITY.plus(system_matrix(sys).scaled(h))
}

/// Whether the discrete map is (strictly) stable.
pub fn is_stable_discrete(m: Mat2) -> bool {
    m.spectral_radius() < 1.0
}

/// The largest sampling period for which the Euler-discretized loop stays
/// stable (bisection to 1e-6 relative accuracy).
pub fn max_stable_period(sys: &SystemParams) -> f64 {
    let stable_at = |h: f64| is_stable_discrete(euler_discretize(sys, h));
    assert!(stable_at(1e-9), "loop must be stable at vanishing periods");
    let mut lo = 1e-9;
    let mut hi = 1e-9;
    while stable_at(hi) {
        hi *= 2.0;
        assert!(hi < 1e12, "no instability found — degenerate parameters?");
    }
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat2_algebra() {
        let m = Mat2 {
            a: 1.0,
            b: 2.0,
            c: 3.0,
            d: 4.0,
        };
        let i = Mat2::IDENTITY;
        assert_eq!(m.matmul(i), m);
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.det(), -2.0);
        let s = m.scaled(2.0);
        assert_eq!(s.a, 2.0);
        assert_eq!(m.plus(m), s);
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Mat2 {
            a: 0.0,
            b: 0.0,
            c: 0.0,
            d: 0.0,
        };
        let e = z.exp();
        assert!((e.a - 1.0).abs() < 1e-12 && (e.d - 1.0).abs() < 1e-12);
        assert!(e.b.abs() < 1e-12 && e.c.abs() < 1e-12);
    }

    #[test]
    fn exp_matches_scalar_case() {
        // Diagonal matrix: exp is elementwise.
        let m = Mat2 {
            a: -0.7,
            b: 0.0,
            c: 0.0,
            d: 2.0,
        };
        let e = m.exp();
        assert!((e.a - (-0.7f64).exp()).abs() < 1e-9);
        assert!((e.d - (2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn exp_satisfies_det_identity() {
        // det(exp(A)) = exp(tr(A)).
        let m = system_matrix(&SystemParams::paper_default()).scaled(3.0);
        let e = m.exp();
        assert!((e.det() - m.trace().exp()).abs() < 1e-6);
    }

    #[test]
    fn exact_sampling_is_stable_for_any_period() {
        let sys = SystemParams::paper_default();
        for h in [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let m = exact_discretize(&sys, h);
            assert!(
                is_stable_discrete(m),
                "exp(hA) unstable at h = {h}: radius {}",
                m.spectral_radius()
            );
        }
    }

    #[test]
    fn euler_sampling_destabilizes_at_large_periods() {
        let sys = SystemParams::paper_default();
        let h_max = max_stable_period(&sys);
        assert!(h_max > 0.0);
        assert!(is_stable_discrete(euler_discretize(&sys, h_max * 0.9)));
        assert!(!is_stable_discrete(euler_discretize(&sys, h_max * 1.1)));
    }

    #[test]
    fn paper_sampling_rate_is_far_inside_the_stable_region() {
        // One sampling period is h = 1 in controller time units; the
        // stability limit should be comfortably above that.
        let sys = SystemParams::paper_default();
        let h_max = max_stable_period(&sys);
        assert!(
            h_max > 1.0,
            "paper's sampling period is outside the Euler-stable region: h_max = {h_max}"
        );
    }

    #[test]
    fn max_period_matches_analytic_formulas() {
        // Underdamped (complex eigenvalues): the Euler radius is
        // √(1 − h·K_l + h²·K_m), crossing 1 at h = K_l/K_m.
        let sys = SystemParams::paper_default();
        assert!(sys.damping_ratio() < 1.0);
        let predicted = sys.k_l() / sys.k_m();
        let measured = max_stable_period(&sys);
        assert!(
            (measured - predicted).abs() / predicted < 1e-6,
            "complex regime: measured {measured} vs K_l/K_m = {predicted}"
        );

        // Overdamped (real eigenvalues): the fast eigenvalue s₋ limits the
        // period at h = 2/|s₋|.
        let over = SystemParams { t_m0: 500.0, ..sys };
        assert!(over.damping_ratio() > 1.0);
        let (r1, r2) = over.roots();
        let s_fast = r1.re.abs().max(r2.re.abs());
        let predicted = 2.0 / s_fast;
        let measured = max_stable_period(&over);
        assert!(
            (measured - predicted).abs() / predicted < 1e-6,
            "real regime: measured {measured} vs 2/|s| = {predicted}"
        );
    }

    #[test]
    fn euler_and_exact_agree_for_small_periods() {
        let sys = SystemParams::paper_default();
        let h = 1e-3;
        let a = euler_discretize(&sys, h);
        let b = exact_discretize(&sys, h);
        assert!((a.spectral_radius() - b.spectral_radius()).abs() < 1e-5);
    }
}
