//! Online estimation of the μ–f model parameters.
//!
//! The service-rate model `μ(f) = 1/(t₁ + c₂/f)` (equation 9) has two
//! parameters: `t₁`, the frequency-independent time per instruction
//! (asynchronous memory), and `c₂`, the frequency-dependent cycles per
//! instruction. The paper notes they "can be estimated online or offline
//! using methods similar to those in [1, 24]". The estimator here does the
//! standard trick: `1/μ = t₁ + c₂·(1/f)` is linear in `1/f`, so ordinary
//! least squares over per-interval `(f, μ)` observations recovers both.

/// Recursive least-squares estimator of `(t₁, c₂)`.
///
/// Feed per-interval observations of domain frequency and achieved
/// service rate; read back the fitted parameters and the linearization
/// constant `k` the stability analysis needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MuFEstimator {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

/// A fitted μ–f model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuFModel {
    /// Frequency-independent time per instruction.
    pub t1: f64,
    /// Frequency-dependent cycles per instruction.
    pub c2: f64,
}

impl MuFModel {
    /// Predicted service rate at frequency `f`.
    pub fn mu(&self, f: f64) -> f64 {
        1.0 / (self.t1 + self.c2 / f)
    }

    /// The linearization constant `k ≈ c₂·μ²/f²` at operating point `f`
    /// (what [`crate::stability::SystemParams::k`] wants).
    pub fn k_at(&self, f: f64) -> f64 {
        let mu = self.mu(f);
        self.c2 * mu * mu / (f * f)
    }
}

impl MuFEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        MuFEstimator::default()
    }

    /// Observations seen so far.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Feeds one interval's `(frequency, service rate)` observation.
    ///
    /// # Panics
    ///
    /// Panics unless both values are positive and finite.
    pub fn observe(&mut self, f: f64, mu: f64) {
        assert!(f.is_finite() && f > 0.0, "invalid frequency {f}");
        assert!(mu.is_finite() && mu > 0.0, "invalid service rate {mu}");
        let x = 1.0 / f;
        let y = 1.0 / mu;
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// The least-squares fit, or `None` with fewer than two distinct
    /// frequencies (the regression is then degenerate).
    pub fn fit(&self) -> Option<MuFModel> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let denom = n * self.sum_xx - self.sum_x * self.sum_x;
        if denom.abs() < 1e-12 * n * self.sum_xx.max(1e-30) {
            return None; // all observations at one frequency
        }
        let c2 = (n * self.sum_xy - self.sum_x * self.sum_y) / denom;
        let t1 = (self.sum_y - c2 * self.sum_x) / n;
        Some(MuFModel { t1, c2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_data_recovers_parameters() {
        let truth = MuFModel { t1: 0.2, c2: 0.8 };
        let mut est = MuFEstimator::new();
        for f in [0.25, 0.4, 0.6, 0.8, 1.0] {
            est.observe(f, truth.mu(f));
        }
        let fit = est.fit().expect("five distinct frequencies");
        assert!((fit.t1 - 0.2).abs() < 1e-12, "t1 = {}", fit.t1);
        assert!((fit.c2 - 0.8).abs() < 1e-12, "c2 = {}", fit.c2);
    }

    #[test]
    fn noisy_data_recovers_parameters_approximately() {
        let truth = MuFModel { t1: 0.3, c2: 0.7 };
        let mut est = MuFEstimator::new();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..10_000 {
            let f = 0.25 + 0.75 * ((i % 100) as f64 / 99.0);
            let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.05;
            est.observe(f, truth.mu(f) * noise);
        }
        let fit = est.fit().expect("plenty of data");
        assert!((fit.t1 - 0.3).abs() < 0.02, "t1 = {}", fit.t1);
        assert!((fit.c2 - 0.7).abs() < 0.02, "c2 = {}", fit.c2);
    }

    #[test]
    fn fitted_k_matches_model_params() {
        use crate::ode::ModelParams;
        let p = ModelParams::paper_default();
        let truth = MuFModel { t1: p.t1, c2: p.c2 };
        let mut est = MuFEstimator::new();
        for f in [0.3, 0.5, 0.7, 0.9] {
            est.observe(f, truth.mu(f));
        }
        let fit = est.fit().expect("four frequencies");
        for f in [0.4, 0.8] {
            assert!((fit.k_at(f) - p.k_at(f)).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let mut est = MuFEstimator::new();
        assert_eq!(est.fit(), None);
        est.observe(0.5, 1.0);
        assert_eq!(est.fit(), None, "one observation");
        est.observe(0.5, 1.01);
        assert_eq!(est.fit(), None, "single frequency is degenerate");
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn zero_frequency_panics() {
        MuFEstimator::new().observe(0.0, 1.0);
    }
}
