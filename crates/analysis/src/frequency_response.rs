//! Closed-loop frequency response: what workload-variation wavelengths can
//! the controller actually track?
//!
//! From the linearized system (12), the transfer function from arrival
//! rate λ to service rate μ is
//!
//! ```text
//! H(s) = (K_l·s + K_m) / (s² + K_l·s + K_m)
//! ```
//!
//! `|H(jω)| ≈ 1` means the loop tracks a variation at angular frequency ω
//! (service follows load); `|H| ≪ 1` means the variation is too fast and
//! the loop averages over it. The −3 dB point is the loop's *tracking
//! bandwidth* — the analytic counterpart of the empirical wavelength sweep
//! (`repro ablate-wavelength`).

use crate::stability::SystemParams;

/// `|H(jω)|` of the λ→μ transfer at angular frequency `omega`.
///
/// # Panics
///
/// Panics if `omega` is negative or non-finite.
pub fn magnitude(sys: &SystemParams, omega: f64) -> f64 {
    assert!(
        omega.is_finite() && omega >= 0.0,
        "invalid frequency {omega}"
    );
    let km = sys.k_m();
    let kl = sys.k_l();
    // Numerator: K_m + jω·K_l ; denominator: (K_m − ω²) + jω·K_l.
    let num = (km * km + omega * omega * kl * kl).sqrt();
    let den_re = km - omega * omega;
    let den = (den_re * den_re + omega * omega * kl * kl).sqrt();
    num / den
}

/// `|H|` at the variation *wavelength* `lambda` (same time units as the
/// system's delays — sampling periods for the paper's setting).
///
/// # Panics
///
/// Panics unless `lambda` is positive.
pub fn wavelength_response(sys: &SystemParams, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "wavelength must be positive");
    magnitude(sys, 2.0 * std::f64::consts::PI / lambda)
}

/// The −3 dB tracking bandwidth: the lowest ω at which `|H|` drops below
/// `1/√2` and stays below (bisection after a geometric scan).
pub fn tracking_bandwidth(sys: &SystemParams) -> f64 {
    let target = std::f64::consts::FRAC_1_SQRT_2;
    // |H(0)| = 1; scan up geometrically until below target.
    let mut hi = 1e-9;
    while magnitude(sys, hi) >= target {
        hi *= 2.0;
        assert!(
            hi < 1e12,
            "response never rolls off — degenerate parameters?"
        );
    }
    // The last scanned point still above target brackets the crossing.
    let mut lo = hi / 2.0;
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if magnitude(sys, mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The shortest trackable wavelength `2π/ω_bw` in the system's time units.
pub fn min_trackable_wavelength(sys: &SystemParams) -> f64 {
    2.0 * std::f64::consts::PI / tracking_bandwidth(sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_unity() {
        let sys = SystemParams::paper_default();
        assert!((magnitude(&sys, 0.0) - 1.0).abs() < 1e-12);
        // Very slow variations track almost perfectly.
        assert!(magnitude(&sys, 1e-6) > 0.999);
    }

    #[test]
    fn high_frequencies_roll_off() {
        let sys = SystemParams::paper_default();
        let mid = magnitude(&sys, 1.0);
        let high = magnitude(&sys, 100.0);
        assert!(high < mid);
        // Single-pole-like rolloff at high ω: |H| ≈ K_l/ω.
        assert!((high - sys.k_l() / 100.0).abs() / high < 0.05);
    }

    #[test]
    fn bandwidth_brackets_the_minus_3db_point() {
        let sys = SystemParams::paper_default();
        let bw = tracking_bandwidth(&sys);
        assert!(magnitude(&sys, bw * 0.98) >= std::f64::consts::FRAC_1_SQRT_2 - 1e-6);
        assert!(magnitude(&sys, bw * 1.02) < std::f64::consts::FRAC_1_SQRT_2 + 1e-3);
    }

    #[test]
    fn smaller_delays_widen_the_bandwidth_remark2() {
        let slow = SystemParams::paper_default();
        let fast = SystemParams {
            t_m0: 12.5,
            t_l0: 2.0,
            ..slow
        };
        assert!(tracking_bandwidth(&fast) > tracking_bandwidth(&slow));
        assert!(min_trackable_wavelength(&fast) < min_trackable_wavelength(&slow));
    }

    #[test]
    fn wavelength_and_angular_frequency_agree() {
        let sys = SystemParams::paper_default();
        let lambda = 40.0;
        let omega = 2.0 * std::f64::consts::PI / lambda;
        assert_eq!(wavelength_response(&sys, lambda), magnitude(&sys, omega));
    }

    #[test]
    fn paper_setting_tracks_only_long_wavelengths() {
        // With K_l = 0.5 the loop's bandwidth is below one radian per
        // sampling period: variations must span many samples to be
        // tracked, consistent with the empirical sweep.
        let sys = SystemParams::paper_default();
        let min_lambda = min_trackable_wavelength(&sys);
        assert!(
            min_lambda > 5.0,
            "minimum trackable wavelength {min_lambda} suspiciously short"
        );
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn negative_frequency_panics() {
        let _ = magnitude(&SystemParams::paper_default(), -1.0);
    }
}
