//! Numeric step-response metrics (validating Remarks 2 and 3).

use crate::linearize::simulate_linear;
use crate::stability::SystemParams;

/// Metrics extracted from a unit-step response of the linearized loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResponseMetrics {
    /// Peak overshoot as a fraction of the step size.
    pub overshoot: f64,
    /// 10–90 % rise time.
    pub rise_time: f64,
    /// 2 %-band settling time.
    pub settling_time: f64,
}

/// Simulates a unit step in arrival rate (0.5 → 0.7) and measures the
/// service-rate response.
///
/// # Panics
///
/// Panics if the response never settles inside the simulated horizon
/// (which for a stable system indicates too short a horizon).
pub fn step_response(sys: &SystemParams) -> StepResponseMetrics {
    let (from, to) = (0.5, 0.7);
    let q_ref = 4.0;
    let dt = 0.05;
    // Horizon: several analytic settling times.
    let horizon = (sys.settling_time() * 4.0).max(1000.0);
    let steps = (horizon / dt) as usize;
    let traj = simulate_linear(sys, q_ref, q_ref, from, to, dt, steps);

    let step_size = to - from;
    let mut overshoot: f64 = 0.0;
    let mut t10 = None;
    let mut t90 = None;
    let mut settle = None;
    for &(t, _, mu) in &traj {
        let frac = (mu - from) / step_size;
        overshoot = overshoot.max(frac - 1.0);
        if t10.is_none() && frac >= 0.1 {
            t10 = Some(t);
        }
        if t90.is_none() && frac >= 0.9 {
            t90 = Some(t);
        }
    }
    // Settling: last time the response leaves the ±2 % band.
    for &(t, _, mu) in traj.iter().rev() {
        let frac = (mu - from) / step_size;
        if (frac - 1.0).abs() > 0.02 {
            settle = Some(t);
            break;
        }
    }
    StepResponseMetrics {
        overshoot,
        rise_time: t90.expect("response must rise past 90%")
            - t10.expect("response must rise past 10%"),
        settling_time: settle.unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_small_overshoot_remark3() {
        let m = step_response(&SystemParams::paper_default());
        assert!(m.overshoot < 0.17, "overshoot {}", m.overshoot);
        assert!(m.rise_time > 0.0);
    }

    #[test]
    fn ratio_one_overshoots_more_than_ratio_six() {
        let base = SystemParams::paper_default();
        let bad = SystemParams {
            t_m0: 8.0,
            t_l0: 8.0,
            ..base
        };
        let good = step_response(&base);
        let ugly = step_response(&bad);
        assert!(
            ugly.overshoot > good.overshoot * 1.5,
            "ratio-1 overshoot {} vs ratio-6 {}",
            ugly.overshoot,
            good.overshoot
        );
    }

    #[test]
    fn smaller_delays_improve_rise_and_settling_remark2() {
        let slow = step_response(&SystemParams::paper_default());
        let fast_params = SystemParams {
            t_m0: 12.5,
            t_l0: 2.0,
            ..SystemParams::paper_default()
        };
        let fast = step_response(&fast_params);
        assert!(fast.rise_time < slow.rise_time);
        assert!(fast.settling_time < slow.settling_time);
    }

    #[test]
    fn measured_overshoot_tracks_damping_prediction() {
        // Measured overshoot must fall monotonically with the delay ratio
        // and stay under the ξ-formula bound (the loop's zero only damps).
        let mut prev = f64::INFINITY;
        for ratio in [2.0, 4.0, 8.0] {
            let sys = SystemParams {
                t_m0: 8.0 * ratio,
                t_l0: 8.0,
                ..SystemParams::paper_default()
            };
            let m = step_response(&sys);
            let predicted = sys.percent_overshoot();
            // The loop's zero damps the underdamped cases but adds a small
            // derivative kick near critical damping, hence the margin.
            assert!(
                m.overshoot <= predicted + 0.04,
                "ratio {ratio}: measured {} above bound {predicted}",
                m.overshoot
            );
            assert!(
                m.overshoot <= prev,
                "ratio {ratio}: overshoot {} not decreasing (prev {prev})",
                m.overshoot
            );
            prev = m.overshoot;
        }
    }
}
