//! Characteristic-root stability analysis (Section 4.3).
//!
//! After linearization the closed loop is the 2nd-order system (12):
//!
//! ```text
//! q̇ = γλ − γμ
//! μ̇ = K_m (q − q_ref) + K_l q̇,
//!    where K_m = m·γ·k·step / T_m0,  K_l = l·γ·k·step / T_l0
//! ```
//!
//! with characteristic roots `s₁,₂ = (−K_l ± √(K_l² − 4K_m)) / 2` (13).

/// A minimal complex number (just enough for root reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im == 0.0 {
            write!(f, "{:.4}", self.re)
        } else {
            write!(
                f,
                "{:.4} {} {:.4}i",
                self.re,
                if self.im >= 0.0 { '+' } else { '-' },
                self.im.abs()
            )
        }
    }
}

/// The linearized closed-loop parameters of Section 4.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Unit-conversion constant `m` (occupancy signal).
    pub m: f64,
    /// Unit-conversion constant `l` (difference signal).
    pub l: f64,
    /// Sampling-period constant `γ` of the Lindley queue equation.
    pub gamma: f64,
    /// Linearized μ–f slope constant `k` (from `c₂·μ²/f²` at the
    /// operating point).
    pub k: f64,
    /// Frequency step per action (normalized to the full range).
    pub step: f64,
    /// Basic time delay for the `q − q_ref` signal.
    pub t_m0: f64,
    /// Basic time delay for the `Δq` signal.
    pub t_l0: f64,
}

impl SystemParams {
    /// The evaluation's setting: `T_m0 = 50`, `T_l0 = 8`, unit conversions
    /// `m = l = 0.5`, normalized so that `K_l = 0.5` — the paper's
    /// "typical system setting, K_l < 1" under which Remark 3's 2–8×
    /// delay-ratio band follows.
    pub fn paper_default() -> Self {
        SystemParams {
            m: 0.5,
            l: 0.5,
            gamma: 8.0,
            k: 1.0,
            step: 1.0,
            t_m0: 50.0,
            t_l0: 8.0,
        }
    }

    /// `K_m = m·γ·k·step / T_m0`.
    pub fn k_m(&self) -> f64 {
        self.m * self.gamma * self.k * self.step / self.t_m0
    }

    /// `K_l = l·γ·k·step / T_l0`.
    pub fn k_l(&self) -> f64 {
        self.l * self.gamma * self.k * self.step / self.t_l0
    }

    /// The characteristic roots (13): `s₁,₂ = (−K_l ± √(K_l²−4K_m))/2`.
    pub fn roots(&self) -> (Complex, Complex) {
        let kl = self.k_l();
        let km = self.k_m();
        let disc = kl * kl - 4.0 * km;
        if disc >= 0.0 {
            let sq = disc.sqrt();
            (
                Complex {
                    re: (-kl + sq) / 2.0,
                    im: 0.0,
                },
                Complex {
                    re: (-kl - sq) / 2.0,
                    im: 0.0,
                },
            )
        } else {
            let sq = (-disc).sqrt();
            (
                Complex {
                    re: -kl / 2.0,
                    im: sq / 2.0,
                },
                Complex {
                    re: -kl / 2.0,
                    im: -sq / 2.0,
                },
            )
        }
    }

    /// Remark 1: the loop is stable iff both roots lie strictly in the
    /// left half-plane, which holds for any positive parameters.
    pub fn is_stable(&self) -> bool {
        let (r1, r2) = self.roots();
        r1.re < 0.0 && r2.re < 0.0
    }

    /// Damping ratio `ξ = K_l / (2√K_m)` (Remark 3).
    pub fn damping_ratio(&self) -> f64 {
        self.k_l() / (2.0 * self.k_m().sqrt())
    }

    /// Settling time `t_s = 8 / K_l` (Remark 2, from the control-theory text's formulas).
    pub fn settling_time(&self) -> f64 {
        8.0 / self.k_l()
    }

    /// Rising time `t_r = (0.8 + 1.25·K_l/√K_m) / √K_m`.
    pub fn rising_time(&self) -> f64 {
        let sqrt_km = self.k_m().sqrt();
        (0.8 + 1.25 * self.k_l() / sqrt_km) / sqrt_km
    }

    /// Maximum percent transient overshoot of the underdamped 2nd-order
    /// step response: `exp(−πξ/√(1−ξ²))` for `ξ < 1`, zero otherwise.
    pub fn percent_overshoot(&self) -> f64 {
        let xi = self.damping_ratio();
        if xi >= 1.0 {
            0.0
        } else {
            (-std::f64::consts::PI * xi / (1.0 - xi * xi).sqrt()).exp()
        }
    }

    /// The delay ratio `T_m0 / T_l0` (Remark 3's 2–8 band, assuming
    /// `m = l`).
    pub fn delay_ratio(&self) -> f64 {
        self.t_m0 / self.t_l0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_stable_remark1() {
        assert!(SystemParams::paper_default().is_stable());
    }

    #[test]
    fn any_positive_parameters_are_stable_remark1() {
        for &step in &[1e-4, 1e-2, 0.5] {
            for &t_m0 in &[1.0, 50.0, 1000.0] {
                for &t_l0 in &[1.0, 8.0, 500.0] {
                    let s = SystemParams {
                        step,
                        t_m0,
                        t_l0,
                        ..SystemParams::paper_default()
                    };
                    assert!(s.is_stable(), "unstable at {s:?}");
                }
            }
        }
    }

    #[test]
    fn roots_satisfy_characteristic_polynomial() {
        // s² + K_l·s + K_m = 0 must hold for both roots.
        let s = SystemParams::paper_default();
        let (r1, r2) = s.roots();
        for r in [r1, r2] {
            // (re+im·i)² + K_l(re+im·i) + K_m
            let re = r.re * r.re - r.im * r.im + s.k_l() * r.re + s.k_m();
            let im = 2.0 * r.re * r.im + s.k_l() * r.im;
            assert!(re.abs() < 1e-12 && im.abs() < 1e-12, "root {r} fails");
        }
    }

    #[test]
    fn smaller_delays_speed_up_the_response_remark2() {
        let slow = SystemParams::paper_default();
        let fast = SystemParams {
            t_m0: 25.0,
            t_l0: 4.0,
            ..slow
        };
        assert!(fast.settling_time() < slow.settling_time());
        assert!(fast.rising_time() < slow.rising_time());
    }

    #[test]
    fn paper_ratio_keeps_damping_above_half_remark3() {
        let s = SystemParams::paper_default();
        assert!(s.delay_ratio() > 2.0 && s.delay_ratio() < 8.0);
        assert!(s.damping_ratio() >= 0.5, "ξ = {}", s.damping_ratio());
        // ξ ≥ 0.5 caps the overshoot at ≈ 16 %.
        assert!(s.percent_overshoot() <= 0.17);
    }

    #[test]
    fn too_small_ratio_underdamps() {
        // T_m0 = T_l0 → ratio 1 → ξ < 0.5 → larger overshoot.
        let s = SystemParams {
            t_m0: 8.0,
            t_l0: 8.0,
            ..SystemParams::paper_default()
        };
        assert!(s.damping_ratio() < 0.5);
        assert!(s.percent_overshoot() > 0.17);
        assert!(s.is_stable(), "underdamped is still stable");
    }

    #[test]
    fn overdamped_has_no_overshoot() {
        let s = SystemParams {
            t_m0: 400.0,
            t_l0: 8.0,
            ..SystemParams::paper_default()
        };
        assert!(s.damping_ratio() >= 1.0);
        assert_eq!(s.percent_overshoot(), 0.0);
    }

    #[test]
    fn complex_display_and_abs() {
        let c = Complex { re: -0.5, im: 0.25 };
        assert!(format!("{c}").contains('i'));
        assert!((c.abs() - (0.3125f64).sqrt()).abs() < 1e-12);
        let r = Complex { re: -1.0, im: 0.0 };
        assert_eq!(format!("{r}"), "-1.0000");
    }
}
