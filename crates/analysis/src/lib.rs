//! Modeling and analysis companion to the adaptive DVFS controller.
//!
//! Two halves, mirroring the paper:
//!
//! * **Section 4 — control theory.** The aggregate continuous-time model
//!   of the controller/queue/clock-domain loop (mod `ode`), its
//!   linearization ([`linearize`]), the characteristic-root stability
//!   analysis with damping ratio, settling and rising times
//!   ([`stability`]), and numeric step responses that validate Remarks
//!   1–3 ([`response`]).
//! * **Section 5.2 — spectral analysis.** An in-crate radix-2 FFT
//!   ([`mod@spectrum::fft`]), periodogram/Welch and sine-multitaper spectral
//!   estimators ([`spectrum`]), band-limited variance integration, and the
//!   fast/slow workload classifier used to build Table 2 ([`classify`]).
//!
//! # Example
//!
//! ```
//! use mcd_analysis::stability::SystemParams;
//!
//! let sys = SystemParams::paper_default();
//! assert!(sys.is_stable()); // Remark 1
//! let xi = sys.damping_ratio();
//! assert!(xi > 0.5); // Remark 3's small-overshoot condition
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod discrete;
pub mod estimate;
pub mod frequency_response;
pub mod linearize;
pub mod ode;
pub mod response;
pub mod spectrum;
pub mod stability;

pub use classify::{ClassifiedBenchmark, WorkloadClassifier};
pub use ode::{ModelParams, OdeModel, OdeState};
pub use response::{step_response, StepResponseMetrics};
pub use stability::{Complex, SystemParams};
