//! Band-limited variance integration (Section 5.2).
//!
//! "With the spectrum … we can get the variance associated with any range
//! of frequencies by integrating the spectral density over the increment
//! of frequency ω." Wavelengths are expressed in sampling periods, as in
//! Figure 8's x-axis.

use crate::spectrum::periodogram::Spectrum;

/// Integrates `spectrum` over wavelengths in `[min_wavelength,
/// max_wavelength]` (samples). Returns the variance in that band.
///
/// # Panics
///
/// Panics unless `2.0 <= min_wavelength < max_wavelength` (two samples is
/// the Nyquist wavelength).
pub fn band_variance(spectrum: &Spectrum, min_wavelength: f64, max_wavelength: f64) -> f64 {
    assert!(
        min_wavelength >= 2.0 && min_wavelength < max_wavelength,
        "invalid wavelength band [{min_wavelength}, {max_wavelength}]"
    );
    let f_lo = 1.0 / max_wavelength;
    let f_hi = 1.0 / min_wavelength;
    spectrum
        .density
        .iter()
        .enumerate()
        .skip(1) // DC carries no variance after detrending
        .filter(|(k, _)| {
            let f = spectrum.frequency(*k);
            f >= f_lo && f <= f_hi
        })
        .map(|(_, d)| d * spectrum.df)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::periodogram::periodogram;

    fn tone(n: usize, wavelength: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * i as f64 / wavelength).sin())
            .collect()
    }

    #[test]
    fn variance_lands_in_the_tone_band() {
        let x = tone(4096, 32.0, 2.0); // variance amp²/2 = 2
        let s = periodogram(&x);
        let in_band = band_variance(&s, 16.0, 64.0);
        let out_band = band_variance(&s, 128.0, 4096.0);
        assert!((in_band - 2.0).abs() < 0.05, "in-band {in_band}");
        assert!(out_band < 0.01, "out-of-band {out_band}");
    }

    #[test]
    fn disjoint_bands_partition_total_variance() {
        let x: Vec<f64> = tone(8192, 20.0, 1.0)
            .iter()
            .zip(tone(8192, 1000.0, 3.0))
            .map(|(a, b)| a + b)
            .collect();
        let s = periodogram(&x);
        let fast = band_variance(&s, 2.0, 100.0);
        let slow = band_variance(&s, 100.0, 8192.0);
        let total = s.total_variance();
        assert!((fast + slow - total).abs() / total < 0.01);
        assert!((fast - 0.5).abs() < 0.05, "fast {fast}"); // amp 1 → var 0.5
        assert!((slow - 4.5).abs() < 0.1, "slow {slow}"); // amp 3 → var 4.5
    }

    #[test]
    #[should_panic(expected = "invalid wavelength band")]
    fn inverted_band_panics() {
        let s = periodogram(&[0.0, 1.0, 0.0, 1.0]);
        let _ = band_variance(&s, 64.0, 16.0);
    }
}
