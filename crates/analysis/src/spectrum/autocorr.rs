//! Autocorrelation via FFT, and the Wiener–Khinchin consistency check.
//!
//! The autocovariance sequence is the inverse transform of the power
//! spectrum; computing it both ways is the classic internal-consistency
//! check for a spectral-analysis stack, and the time-domain view is
//! occasionally more legible than Figure 8's spectrum (the first zero
//! crossing estimates the variation wavelength directly).

use crate::spectrum::fft::{fft, ifft, next_pow2};
use crate::spectrum::periodogram::detrend;

/// Biased autocovariance of `x` at lags `0..max_lag` (biased = divided by
/// `n`, which keeps the sequence positive semidefinite).
///
/// # Panics
///
/// Panics if `x` has fewer than 2 samples or `max_lag >= x.len()`.
pub fn autocovariance(x: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(x.len() >= 2, "need at least two samples");
    assert!(max_lag < x.len(), "lag exceeds series length");
    let n = x.len();
    // Zero-pad to 2n to make circular convolution linear.
    let m = next_pow2(2 * n);
    let mut re = x.to_vec();
    detrend(&mut re);
    re.resize(m, 0.0);
    let mut im = vec![0.0; m];
    fft(&mut re, &mut im);
    for k in 0..m {
        let p = re[k] * re[k] + im[k] * im[k];
        re[k] = p;
        im[k] = 0.0;
    }
    ifft(&mut re, &mut im);
    (0..=max_lag).map(|lag| re[lag] / n as f64).collect()
}

/// Autocorrelation (autocovariance normalized by lag-0 variance).
/// A constant series has zero variance; its autocorrelation is defined
/// here as 1 at lag 0 and 0 elsewhere.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let acov = autocovariance(x, max_lag);
    let var = acov[0];
    if var <= 1e-30 {
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    acov.into_iter().map(|c| c / var).collect()
}

/// Estimates the dominant variation wavelength from the first
/// zero-crossing lag of the autocorrelation, which sits at a quarter
/// period for periodic signals (`None` if it never crosses).
pub fn dominant_wavelength(x: &[f64]) -> Option<f64> {
    let max_lag = x.len() / 2;
    let ac = autocorrelation(x, max_lag);
    ac.windows(2)
        .position(|w| w[0] > 0.0 && w[1] <= 0.0)
        .map(|lag| 4.0 * (lag + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_autocov(x: &[f64], max_lag: usize) -> Vec<f64> {
        let n = x.len();
        let mean = x.iter().sum::<f64>() / n as f64;
        (0..=max_lag)
            .map(|lag| {
                (0..n - lag)
                    .map(|i| (x[i] - mean) * (x[i + lag] - mean))
                    .sum::<f64>()
                    / n as f64
            })
            .collect()
    }

    #[test]
    fn matches_naive_computation() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 13 + 7) % 23) as f64).collect();
        let fast = autocovariance(&x, 50);
        let slow = naive_autocov(&x, 50);
        for (lag, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {lag}: {a} vs {b}");
        }
    }

    #[test]
    fn lag_zero_is_variance() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin() * 3.0).collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        let acov = autocovariance(&x, 10);
        assert!((acov[0] - var).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_is_normalized_and_bounded() {
        let x: Vec<f64> = (0..500).map(|i| ((i * 31 + 11) % 17) as f64).collect();
        let ac = autocorrelation(&x, 100);
        assert!((ac[0] - 1.0).abs() < 1e-12);
        for (lag, &r) in ac.iter().enumerate() {
            assert!(r.abs() <= 1.0 + 1e-9, "lag {lag}: {r}");
        }
    }

    #[test]
    fn constant_series_defined_autocorrelation() {
        let ac = autocorrelation(&[4.0; 100], 10);
        assert_eq!(ac[0], 1.0);
        assert!(ac[1..].iter().all(|&r| r == 0.0));
    }

    #[test]
    fn sine_wavelength_recovered() {
        let lambda = 64.0;
        let x: Vec<f64> = (0..4096)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / lambda).sin())
            .collect();
        let w = dominant_wavelength(&x).expect("sine crosses zero");
        assert!((w - lambda).abs() <= 4.0, "estimated {w}");
    }

    /// Wiener–Khinchin: total variance from the spectrum equals the
    /// autocovariance at lag zero.
    #[test]
    fn wiener_khinchin_consistency() {
        use crate::spectrum::periodogram::periodogram;
        let x: Vec<f64> = (0..2048)
            .map(|i| (i as f64 / 37.0).sin() * 2.0 + ((i * 7 + 3) % 13) as f64 * 0.1)
            .collect();
        let spectral_var = periodogram(&x).total_variance();
        let time_var = autocovariance(&x, 1)[0];
        assert!(
            (spectral_var - time_var).abs() / time_var < 1e-9,
            "spectrum {spectral_var} vs autocov {time_var}"
        );
    }

    #[test]
    #[should_panic(expected = "lag exceeds")]
    fn oversized_lag_panics() {
        let _ = autocovariance(&[1.0, 2.0], 5);
    }
}
