//! Spectral analysis of workload variability (Section 5.2).
//!
//! The paper estimates the *variance spectrum* of queue-occupancy series —
//! the distribution of variance over variation frequency ω — with the
//! multitaper method, then integrates the density over the short-wavelength
//! band to identify benchmarks with fast workload variations (Figure 8).
//! This module provides the full chain from scratch: an in-crate radix-2
//! FFT, periodogram and Welch estimators, sine-taper multitaper
//! estimation, and band-limited variance integration.

pub mod autocorr;
pub mod fft;
pub mod periodogram;
pub mod taper;
pub mod variance;

pub use autocorr::{autocorrelation, autocovariance, dominant_wavelength};
pub use fft::{fft, ifft};
pub use periodogram::{periodogram, welch, Spectrum};
pub use taper::multitaper;
pub use variance::band_variance;
