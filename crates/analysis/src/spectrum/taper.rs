//! Sine-taper multitaper spectral estimation.
//!
//! The paper uses "the Multi-taper method which utilizes the famous fast
//! Fourier transform during the estimation process". We use the sine
//! tapers of Riedel & Sidorenko — a closed-form orthonormal taper family
//! that avoids solving for Slepian sequences — and average the
//! eigenspectra.

use crate::spectrum::fft::{fft, next_pow2};
use crate::spectrum::periodogram::{detrend, Spectrum};

/// The k-th (0-based) orthonormal sine taper of length `n`:
/// `w_k[t] = √(2/(n+1)) · sin(π(k+1)(t+1)/(n+1))`.
pub fn sine_taper(k: usize, n: usize) -> Vec<f64> {
    let norm = (2.0 / (n as f64 + 1.0)).sqrt();
    (0..n)
        .map(|t| {
            norm * (std::f64::consts::PI * (k as f64 + 1.0) * (t as f64 + 1.0) / (n as f64 + 1.0))
                .sin()
        })
        .collect()
}

/// Multitaper spectrum of `x` using `k_tapers` sine tapers.
///
/// # Panics
///
/// Panics if `x` has fewer than 8 samples or `k_tapers` is zero.
pub fn multitaper(x: &[f64], k_tapers: usize) -> Spectrum {
    assert!(x.len() >= 8, "need at least eight samples");
    assert!(k_tapers > 0, "need at least one taper");
    let n = x.len();
    let m = next_pow2(n);
    let mut x = x.to_vec();
    detrend(&mut x);

    let half = m / 2;
    let mut acc = vec![0.0; half + 1];
    for k in 0..k_tapers {
        let taper = sine_taper(k, n);
        let mut re: Vec<f64> = x.iter().zip(&taper).map(|(v, w)| v * w).collect();
        re.resize(m, 0.0);
        let mut im = vec![0.0; m];
        fft(&mut re, &mut im);
        // Orthonormal taper ⇒ Σ_f |X|²·df = Σ_t (x·w)² ≈ var(x).
        let power = |i: usize| re[i] * re[i] + im[i] * im[i];
        acc[0] += power(0);
        for (i, a) in acc.iter_mut().enumerate().take(half).skip(1) {
            *a += power(i) + power(m - i);
        }
        acc[half] += power(half);
    }
    for a in acc.iter_mut() {
        *a /= k_tapers as f64;
    }
    Spectrum {
        density: acc,
        df: 1.0 / m as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tapers_are_orthonormal() {
        let n = 256;
        for a in 0..4 {
            for b in 0..4 {
                let ta = sine_taper(a, n);
                let tb = sine_taper(b, n);
                let dot: f64 = ta.iter().zip(&tb).map(|(x, y)| x * y).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "tapers {a},{b}: {dot}");
            }
        }
    }

    #[test]
    fn multitaper_integrates_to_variance() {
        let mut rng = StdRng::seed_from_u64(17);
        let x: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() * 2.0).collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        let s = multitaper(&x, 4);
        assert!(
            (s.total_variance() - var).abs() / var < 0.05,
            "{} vs {var}",
            s.total_variance()
        );
    }

    #[test]
    fn multitaper_finds_tone() {
        let n = 4096;
        let lambda = 50.0; // samples
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / lambda).sin())
            .collect();
        let s = multitaper(&x, 4);
        let peak = s
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert!(
            (s.wavelength(peak) - lambda).abs() < 2.0,
            "peak at λ {}",
            s.wavelength(peak)
        );
    }

    #[test]
    fn multitaper_variance_is_lower_than_periodogram() {
        use crate::spectrum::periodogram::periodogram;
        let mut rng = StdRng::seed_from_u64(23);
        let x: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() - 0.5).collect();
        let raw = periodogram(&x);
        let mt = multitaper(&x, 5);
        let cv = |d: &[f64]| {
            let m = d.iter().sum::<f64>() / d.len() as f64;
            let v = d.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / d.len() as f64;
            v.sqrt() / m
        };
        assert!(cv(&mt.density[1..]) < cv(&raw.density[1..]) / 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one taper")]
    fn zero_tapers_panics() {
        let _ = multitaper(&[0.0; 64], 0);
    }
}
