//! In-place radix-2 Cooley–Tukey FFT (no external DSP dependencies).

/// Forward FFT of the complex signal `(re, im)`, in place.
///
/// # Panics
///
/// Panics unless `re.len() == im.len()` and the length is a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, false);
}

/// Inverse FFT (includes the 1/N normalization), in place.
///
/// # Panics
///
/// Panics unless `re.len() == im.len()` and the length is a power of two.
pub fn ifft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, true);
    let n = re.len() as f64;
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        *r /= n;
        *i /= n;
    }
}

fn transform(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched real/imag lengths");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0, 0.0);
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let t_re = re[b] * cur_re - im[b] * cur_im;
                let t_im = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[f64]) -> Vec<(f64, f64)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (t, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64;
                    re += v * ang.cos();
                    im += v * ang.sin();
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut re = x.clone();
        let mut im = vec![0.0; 32];
        fft(&mut re, &mut im);
        for (k, (nre, nim)) in naive_dft(&x).into_iter().enumerate() {
            assert!((re[k] - nre).abs() < 1e-9, "bin {k} re");
            assert!((im[k] - nim).abs() < 1e-9, "bin {k} im");
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 64;
        let freq = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64).cos())
            .collect();
        let mut re = x;
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        for k in 0..n {
            let mag = re[k].hypot(im[k]);
            if k == freq || k == n - freq {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k} mag {mag}");
            } else {
                assert!(mag < 1e-9, "bin {k} leaked {mag}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut re = x.clone();
        let mut im = vec![0.0; 128];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        for (a, b) in x.iter().zip(re.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!(im.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<f64> = (0..256).map(|i| ((i * 13 + 1) % 17) as f64).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let mut re = x;
        let mut im = vec![0.0; 256];
        fft(&mut re, &mut im);
        let freq_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn trivial_lengths() {
        let mut re = vec![3.0];
        let mut im = vec![0.0];
        fft(&mut re, &mut im);
        assert_eq!(re[0], 3.0);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft(&mut re, &mut im);
    }
}
