//! Periodogram and Welch spectral estimators.

use crate::spectrum::fft::{fft, next_pow2};

/// A one-sided variance spectrum.
///
/// `density[k]` is variance per unit frequency at `f = k·df` cycles per
/// sample, for `k` in `0..=M/2`; the total integrates (≈) to the signal's
/// variance: `Σ density[k] · df ≈ var(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// One-sided spectral density values.
    pub density: Vec<f64>,
    /// Frequency-bin spacing in cycles per sample.
    pub df: f64,
}

impl Spectrum {
    /// Frequency of bin `k` in cycles per sample.
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 * self.df
    }

    /// Wavelength of bin `k` in samples (∞ for the DC bin).
    pub fn wavelength(&self, k: usize) -> f64 {
        if k == 0 {
            f64::INFINITY
        } else {
            1.0 / self.frequency(k)
        }
    }

    /// Total integrated variance.
    pub fn total_variance(&self) -> f64 {
        self.density.iter().sum::<f64>() * self.df
    }
}

/// Removes the mean in place; returns the removed mean.
pub(crate) fn detrend(x: &mut [f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    mean
}

/// Folds a two-sided |X|² array into a one-sided density with the given
/// per-bin normalization.
fn fold_one_sided(re: &[f64], im: &[f64], norm: f64) -> Vec<f64> {
    let m = re.len();
    let half = m / 2;
    let power = |k: usize| (re[k] * re[k] + im[k] * im[k]) * norm;
    let mut out = Vec::with_capacity(half + 1);
    out.push(power(0));
    for k in 1..half {
        out.push(power(k) + power(m - k));
    }
    out.push(power(half));
    out
}

/// The raw (single-segment) periodogram of `x`, zero-padded to a power of
/// two.
///
/// # Panics
///
/// Panics if `x` has fewer than 2 samples.
pub fn periodogram(x: &[f64]) -> Spectrum {
    assert!(x.len() >= 2, "need at least two samples");
    let n = x.len();
    let m = next_pow2(n);
    let mut re = x.to_vec();
    detrend(&mut re);
    re.resize(m, 0.0);
    let mut im = vec![0.0; m];
    fft(&mut re, &mut im);
    // Σ_k |X[k]|²/(N·M) = Σ x²/N = var(x): density·df integrates to var.
    Spectrum {
        density: fold_one_sided(&re, &im, 1.0 / n as f64),
        df: 1.0 / m as f64,
    }
}

/// Welch's method: Hann-windowed segments of `seg_len` with 50 % overlap,
/// averaged.
///
/// # Panics
///
/// Panics if `seg_len < 4` or `x.len() < seg_len`.
pub fn welch(x: &[f64], seg_len: usize) -> Spectrum {
    assert!(seg_len >= 4, "segment too short");
    assert!(x.len() >= seg_len, "signal shorter than a segment");
    let m = next_pow2(seg_len);
    let hop = seg_len / 2;
    let window: Vec<f64> = (0..seg_len)
        .map(|i| {
            let w = std::f64::consts::PI * i as f64 / (seg_len - 1) as f64;
            w.sin() * w.sin() // Hann
        })
        .collect();
    let wpow: f64 = window.iter().map(|w| w * w).sum();

    let mut x = x.to_vec();
    detrend(&mut x);
    let mut acc = vec![0.0; m / 2 + 1];
    let mut segments = 0;
    let mut start = 0;
    while start + seg_len <= x.len() {
        let mut re: Vec<f64> = x[start..start + seg_len]
            .iter()
            .zip(&window)
            .map(|(v, w)| v * w)
            .collect();
        re.resize(m, 0.0);
        let mut im = vec![0.0; m];
        fft(&mut re, &mut im);
        let one = fold_one_sided(&re, &im, 1.0 / wpow);
        for (a, p) in acc.iter_mut().zip(one) {
            *a += p;
        }
        segments += 1;
        start += hop;
    }
    for a in acc.iter_mut() {
        *a /= segments as f64;
    }
    Spectrum {
        density: acc,
        df: 1.0 / m as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn periodogram_integrates_to_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..1024).map(|_| rng.gen::<f64>() * 4.0).collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        let s = periodogram(&x);
        assert!(
            (s.total_variance() - var).abs() / var < 1e-9,
            "{} vs {var}",
            s.total_variance()
        );
    }

    #[test]
    fn tone_peaks_at_its_frequency() {
        let n = 2048;
        let cycles = 64.0; // frequency 64/2048 = 1/32 cycles/sample
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * cycles * i as f64 / n as f64).sin())
            .collect();
        let s = periodogram(&x);
        let peak = s
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert!(
            (s.wavelength(peak) - 32.0).abs() < 0.5,
            "peak at λ {}",
            s.wavelength(peak)
        );
    }

    #[test]
    fn welch_recovers_white_noise_variance() {
        let mut rng = StdRng::seed_from_u64(9);
        let x: Vec<f64> = (0..16_384).map(|_| rng.gen::<f64>() - 0.5).collect();
        let var = 1.0 / 12.0;
        let s = welch(&x, 512);
        assert!(
            (s.total_variance() - var).abs() / var < 0.1,
            "{} vs {var}",
            s.total_variance()
        );
    }

    #[test]
    fn welch_smooths_relative_to_periodogram() {
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<f64> = (0..8192).map(|_| rng.gen::<f64>() - 0.5).collect();
        let raw = periodogram(&x);
        let smooth = welch(&x, 256);
        // Coefficient of variation of the density should shrink markedly.
        let cv = |d: &[f64]| {
            let m = d.iter().sum::<f64>() / d.len() as f64;
            let v = d.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / d.len() as f64;
            v.sqrt() / m
        };
        assert!(cv(&smooth.density[1..]) < cv(&raw.density[1..]) / 2.0);
    }

    #[test]
    fn wavelength_and_frequency_invert() {
        let s = periodogram(&[1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 2.0]);
        assert_eq!(s.wavelength(0), f64::INFINITY);
        let k = 2;
        assert!((s.wavelength(k) * s.frequency(k) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_panics() {
        let _ = periodogram(&[1.0]);
    }
}
