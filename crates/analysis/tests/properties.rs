//! Property-based tests for the analysis toolkit.

use mcd_analysis::discrete::{exact_discretize, is_stable_discrete};
use mcd_analysis::frequency_response::magnitude;
use mcd_analysis::spectrum::{autocovariance, fft, ifft, periodogram};
use mcd_analysis::SystemParams;
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemParams> {
    (0.1f64..4.0, 5.0f64..400.0, 1.0f64..100.0).prop_map(|(step, t_m0, t_l0)| SystemParams {
        step,
        t_m0,
        t_l0,
        ..SystemParams::paper_default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Remark 1 as a property: every positive parameterization is stable,
    /// and its exact discretization at any period is stable too.
    #[test]
    fn stability_is_universal(sys in arb_system(), h in 0.01f64..100.0) {
        prop_assert!(sys.is_stable());
        prop_assert!(is_stable_discrete(exact_discretize(&sys, h)));
    }

    /// The characteristic roots always satisfy s² + K_l·s + K_m = 0.
    #[test]
    fn roots_solve_characteristic_polynomial(sys in arb_system()) {
        let (r1, r2) = sys.roots();
        for r in [r1, r2] {
            let re = r.re * r.re - r.im * r.im + sys.k_l() * r.re + sys.k_m();
            let im = 2.0 * r.re * r.im + sys.k_l() * r.im;
            prop_assert!(re.abs() < 1e-9 && im.abs() < 1e-9);
        }
    }

    /// |H(jω)| is 1 at DC and below 1/√2 beyond the tracking bandwidth…
    /// and always non-negative and finite.
    #[test]
    fn frequency_response_is_sane(sys in arb_system(), omega in 0.0f64..1000.0) {
        let m = magnitude(&sys, omega);
        prop_assert!(m.is_finite() && m >= 0.0);
        prop_assert!((magnitude(&sys, 0.0) - 1.0).abs() < 1e-12);
    }

    /// FFT round-trips arbitrary signals (power-of-two lengths).
    #[test]
    fn fft_roundtrip(x in proptest::collection::vec(-100.0f64..100.0, 1..200), pow in 0u32..3) {
        let n = (x.len().next_power_of_two() << pow).max(2);
        let mut re = x.clone();
        re.resize(n, 0.0);
        let orig = re.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        for (a, b) in orig.iter().zip(&re) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        prop_assert!(im.iter().all(|v| v.abs() < 1e-8));
    }

    /// Parseval as a property: the periodogram's integrated variance equals
    /// the series variance.
    #[test]
    fn periodogram_preserves_variance(x in proptest::collection::vec(-50.0f64..50.0, 8..300)) {
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let s = periodogram(&x);
        prop_assert!((s.total_variance() - var).abs() <= 1e-9 * var.max(1.0));
    }

    /// Autocovariance at lag 0 dominates all other lags in magnitude.
    #[test]
    fn autocovariance_peaks_at_zero(x in proptest::collection::vec(-10.0f64..10.0, 8..300)) {
        let acov = autocovariance(&x, x.len() / 2);
        for (lag, &c) in acov.iter().enumerate() {
            prop_assert!(c.abs() <= acov[0] + 1e-9, "lag {lag}: {c} vs {}", acov[0]);
        }
    }
}
