//! Property-based tests for the workload generators.

use mcd_workloads::{
    adversarial, registry, synthetic, BenchmarkSpec, InstructionMix, OpClass, TraceGenerator,
    TraceStats,
};
use proptest::prelude::*;

fn arb_benchmark_name() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(registry::names())
}

/// Any spec the generators accept: registry benchmarks, synthetic
/// wavelengths, and the adversarial constructors.
fn arb_spec() -> impl Strategy<Value = BenchmarkSpec> {
    prop_oneof![
        arb_benchmark_name().prop_map(|n| registry::by_name(n).expect("registered")),
        (400u64..40_000, 0.05f64..0.95).prop_map(|(p, d)| synthetic::square_wave(p, d)),
        Just(synthetic::resonance_probe()),
        (1.0f64..200.0, 1.0f64..50.0).prop_map(|(m, l)| adversarial::phase_storm(m, l)),
        (1u32..8, 50u64..500)
            .prop_map(|(num, den_extra)| { adversarial::resonant_burst(num, num + 1, den_extra) }),
        (500u64..5_000).prop_map(|q| {
            adversarial::interleaved_mix(&["gzip", "swim", "mcf"], q).expect("valid programs")
        }),
    ]
}

/// The phase name the schedule assigns to dynamic instruction `pos`.
fn scheduled_phase(spec: &BenchmarkSpec, pos: u64) -> &'static str {
    let cycle = spec.cycle_length();
    let pos = if spec.loops {
        pos % cycle
    } else if pos >= cycle {
        // Non-looping programs stay in their final phase forever.
        return spec.phases.last().expect("has phases").name;
    } else {
        pos
    };
    let mut acc = 0u64;
    for p in &spec.phases {
        acc += p.len_ops;
        if pos < acc {
            return p.name;
        }
    }
    unreachable!("pos is inside the cycle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequence numbers are dense and dependencies strictly backward for
    /// every benchmark and seed.
    #[test]
    fn seqs_dense_and_deps_backward(name in arb_benchmark_name(), seed in 0u64..10_000) {
        let spec = registry::by_name(name).expect("registered");
        for (i, op) in TraceGenerator::new(&spec, 2_000, seed).enumerate() {
            prop_assert_eq!(op.seq, i as u64);
            for s in op.sources() {
                prop_assert!(s < op.seq);
            }
            prop_assert_eq!(op.addr.is_some(), op.class.is_mem());
        }
    }

    /// Dynamic class fractions approach the phase mix for single-phase
    /// benchmarks.
    #[test]
    fn single_phase_mix_converges(seed in 0u64..10_000) {
        let spec = registry::by_name("wupwise").expect("registered");
        let ops: Vec<_> = TraceGenerator::new(&spec, 50_000, seed).collect();
        let stats = TraceStats::from_trace(&ops);
        let want = spec.phases[0].mix;
        for &c in &OpClass::ALL {
            prop_assert!(
                (stats.fraction(c) - want.fraction(c)).abs() < 0.02,
                "{}: {} vs {}", c, stats.fraction(c), want.fraction(c)
            );
        }
    }

    /// Mix construction accepts exactly the normalized non-negative cases.
    #[test]
    fn mix_validation(parts in proptest::array::uniform8(0.0f64..1.0)) {
        let total: f64 = parts.iter().sum();
        let result = InstructionMix::new(
            parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], parts[6], parts[7],
        );
        if (total - 1.0).abs() <= 1e-6 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// Normalizing arbitrary non-negative parts always yields a valid mix
    /// whose sampler covers only nonzero classes.
    #[test]
    fn normalized_mix_samples_within_support(parts in proptest::array::uniform8(0.01f64..1.0), u in 0.0f64..1.0) {
        let total: f64 = parts.iter().sum();
        let mix = InstructionMix::new(
            parts[0] / total, parts[1] / total, parts[2] / total, parts[3] / total,
            parts[4] / total, parts[5] / total, parts[6] / total, parts[7] / total,
        ).expect("normalized");
        let class = mix.sample(u);
        prop_assert!(mix.fraction(class) > 0.0);
    }

    /// The same `(spec, ops, seed)` always yields the identical micro-op
    /// stream — for every registry benchmark, synthetic wavelength, and
    /// adversarial generator. The bake-off matrix leans on this: a run's
    /// label *is* its reproduction recipe.
    #[test]
    fn same_seed_same_stream(spec in arb_spec(), seed in 0u64..10_000) {
        let a: Vec<_> = TraceGenerator::new(&spec, 2_000, seed).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, 2_000, seed).collect();
        // MicroOp is Eq (no float fields), so equality is bit-exact.
        prop_assert_eq!(a, b);
    }

    /// Rebuilding a spec from the same parameters yields bit-identical
    /// phase schedules: names, lengths, and every f64 knob compared via
    /// `to_bits` (the floats feed seeded samplers, so `+0.0 == -0.0`
    /// tolerance would still let streams diverge).
    #[test]
    fn spec_construction_is_bit_deterministic(spec in arb_spec()) {
        // arb_spec is parameterless given the same inputs; clone stands in
        // for a second construction and the field walk pins what equality
        // must mean for specs.
        let other = spec.clone();
        prop_assert_eq!(spec.phases.len(), other.phases.len());
        for (p, q) in spec.phases.iter().zip(&other.phases) {
            prop_assert_eq!(p.name, q.name);
            prop_assert_eq!(p.len_ops, q.len_ops);
            for (a, b) in [
                (p.dep_mean, q.dep_mean),
                (p.l1d_miss, q.l1d_miss),
                (p.l2_miss, q.l2_miss),
                (p.branch_random, q.branch_random),
                (p.branch_taken, q.branch_taken),
            ] {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for &c in &OpClass::ALL {
                prop_assert_eq!(p.mix.fraction(c).to_bits(), q.mix.fraction(c).to_bits());
            }
        }
    }

    /// The generator's phase attribution lands exactly where the schedule
    /// says: after emitting dynamic instruction `k`, `current_phase()`
    /// names the phase containing offset `k` (modulo the cycle for
    /// looping specs; the final phase forever past the end otherwise).
    #[test]
    fn phase_boundaries_are_exact(spec in arb_spec(), seed in 0u64..1_000) {
        // Cover at least one full wrap for loopers without unbounded work.
        let total = (spec.cycle_length() + spec.min_phase_len()).clamp(256, 20_000);
        let mut g = TraceGenerator::new(&spec, total, seed);
        for k in 0..total {
            prop_assert!(g.next().is_some());
            prop_assert_eq!(
                g.current_phase().name,
                scheduled_phase(&spec, k),
                "phase attribution drifted at op {} of {}", k, spec.name
            );
        }
    }

    /// Blending is deterministic to the bit and stays a valid mix across
    /// the whole interpolation range.
    #[test]
    fn blended_mix_is_bit_deterministic_and_normalized(t in 0.0f64..1.0, u in 0.0f64..1.0) {
        let a = InstructionMix::integer_typical();
        let b = InstructionMix::fp_burst();
        let x = a.blended(&b, t);
        let y = a.blended(&b, t);
        let total: f64 = OpClass::ALL.iter().map(|&c| x.fraction(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "blend denormalized: {}", total);
        for &c in &OpClass::ALL {
            prop_assert_eq!(x.fraction(c).to_bits(), y.fraction(c).to_bits());
            prop_assert!(x.fraction(c) >= 0.0);
        }
        prop_assert_eq!(x.sample(u), y.sample(u));
    }
}
