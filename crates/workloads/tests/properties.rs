//! Property-based tests for the workload generators.

use mcd_workloads::{registry, InstructionMix, OpClass, TraceGenerator, TraceStats};
use proptest::prelude::*;

fn arb_benchmark_name() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(registry::names())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequence numbers are dense and dependencies strictly backward for
    /// every benchmark and seed.
    #[test]
    fn seqs_dense_and_deps_backward(name in arb_benchmark_name(), seed in 0u64..10_000) {
        let spec = registry::by_name(name).expect("registered");
        for (i, op) in TraceGenerator::new(&spec, 2_000, seed).enumerate() {
            prop_assert_eq!(op.seq, i as u64);
            for s in op.sources() {
                prop_assert!(s < op.seq);
            }
            prop_assert_eq!(op.addr.is_some(), op.class.is_mem());
        }
    }

    /// Dynamic class fractions approach the phase mix for single-phase
    /// benchmarks.
    #[test]
    fn single_phase_mix_converges(seed in 0u64..10_000) {
        let spec = registry::by_name("wupwise").expect("registered");
        let ops: Vec<_> = TraceGenerator::new(&spec, 50_000, seed).collect();
        let stats = TraceStats::from_trace(&ops);
        let want = spec.phases[0].mix;
        for &c in &OpClass::ALL {
            prop_assert!(
                (stats.fraction(c) - want.fraction(c)).abs() < 0.02,
                "{}: {} vs {}", c, stats.fraction(c), want.fraction(c)
            );
        }
    }

    /// Mix construction accepts exactly the normalized non-negative cases.
    #[test]
    fn mix_validation(parts in proptest::array::uniform8(0.0f64..1.0)) {
        let total: f64 = parts.iter().sum();
        let result = InstructionMix::new(
            parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], parts[6], parts[7],
        );
        if (total - 1.0).abs() <= 1e-6 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// Normalizing arbitrary non-negative parts always yields a valid mix
    /// whose sampler covers only nonzero classes.
    #[test]
    fn normalized_mix_samples_within_support(parts in proptest::array::uniform8(0.01f64..1.0), u in 0.0f64..1.0) {
        let total: f64 = parts.iter().sum();
        let mix = InstructionMix::new(
            parts[0] / total, parts[1] / total, parts[2] / total, parts[3] / total,
            parts[4] / total, parts[5] / total, parts[6] / total, parts[7] / total,
        ).expect("normalized");
        let class = mix.sample(u);
        prop_assert!(mix.fraction(class) > 0.0);
    }
}
