//! Lookup of named benchmarks (the paper's Table 2 population).

use crate::benchmarks::{mediabench, specfp, specint, BenchmarkSpec, Suite, VariabilityClass};

/// Every benchmark in the study: 6 MediaBench, 6 SPECint2000, 5 SPECfp2000.
pub fn all() -> Vec<BenchmarkSpec> {
    let mut v = mediabench::all();
    v.extend(specint::all());
    v.extend(specfp::all());
    v
}

/// Benchmarks belonging to `suite`.
pub fn by_suite(suite: Suite) -> Vec<BenchmarkSpec> {
    all().into_iter().filter(|b| b.suite == suite).collect()
}

/// Looks up a benchmark by its canonical name.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|b| b.name == name)
}

/// Benchmarks designed to land in the given variability class.
pub fn by_variability(class: VariabilityClass) -> Vec<BenchmarkSpec> {
    all()
        .into_iter()
        .filter(|b| b.expected_variability == class)
        .collect()
}

/// Canonical names of all benchmarks, in suite order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks_total() {
        assert_eq!(all().len(), 17);
        assert_eq!(by_suite(Suite::MediaBench).len(), 6);
        assert_eq!(by_suite(Suite::SpecInt2000).len(), 6);
        assert_eq!(by_suite(Suite::SpecFp2000).len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut n = names();
        let before = n.len();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), before, "duplicate benchmark names");
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        for name in names() {
            let b = by_name(name).expect("name from names() must resolve");
            assert_eq!(b.name, name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn fast_group_is_nonempty_and_not_everything() {
        let fast = by_variability(VariabilityClass::Fast);
        let slow = by_variability(VariabilityClass::Slow);
        assert!(!fast.is_empty());
        assert!(!slow.is_empty());
        assert_eq!(fast.len() + slow.len(), 17);
    }
}
