//! Adversarial workloads: phase programs built to hurt DVFS controllers.
//!
//! The named benchmarks model real programs and the [`crate::synthetic`]
//! constructors give clean wavelengths; the generators here are tuned
//! against the *controllers themselves* — the time-delay relay's
//! filtering delays, the synchronization interface's rational-ratio
//! resonances, and the interval framers' assumption that one program's
//! phases arrive contiguously. They are the hostile half of the bake-off
//! matrix (`repro bakeoff`).
//!
//! Everything here is an ordinary [`BenchmarkSpec`]: seeding and
//! determinism come from [`crate::TraceGenerator`] exactly as for every
//! other workload (same `(spec, total_ops, seed)` → identical micro-op
//! stream).

use crate::benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
use crate::mix::InstructionMix;
use crate::phase::PhaseSpec;
use crate::registry;

/// Committed instructions per controller sampling period at full speed,
/// used to convert the relay delays (counted in sampling periods) into
/// phase lengths. The sampling period is 4 ns and the core retires about
/// one micro-op per nanosecond at the maximum operating point, so this
/// is an *approximate* full-speed calibration — which is all a storm
/// needs: its deviations merely have to straddle the delay, not hit it
/// exactly.
pub const INSTS_PER_SAMPLE: f64 = 4.0;

/// A phase-change storm tuned to the time-delay relay: FP surges and
/// integer lulls whose durations straddle the relay's filtering delays
/// (`t_m0` and `t_l0`, both in sampling periods — the
/// `AdaptiveConfig::t_m0`/`t_l0` knobs, paper defaults 50 and 8).
///
/// The schedule interleaves four duration regimes per delay: deviations
/// just *short* of the delay arm the relay and then reset it (maximum
/// filtering churn, zero useful actions), deviations just *past* it fire
/// the relay at the worst moment (the workload reverts as the frequency
/// step lands), and long confirmations keep the controller from simply
/// ignoring the signal. Fixed-interval schemes see the same storm as
/// aliased interval averages.
///
/// # Panics
///
/// Panics unless both delays are positive.
pub fn phase_storm(t_m0: f64, t_l0: f64) -> BenchmarkSpec {
    assert!(t_m0 > 0.0, "t_m0 must be positive");
    assert!(t_l0 > 0.0, "t_l0 must be positive");
    let len = |samples: f64| ((samples * INSTS_PER_SAMPLE).round() as u64).max(50);
    let surge = |ops: u64| {
        PhaseSpec::new("storm-surge", InstructionMix::fp_burst(), ops)
            .with_dep_mean(8.0)
            .with_misses(0.03, 0.2)
    };
    let lull = |ops: u64| {
        PhaseSpec::new("storm-lull", InstructionMix::integer_kernel(), ops)
            .with_dep_mean(4.0)
            .with_misses(0.02, 0.2)
    };
    BenchmarkSpec {
        name: "adversarial_phase_storm",
        suite: Suite::MediaBench,
        description: "FP/INT deviations straddling the relay's T_m0/T_l0 delays",
        phases: vec![
            // Sub-delay deviations: armed, then reset as noise.
            surge(len(0.8 * t_m0)),
            lull(len(0.8 * t_l0)),
            // Just-past-delay deviations: the relay fires exactly as the
            // workload reverts.
            surge(len(1.5 * t_m0)),
            lull(len(1.5 * t_l0)),
            // Asymmetric pair: confirmed lull after a filtered surge.
            surge(len(0.8 * t_m0)),
            lull(len(3.0 * t_l0)),
            // Confirmed surge after a filtered lull.
            surge(len(3.0 * t_m0)),
            lull(len(0.8 * t_l0)),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

/// A burst generator locked to a rational domain-frequency ratio: burst
/// and quiet phase lengths in the exact `num : den` proportion, so the
/// workload's duty pattern mirrors the clock-edge coincidence pattern of
/// a back-end domain running at `num/den` of the front-end frequency.
///
/// At the default 5:8 — the ratio of 625 MHz (operating point 160 on the
/// default curve) to the 1 GHz front end, the resonance PR 3 root-caused
/// — a controller that settles the INT domain near 625 MHz sees its
/// queue refill cadence beat against the synchronization window at the
/// same rational period the workload itself oscillates at.
/// `ops_per_beat` scales the whole pattern without changing the ratio.
///
/// # Panics
///
/// Panics unless `num` and `den` are coprime-free positive values with
/// `num < den`, and `ops_per_beat` is positive.
pub fn resonant_burst(num: u32, den: u32, ops_per_beat: u64) -> BenchmarkSpec {
    assert!(num > 0 && den > 0, "ratio terms must be positive");
    assert!(num < den, "ratio must be proper (num < den)");
    assert!(ops_per_beat > 0, "ops_per_beat must be positive");
    let burst = (num as u64 * ops_per_beat).max(50);
    let quiet = (den as u64 * ops_per_beat).max(50);
    BenchmarkSpec {
        name: "adversarial_resonant_burst",
        suite: Suite::MediaBench,
        description: "bursts locked to a rational domain-frequency ratio (default 5:8)",
        phases: vec![
            PhaseSpec::new("beat-burst", InstructionMix::fp_burst(), burst)
                .with_dep_mean(8.0)
                .with_misses(0.03, 0.2),
            PhaseSpec::new("beat-quiet", InstructionMix::integer_kernel(), quiet)
                .with_dep_mean(4.0)
                .with_misses(0.02, 0.2),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

/// The default resonant burst: 5:8 at 125 ops per beat unit — the
/// 625 MHz : 1 GHz ratio of the μ–f resonance, with a 1 625-instruction
/// full period.
pub fn resonant_burst_default() -> BenchmarkSpec {
    resonant_burst(5, 8, 125)
}

/// A multi-program interleaving mixer: round-robin context switching
/// over registry benchmarks at a fixed quantum, as an OS scheduler would
/// produce. Each program keeps its own position in its (cyclic) phase
/// schedule across its turns, so the interleaved stream presents every
/// controller with phase changes at *quantum* granularity whose contents
/// drift as the underlying programs advance — the aliasing case interval
/// framers are worst at.
///
/// The schedule is one full round of slices covering every program's
/// complete phase cycle at least once (capped at 240 slices), then
/// loops. Non-looping programs are cycled anyway: the mixer models
/// re-dispatch, not completion.
///
/// Returns an error for an empty program list, an unknown benchmark
/// name, or a zero quantum.
pub fn interleaved_mix(names: &[&str], quantum_ops: u64) -> Result<BenchmarkSpec, String> {
    if names.is_empty() {
        return Err("interleaved mix needs at least one program".to_string());
    }
    if quantum_ops == 0 {
        return Err("quantum must be positive".to_string());
    }
    let programs: Vec<BenchmarkSpec> = names
        .iter()
        .map(|n| registry::by_name(n).ok_or_else(|| format!("unknown benchmark {n}")))
        .collect::<Result<_, _>>()?;

    // Slices until the slowest program has seen its whole cycle.
    let max_cycle = programs
        .iter()
        .map(BenchmarkSpec::cycle_length)
        .max()
        .expect("at least one program");
    let rounds = max_cycle.div_ceil(quantum_ops);
    let slices = (rounds * programs.len() as u64).clamp(programs.len() as u64, 240) as usize;

    // Per-program cursor into its cyclic phase schedule, advanced one
    // quantum per turn; each slice reuses the template of the phase the
    // cursor currently sits in, truncated to the quantum.
    let mut offsets = vec![0u64; programs.len()];
    let phase_at = |prog: &BenchmarkSpec, offset: u64| -> PhaseSpec {
        let pos = offset % prog.cycle_length();
        let mut acc = 0u64;
        for p in &prog.phases {
            acc += p.len_ops;
            if pos < acc {
                return p.clone();
            }
        }
        unreachable!("pos is reduced modulo the cycle length");
    };
    let mut phases = Vec::with_capacity(slices);
    for s in 0..slices {
        let i = s % programs.len();
        let mut p = phase_at(&programs[i], offsets[i]);
        p.len_ops = quantum_ops;
        phases.push(p);
        offsets[i] += quantum_ops;
    }
    Ok(BenchmarkSpec {
        name: "adversarial_interleave",
        suite: Suite::MediaBench,
        description: "round-robin multi-program interleaving at quantum granularity",
        phases,
        loops: true,
        expected_variability: VariabilityClass::Fast,
    })
}

/// The default interleaving: gzip (integer, bursty), swim (FP, steady)
/// and mcf (memory-bound) at a 2 000-instruction quantum.
///
/// # Panics
///
/// Panics if the default programs are missing from the registry (a
/// programming error, pinned by tests).
pub fn interleaved_mix_default() -> BenchmarkSpec {
    interleaved_mix(&["gzip", "swim", "mcf"], 2_000).expect("default programs are registered")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::stats::TraceStats;

    #[test]
    fn phase_storm_straddles_the_delays() {
        let b = phase_storm(50.0, 8.0);
        assert!(b.loops);
        assert_eq!(b.phases.len(), 8);
        // 0.8 × 50 samples × 4 insts/sample = 160; 1.5 × 50 × 4 = 300.
        assert_eq!(b.phases[0].len_ops, 160);
        assert_eq!(b.phases[2].len_ops, 300);
        // Lull lengths floor at 50 ops (0.8 × 8 × 4 ≈ 26 → 50).
        assert_eq!(b.phases[1].len_ops, 50);
        // Surges are FP, lulls are not.
        assert!(b.phases[0].mix.fp_fraction() > 0.3);
        assert!(b.phases[1].mix.fp_fraction() < 0.05);
    }

    #[test]
    fn phase_storm_scales_with_the_delays() {
        let short = phase_storm(10.0, 4.0);
        let long = phase_storm(100.0, 40.0);
        assert!(long.cycle_length() > short.cycle_length());
    }

    #[test]
    #[should_panic(expected = "t_m0 must be positive")]
    fn phase_storm_rejects_zero_delay() {
        let _ = phase_storm(0.0, 8.0);
    }

    #[test]
    fn resonant_burst_keeps_the_exact_ratio() {
        let b = resonant_burst(5, 8, 125);
        assert_eq!(b.phases[0].len_ops, 625);
        assert_eq!(b.phases[1].len_ops, 1_000);
        assert_eq!(b.cycle_length(), 1_625);
        assert!(b.loops);
        let d = resonant_burst_default();
        assert_eq!(d.cycle_length(), b.cycle_length());
    }

    #[test]
    #[should_panic(expected = "ratio must be proper")]
    fn resonant_burst_rejects_improper_ratio() {
        let _ = resonant_burst(8, 5, 100);
    }

    #[test]
    fn resonant_burst_alternates_fp() {
        let b = resonant_burst_default();
        let ops: Vec<_> = TraceGenerator::new(&b, 1_625, 1).collect();
        let burst = TraceStats::from_trace(&ops[..625]);
        let quiet = TraceStats::from_trace(&ops[625..]);
        assert!(burst.fp_fraction() > 0.3);
        assert!(quiet.fp_fraction() < 0.05);
    }

    #[test]
    fn interleave_round_robins_the_programs() {
        let b = interleaved_mix(&["gzip", "swim"], 1_000).expect("valid");
        assert!(b.loops);
        assert!(b.phases.len() >= 2);
        for p in &b.phases {
            assert_eq!(p.len_ops, 1_000);
        }
        // Swim turns are FP-heavy, gzip turns are not: the slices keep
        // their source program's character.
        let gzip_slice = &b.phases[0];
        let swim_slice = &b.phases[1];
        assert!(gzip_slice.mix.fp_fraction() < swim_slice.mix.fp_fraction());
    }

    #[test]
    fn interleave_advances_each_program_cursor() {
        // With a quantum bigger than gzip's first phase, the second gzip
        // turn must come from a later phase of the program.
        let gzip = registry::by_name("gzip").expect("registered");
        let quantum = gzip.phases[0].len_ops + 1;
        let b = interleaved_mix(&["gzip"], quantum).expect("valid");
        assert_ne!(
            b.phases[0].name, b.phases[1].name,
            "cursor must have crossed into the next phase"
        );
    }

    #[test]
    fn interleave_rejects_bad_input() {
        assert!(interleaved_mix(&[], 1_000).is_err());
        assert!(interleaved_mix(&["gzip"], 0).is_err());
        assert!(interleaved_mix(&["nope"], 1_000)
            .unwrap_err()
            .contains("unknown benchmark nope"));
    }

    #[test]
    fn interleave_default_is_bounded() {
        let b = interleaved_mix_default();
        assert!(b.phases.len() <= 240);
        assert!(!b.phases.is_empty());
    }

    #[test]
    fn generators_are_reproducible() {
        for spec in [
            phase_storm(50.0, 8.0),
            resonant_burst_default(),
            interleaved_mix_default(),
        ] {
            let a: Vec<_> = TraceGenerator::new(&spec, 3_000, 11).collect();
            let b: Vec<_> = TraceGenerator::new(&spec, 3_000, 11).collect();
            assert_eq!(a, b, "{} must be seed-deterministic", spec.name);
        }
    }
}
