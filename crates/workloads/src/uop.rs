//! The micro-operation format consumed by the MCD simulator.

use std::fmt;

/// Operation class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Floating-point add/sub/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide or square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (executes on the integer core).
    Branch,
}

impl OpClass {
    /// Every op class (for exhaustive iteration in tests and stats).
    pub const ALL: [OpClass; 8] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// The back-end clock domain that executes this class.
    pub fn domain(self) -> ExecDomain {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Branch => ExecDomain::Integer,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => ExecDomain::FloatingPoint,
            OpClass::Load | OpClass::Store => ExecDomain::LoadStore,
        }
    }

    /// Whether the op reads or writes memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the op produces a register result other ops may consume.
    pub fn produces_value(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }

    /// Whether the op's result lives in the floating-point register space.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Position of this class in [`OpClass::ALL`] (the snapshot encoding).
    pub fn index(self) -> u8 {
        OpClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL") as u8
    }

    /// Inverse of [`OpClass::index`], rejecting out-of-range bytes.
    pub fn from_index(i: u8) -> Option<OpClass> {
        OpClass::ALL.get(i as usize).copied()
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// The back-end execution domain of an op (the front end touches all ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecDomain {
    /// Integer issue queue + ALUs.
    Integer,
    /// Floating-point issue queue + ALUs.
    FloatingPoint,
    /// Load/store queue + memory hierarchy.
    LoadStore,
}

impl ExecDomain {
    /// All back-end domains.
    pub const ALL: [ExecDomain; 3] = [
        ExecDomain::Integer,
        ExecDomain::FloatingPoint,
        ExecDomain::LoadStore,
    ];
}

impl fmt::Display for ExecDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecDomain::Integer => "INT",
            ExecDomain::FloatingPoint => "FP",
            ExecDomain::LoadStore => "LS",
        };
        f.write_str(s)
    }
}

/// One micro-operation in program (fetch) order.
///
/// Data dependences are expressed as the sequence numbers of producer ops;
/// the simulator resolves them against its in-flight window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Position in the dynamic instruction stream (0-based, dense).
    pub seq: u64,
    /// Operation class.
    pub class: OpClass,
    /// Sequence number of the first source operand's producer, if any.
    pub src1: Option<u64>,
    /// Sequence number of the second source operand's producer, if any.
    pub src2: Option<u64>,
    /// Effective byte address for loads/stores.
    pub addr: Option<u64>,
    /// Static program counter (used by the branch predictor and I-cache).
    pub pc: u64,
    /// Actual branch outcome (meaningful for `OpClass::Branch` only).
    pub taken: bool,
}

impl MicroOp {
    /// Creates a non-memory, non-branch op with the given producers.
    pub fn compute(
        seq: u64,
        class: OpClass,
        pc: u64,
        src1: Option<u64>,
        src2: Option<u64>,
    ) -> Self {
        debug_assert!(!class.is_mem() && class != OpClass::Branch);
        MicroOp {
            seq,
            class,
            src1,
            src2,
            addr: None,
            pc,
            taken: false,
        }
    }

    /// Creates a load or store at `addr`.
    pub fn mem(seq: u64, class: OpClass, pc: u64, addr: u64, src1: Option<u64>) -> Self {
        debug_assert!(class.is_mem());
        MicroOp {
            seq,
            class,
            src1,
            src2: None,
            addr: Some(addr),
            pc,
            taken: false,
        }
    }

    /// Creates a conditional branch with the given actual outcome.
    pub fn branch(seq: u64, pc: u64, taken: bool, src1: Option<u64>) -> Self {
        MicroOp {
            seq,
            class: OpClass::Branch,
            src1,
            src2: None,
            addr: None,
            pc,
            taken,
        }
    }

    /// Iterator over this op's producer sequence numbers.
    pub fn sources(&self) -> impl Iterator<Item = u64> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// Serializes the op for a state snapshot.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.seq);
        w.put_u8(self.class.index());
        w.put_opt_u64(self.src1);
        w.put_opt_u64(self.src2);
        w.put_opt_u64(self.addr);
        w.put_u64(self.pc);
        w.put_bool(self.taken);
    }

    /// Decodes an op written by [`MicroOp::save_state`].
    pub fn load_state(r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<MicroOp> {
        let seq = r.take_u64()?;
        let class_idx = r.take_u8()?;
        let class = OpClass::from_index(class_idx).ok_or_else(|| {
            mcd_snap::SnapError::Mismatch(format!("op class index {class_idx} out of range"))
        })?;
        Ok(MicroOp {
            seq,
            class,
            src1: r.take_opt_u64()?,
            src2: r.take_opt_u64()?,
            addr: r.take_opt_u64()?,
            pc: r.take_u64()?,
            taken: r.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_domains() {
        assert_eq!(OpClass::IntAlu.domain(), ExecDomain::Integer);
        assert_eq!(OpClass::Branch.domain(), ExecDomain::Integer);
        assert_eq!(OpClass::FpDiv.domain(), ExecDomain::FloatingPoint);
        assert_eq!(OpClass::Load.domain(), ExecDomain::LoadStore);
        assert_eq!(OpClass::Store.domain(), ExecDomain::LoadStore);
    }

    #[test]
    fn memory_and_value_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Load.produces_value());
        assert!(!OpClass::Store.produces_value());
        assert!(!OpClass::Branch.produces_value());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::Load.is_fp());
    }

    #[test]
    fn sources_iterates_present_operands() {
        let op = MicroOp::compute(10, OpClass::IntAlu, 0x400, Some(7), Some(9));
        assert_eq!(op.sources().collect::<Vec<_>>(), vec![7, 9]);
        let op = MicroOp::branch(11, 0x404, true, None);
        assert_eq!(op.sources().count(), 0);
    }

    #[test]
    fn constructors_set_fields() {
        let m = MicroOp::mem(3, OpClass::Store, 0x100, 0xdead, Some(1));
        assert_eq!(m.addr, Some(0xdead));
        assert_eq!(m.class, OpClass::Store);
        let b = MicroOp::branch(4, 0x104, true, None);
        assert!(b.taken);
        assert_eq!(b.class, OpClass::Branch);
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for &c in &OpClass::ALL {
            assert!(!format!("{c}").is_empty());
        }
        for &d in &ExecDomain::ALL {
            assert!(!format!("{d}").is_empty());
        }
    }
}
