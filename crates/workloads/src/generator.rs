//! The seeded micro-op trace generator.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::benchmarks::BenchmarkSpec;
use crate::phase::PhaseSpec;
use crate::uop::{MicroOp, OpClass};

/// Cache-line size assumed by the address-stream generator.
const LINE: u64 = 64;
/// Hot data region: 32 KiB (fits the 64 KiB L1 D-cache).
const HOT_LINES: u64 = 512;
/// Warm data region: 128 KiB of lines touched round-robin. The cyclic
/// order defeats the 2-way L1 (4 lines per set, so every touch misses) but
/// the footprint fits the 1 MiB direct-mapped L2, so warm traffic hits L2
/// after its first pass — matching the "miss L1, hit L2" role.
const WARM_LINES: u64 = 2_048;

/// Base addresses of the three locality regions (disjoint).
const HOT_BASE: u64 = 0x1000_0000;
const WARM_BASE: u64 = 0x2000_0000;
const COLD_BASE: u64 = 0x4000_0000;

/// How many recent producers of each value space to remember for
/// dependency generation.
const PRODUCER_WINDOW: usize = 64;

/// An infinite-capable iterator of [`MicroOp`]s for one benchmark.
///
/// The generator walks the benchmark's phase list (looping if the spec says
/// so), draws op classes from the phase mix, wires register dependences
/// through per-space producer windows at the phase's mean distance, and
/// emits addresses from hot/warm/cold regions so the *real* caches in the
/// simulator experience approximately the phase's target miss rates.
///
/// Everything is derived from a single `u64` seed: two generators with the
/// same `(spec, total_ops, seed)` yield identical traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    rng: StdRng,
    phases: Vec<PhaseSpec>,
    loops: bool,
    phase_idx: usize,
    ops_left_in_phase: u64,
    total_left: u64,
    seq: u64,
    /// Recent producer seqs by value space.
    recent_int: Vec<u64>,
    recent_fp: Vec<u64>,
    recent_load: Vec<u64>,
    /// Per-phase instruction pointer within the phase's code footprint.
    code_pos: u64,
    /// Round-robin cursors for the warm and cold regions.
    warm_pos: u64,
    cold_pos: u64,
    /// Branch-site pattern state: pc -> iterations since last not-taken.
    loop_counters: HashMap<u64, u32>,
    /// Per-phase static instruction layout: the op class at each code
    /// position. Built lazily so every static site has a stable class —
    /// branch sites stay branch sites, which is what lets the simulator's
    /// branch predictor and I-cache behave as they would on real code.
    class_maps: Vec<Option<Vec<OpClass>>>,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator that will emit exactly `total_ops` micro-ops for
    /// `spec`, deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases or `total_ops` is zero; use
    /// [`TraceGenerator::try_new`] to handle that as an error.
    pub fn new(spec: &BenchmarkSpec, total_ops: u64, seed: u64) -> Self {
        Self::try_new(spec, total_ops, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible sibling of [`TraceGenerator::new`]: returns a description
    /// of what makes the workload unusable instead of panicking.
    pub fn try_new(spec: &BenchmarkSpec, total_ops: u64, seed: u64) -> Result<Self, String> {
        if spec.phases.is_empty() {
            return Err(format!("benchmark {} has no phases", spec.name));
        }
        if total_ops == 0 {
            return Err("trace must contain at least one op".to_string());
        }
        if let Some(p) = spec.phases.iter().find(|p| p.len_ops == 0) {
            return Err(format!(
                "benchmark {} has a zero-length phase ({})",
                spec.name, p.name
            ));
        }
        // Mix the benchmark name into the seed so different benchmarks
        // with the same user seed do not share random streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in spec.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let first_len = spec.phases[0].len_ops;
        let n_phases = spec.phases.len();
        Ok(TraceGenerator {
            rng: StdRng::seed_from_u64(seed ^ h),
            phases: spec.phases.clone(),
            class_maps: vec![None; n_phases],
            seed: seed ^ h,
            loops: spec.loops,
            phase_idx: 0,
            ops_left_in_phase: first_len,
            total_left: total_ops,
            seq: 0,
            recent_int: Vec::with_capacity(PRODUCER_WINDOW),
            recent_fp: Vec::with_capacity(PRODUCER_WINDOW),
            recent_load: Vec::with_capacity(PRODUCER_WINDOW),
            code_pos: 0,
            warm_pos: 0,
            cold_pos: 0,
            loop_counters: HashMap::new(),
        })
    }

    /// The phase currently being generated.
    pub fn current_phase(&self) -> &PhaseSpec {
        &self.phases[self.phase_idx]
    }

    /// Micro-ops still to be emitted.
    pub fn remaining(&self) -> u64 {
        self.total_left
    }

    /// Serializes the generator's evolving state: RNG position, phase
    /// cursor, producer windows, address cursors, and branch-site pattern
    /// counters. The phase specs, loop flag, and derived seed come from
    /// construction and are not written; `class_maps` are omitted because
    /// each is a pure function of the seed and phase index and rebuilds
    /// identically on demand.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.phase_idx);
        w.put_u64(self.ops_left_in_phase);
        w.put_u64(self.total_left);
        w.put_u64(self.seq);
        for window in [&self.recent_int, &self.recent_fp, &self.recent_load] {
            w.put_seq(window, |w, &s| w.put_u64(s));
        }
        w.put_u64(self.code_pos);
        w.put_u64(self.warm_pos);
        w.put_u64(self.cold_pos);
        // HashMap iteration order is nondeterministic: serialize the
        // branch-site counters sorted by pc so identical states produce
        // identical bytes.
        let mut counters: Vec<(u64, u32)> =
            self.loop_counters.iter().map(|(&k, &v)| (k, v)).collect();
        counters.sort_unstable_by_key(|&(pc, _)| pc);
        w.put_seq(&counters, |w, &(pc, n)| {
            w.put_u64(pc);
            w.put_u32(n);
        });
    }

    /// Restores state captured by [`TraceGenerator::save_state`] into a
    /// generator built from the same spec, total ops, and seed. The
    /// restored generator continues the exact op stream of the saved one.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let mut words = [0u64; 4];
        for word in &mut words {
            *word = r.take_u64()?;
        }
        self.rng = StdRng::from_state(words);
        let phase_idx = r.take_usize()?;
        if phase_idx >= self.phases.len() {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "phase index {phase_idx} out of range ({} phases)",
                self.phases.len()
            )));
        }
        self.phase_idx = phase_idx;
        self.ops_left_in_phase = r.take_u64()?;
        self.total_left = r.take_u64()?;
        self.seq = r.take_u64()?;
        self.recent_int = r.take_seq(|r| r.take_u64())?;
        self.recent_fp = r.take_seq(|r| r.take_u64())?;
        self.recent_load = r.take_seq(|r| r.take_u64())?;
        self.code_pos = r.take_u64()?;
        self.warm_pos = r.take_u64()?;
        self.cold_pos = r.take_u64()?;
        let counters = r.take_seq(|r| Ok((r.take_u64()?, r.take_u32()?)))?;
        self.loop_counters = counters.into_iter().collect();
        Ok(())
    }

    fn advance_phase(&mut self) {
        if self.phase_idx + 1 < self.phases.len() {
            self.phase_idx += 1;
        } else if self.loops {
            self.phase_idx = 0;
        } else {
            // Non-looping benchmarks stay in their final phase forever.
        }
        self.ops_left_in_phase = self.phases[self.phase_idx].len_ops;
        self.code_pos = 0;
    }

    /// Picks a producer from `window`, geometrically biased toward recent
    /// entries with the given mean lookback.
    fn pick_producer(rng: &mut StdRng, window: &[u64], dep_mean: f64) -> Option<u64> {
        if window.is_empty() {
            return None;
        }
        // Geometric lookback: P(k) ∝ (1-p)^k with mean (1-p)/p = dep_mean-1.
        let p = 1.0 / dep_mean.max(1.0);
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let k = (u.ln() / (1.0 - p).max(1e-9).ln()).floor() as usize;
        let k = k.min(window.len() - 1);
        Some(window[window.len() - 1 - k])
    }

    fn push_producer(window: &mut Vec<u64>, seq: u64) {
        if window.len() == PRODUCER_WINDOW {
            window.remove(0);
        }
        window.push(seq);
    }

    /// The stable op class of static code position `pos` in phase
    /// `phase_idx`. The per-phase layout assigns classes by exact quota
    /// (largest-remainder) and a seeded shuffle, so dynamic mixes match the
    /// phase spec while every static site keeps one class for the whole run.
    fn class_at(&mut self, phase_idx: usize, pos: u64) -> OpClass {
        if self.class_maps[phase_idx].is_none() {
            let phase = &self.phases[phase_idx];
            let n = phase.code_footprint as usize;
            let mut map: Vec<OpClass> = Vec::with_capacity(n);
            let mut quotas: Vec<(OpClass, usize, f64)> = OpClass::ALL
                .iter()
                .map(|&c| {
                    let exact = phase.mix.fraction(c) * n as f64;
                    (c, exact.floor() as usize, exact - exact.floor())
                })
                .collect();
            for &(c, q, _) in &quotas {
                map.extend(std::iter::repeat_n(c, q));
            }
            quotas.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("fractions are finite"));
            let mut i = 0;
            while map.len() < n {
                map.push(quotas[i % quotas.len()].0);
                i += 1;
            }
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (phase_idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            for j in (1..map.len()).rev() {
                let k = rng.gen_range(0..=j);
                map.swap(j, k);
            }
            self.class_maps[phase_idx] = Some(map);
        }
        let map = self.class_maps[phase_idx].as_ref().expect("just built");
        map[pos as usize % map.len()]
    }

    fn gen_addr(&mut self, phase: &PhaseSpec) -> u64 {
        let u: f64 = self.rng.gen();
        let p_cold = phase.l1d_miss * phase.l2_miss;
        let p_warm = phase.l1d_miss * (1.0 - phase.l2_miss);
        if u < p_cold {
            // Cold: strictly increasing line addresses — misses everywhere.
            self.cold_pos += 1;
            COLD_BASE + self.cold_pos * LINE
        } else if u < p_cold + p_warm {
            // Warm: round-robin over a region bigger than L1, smaller in
            // reuse distance than L2.
            self.warm_pos = (self.warm_pos + 1) % WARM_LINES;
            WARM_BASE + self.warm_pos * LINE
        } else {
            // Hot: random line inside an L1-resident set.
            let line = self.rng.gen_range(0..HOT_LINES);
            HOT_BASE + line * LINE
        }
    }

    fn gen_branch_outcome(&mut self, phase: &PhaseSpec, pc: u64) -> bool {
        // A fixed per-site hash decides whether this branch site is
        // "random" (data-dependent) or patterned (loop-like: taken except
        // every Nth execution) — patterned sites are what the predictor
        // learns.
        let site_hash = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        let random_site = (site_hash % 1000) as f64 / 1000.0 < phase.branch_random;
        if random_site {
            self.rng.gen::<f64>() < phase.branch_taken
        } else {
            let period = 8 + (site_hash % 25) as u32; // loop trip counts 8..32
            let c = self.loop_counters.entry(pc).or_insert(0);
            *c += 1;
            if *c >= period {
                *c = 0;
                false // loop exit
            } else {
                true
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.total_left == 0 {
            return None;
        }
        if self.ops_left_in_phase == 0 {
            self.advance_phase();
        }
        self.total_left -= 1;
        self.ops_left_in_phase = self.ops_left_in_phase.saturating_sub(1);

        let phase = self.phases[self.phase_idx].clone();
        let seq = self.seq;
        self.seq += 1;

        // Program counter walks the phase's code footprint cyclically, with
        // a distinct base per phase so footprints do not alias.
        let pos = self.code_pos % phase.code_footprint;
        let pc = 0x40_0000 + (self.phase_idx as u64) * 0x10_0000 + pos * 4;
        self.code_pos += 1;

        let class = self.class_at(self.phase_idx, pos);
        let dep = phase.dep_mean;

        let op = match class {
            OpClass::IntAlu | OpClass::IntMul => {
                let s1 = Self::pick_producer(&mut self.rng, &self.recent_int, dep);
                let s2 = if self.rng.gen::<f64>() < 0.4 {
                    Self::pick_producer(&mut self.rng, &self.recent_load, dep)
                } else {
                    None
                };
                let op = MicroOp::compute(seq, class, pc, s1, s2);
                Self::push_producer(&mut self.recent_int, seq);
                op
            }
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => {
                let s1 = Self::pick_producer(&mut self.rng, &self.recent_fp, dep);
                let s2 = if self.rng.gen::<f64>() < 0.5 {
                    Self::pick_producer(&mut self.rng, &self.recent_load, dep)
                } else {
                    Self::pick_producer(&mut self.rng, &self.recent_fp, dep)
                };
                let op = MicroOp::compute(seq, class, pc, s1, s2);
                Self::push_producer(&mut self.recent_fp, seq);
                op
            }
            OpClass::Load => {
                let addr = self.gen_addr(&phase);
                let s1 = Self::pick_producer(&mut self.rng, &self.recent_int, dep);
                let op = MicroOp::mem(seq, OpClass::Load, pc, addr, s1);
                Self::push_producer(&mut self.recent_load, seq);
                op
            }
            OpClass::Store => {
                let addr = self.gen_addr(&phase);
                // Stores consume a value from whichever space is active.
                let s1 = if phase.mix.fp_fraction() > 0.05 && self.rng.gen::<f64>() < 0.5 {
                    Self::pick_producer(&mut self.rng, &self.recent_fp, dep)
                } else {
                    Self::pick_producer(&mut self.rng, &self.recent_int, dep)
                };
                MicroOp::mem(seq, OpClass::Store, pc, addr, s1)
            }
            OpClass::Branch => {
                let taken = self.gen_branch_outcome(&phase, pc);
                let s1 = Self::pick_producer(&mut self.rng, &self.recent_int, dep);
                MicroOp::branch(seq, pc, taken, s1)
            }
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.total_left).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use std::collections::HashMap;

    fn spec(name: &str) -> BenchmarkSpec {
        registry::by_name(name).expect("benchmark exists")
    }

    #[test]
    fn generates_exactly_total_ops_with_dense_seqs() {
        let g = TraceGenerator::new(&spec("gzip"), 5_000, 1);
        let ops: Vec<_> = g.collect();
        assert_eq!(ops.len(), 5_000);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.seq, i as u64);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = TraceGenerator::new(&spec("swim"), 2_000, 7).collect();
        let b: Vec<_> = TraceGenerator::new(&spec("swim"), 2_000, 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = TraceGenerator::new(&spec("swim"), 2_000, 7).collect();
        let b: Vec<_> = TraceGenerator::new(&spec("swim"), 2_000, 8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_benchmarks_differ_with_same_seed() {
        let a: Vec<_> = TraceGenerator::new(&spec("gzip"), 2_000, 7).collect();
        let b: Vec<_> = TraceGenerator::new(&spec("mcf"), 2_000, 7).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn dependencies_point_backwards() {
        let ops: Vec<_> = TraceGenerator::new(&spec("applu"), 20_000, 3).collect();
        for op in &ops {
            for s in op.sources() {
                assert!(s < op.seq, "op {} depends on future op {}", op.seq, s);
            }
        }
    }

    #[test]
    fn mix_roughly_matches_phase_spec() {
        let s = spec("wupwise"); // single long fp phase
        let want = s.phases[0].mix;
        let ops: Vec<_> = TraceGenerator::new(&s, 100_000, 5).collect();
        let mut counts: HashMap<OpClass, u64> = HashMap::new();
        for op in &ops {
            *counts.entry(op.class).or_insert(0) += 1;
        }
        for &c in &OpClass::ALL {
            let got = *counts.get(&c).unwrap_or(&0) as f64 / ops.len() as f64;
            assert!(
                (got - want.fraction(c)).abs() < 0.01,
                "{c}: got {got:.4}, want {:.4}",
                want.fraction(c)
            );
        }
    }

    #[test]
    fn memory_ops_have_addresses_others_do_not() {
        let ops: Vec<_> = TraceGenerator::new(&spec("mcf"), 10_000, 2).collect();
        for op in &ops {
            assert_eq!(op.addr.is_some(), op.class.is_mem());
        }
    }

    #[test]
    fn branch_outcomes_mix_taken_and_not_taken() {
        let ops: Vec<_> = TraceGenerator::new(&spec("gcc"), 50_000, 11).collect();
        let branches: Vec<_> = ops.iter().filter(|o| o.class == OpClass::Branch).collect();
        assert!(!branches.is_empty());
        let taken = branches.iter().filter(|b| b.taken).count();
        assert!(taken > 0 && taken < branches.len());
    }

    #[test]
    fn non_looping_benchmark_stays_in_final_phase() {
        let s = spec("epic_decode");
        assert!(!s.loops);
        let total: u64 = s.phases.iter().map(|p| p.len_ops).sum();
        let mut g = TraceGenerator::new(&s, total + 10_000, 1);
        // Drain past the end of the phase list.
        for _ in 0..total + 5_000 {
            g.next().expect("trace long enough");
        }
        let last = s.phases.last().expect("has phases").name;
        assert_eq!(g.current_phase().name, last);
    }

    #[test]
    fn looping_benchmark_revisits_first_phase() {
        let s = spec("mpeg2_decode");
        assert!(s.loops);
        let cycle: u64 = s.phases.iter().map(|p| p.len_ops).sum();
        let mut g = TraceGenerator::new(&s, cycle * 2, 1);
        let first = g.current_phase().name;
        for _ in 0..cycle + 1 {
            g.next().expect("trace long enough");
        }
        assert_eq!(g.current_phase().name, first);
    }

    #[test]
    fn size_hint_tracks_remaining() {
        let mut g = TraceGenerator::new(&spec("gzip"), 100, 1);
        assert_eq!(g.size_hint(), (100, Some(100)));
        g.next();
        assert_eq!(g.len(), 99);
    }
}
