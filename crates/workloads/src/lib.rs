//! Synthetic workload generation for MCD DVFS studies.
//!
//! The HPCA 2005 paper drives its simulator with MediaBench and SPEC2000
//! binaries. Running those binaries requires an Alpha-ISA functional
//! simulator and the original input sets — neither of which is available
//! here — so this crate substitutes **seeded synthetic micro-op trace
//! generators**, one per named benchmark, whose *phase structure*
//! (instruction mix, dependency distances, memory locality, branch
//! behaviour, burst cadence) is designed to reproduce each benchmark's
//! published queue-occupancy character. The DVFS controllers under study
//! observe nothing but per-domain queue occupancies, so preserving the
//! occupancy dynamics preserves the experiment (see DESIGN.md, S3).
//!
//! # Example
//!
//! ```
//! use mcd_workloads::{registry, TraceGenerator};
//!
//! let spec = registry::by_name("epic_decode").expect("known benchmark");
//! let trace: Vec<_> = TraceGenerator::new(&spec, 10_000, 42).collect();
//! assert_eq!(trace.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod benchmarks;
pub mod generator;
pub mod mix;
pub mod patterns;
pub mod phase;
pub mod registry;
pub mod stats;
pub mod synthetic;
pub mod trace_io;
pub mod uop;

pub use benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
pub use generator::TraceGenerator;
pub use mix::InstructionMix;
pub use patterns::VariationPattern;
pub use phase::PhaseSpec;
pub use stats::TraceStats;
pub use uop::{ExecDomain, MicroOp, OpClass};
