//! Summary statistics over generated traces.
//!
//! Used by tests (generator validation) and by the Table 2 report to
//! describe each benchmark's dynamic character.

use std::collections::HashMap;

use crate::uop::{MicroOp, OpClass};

/// Aggregate statistics of a micro-op trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total micro-ops observed.
    pub total: u64,
    /// Per-class dynamic counts.
    pub class_counts: HashMap<OpClass, u64>,
    /// Mean distance (in ops) from each op to its farthest producer.
    pub mean_dep_distance: f64,
    /// Fraction of branches that were taken.
    pub taken_rate: f64,
    /// Distinct static PCs observed.
    pub static_pcs: usize,
}

impl TraceStats {
    /// Computes statistics over `ops`.
    pub fn from_trace<'a, I: IntoIterator<Item = &'a MicroOp>>(ops: I) -> TraceStats {
        let mut total = 0u64;
        let mut class_counts: HashMap<OpClass, u64> = HashMap::new();
        let mut dep_sum = 0u64;
        let mut dep_n = 0u64;
        let mut branches = 0u64;
        let mut taken = 0u64;
        let mut pcs = std::collections::HashSet::new();
        for op in ops {
            total += 1;
            *class_counts.entry(op.class).or_insert(0) += 1;
            if let Some(min_src) = op.sources().min() {
                dep_sum += op.seq - min_src;
                dep_n += 1;
            }
            if op.class == OpClass::Branch {
                branches += 1;
                if op.taken {
                    taken += 1;
                }
            }
            pcs.insert(op.pc);
        }
        TraceStats {
            total,
            class_counts,
            mean_dep_distance: if dep_n == 0 {
                0.0
            } else {
                dep_sum as f64 / dep_n as f64
            },
            taken_rate: if branches == 0 {
                0.0
            } else {
                taken as f64 / branches as f64
            },
            static_pcs: pcs.len(),
        }
    }

    /// Dynamic fraction of `class`.
    pub fn fraction(&self, class: OpClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.class_counts.get(&class).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Dynamic fraction of floating-point ops.
    pub fn fp_fraction(&self) -> f64 {
        self.fraction(OpClass::FpAlu)
            + self.fraction(OpClass::FpMul)
            + self.fraction(OpClass::FpDiv)
    }

    /// Dynamic fraction of memory ops.
    pub fn mem_fraction(&self) -> f64 {
        self.fraction(OpClass::Load) + self.fraction(OpClass::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::registry;

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::from_trace(std::iter::empty());
        assert_eq!(s.total, 0);
        assert_eq!(s.fraction(OpClass::Load), 0.0);
        assert_eq!(s.mean_dep_distance, 0.0);
        assert_eq!(s.taken_rate, 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let spec = registry::by_name("vpr").expect("exists");
        let ops: Vec<_> = TraceGenerator::new(&spec, 20_000, 9).collect();
        let s = TraceStats::from_trace(&ops);
        let sum: f64 = OpClass::ALL.iter().map(|&c| s.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(s.total, 20_000);
    }

    #[test]
    fn dep_distance_reflects_phase_spec_ordering() {
        let serial = registry::by_name("adpcm_decode").expect("exists"); // dep_mean 3.0
        let parallel = registry::by_name("wupwise").expect("exists"); // dep_mean 8.0
        let so: Vec<_> = TraceGenerator::new(&serial, 30_000, 1).collect();
        let po: Vec<_> = TraceGenerator::new(&parallel, 30_000, 1).collect();
        let ss = TraceStats::from_trace(&so);
        let ps = TraceStats::from_trace(&po);
        assert!(
            ss.mean_dep_distance < ps.mean_dep_distance,
            "serial {} !< parallel {}",
            ss.mean_dep_distance,
            ps.mean_dep_distance
        );
    }

    #[test]
    fn static_footprint_is_bounded_by_phase_spec() {
        let spec = registry::by_name("adpcm_encode").expect("exists"); // footprint 256
        let ops: Vec<_> = TraceGenerator::new(&spec, 10_000, 1).collect();
        let s = TraceStats::from_trace(&ops);
        assert!(s.static_pcs <= 256);
        assert!(s.static_pcs > 64, "footprint suspiciously small");
    }
}
