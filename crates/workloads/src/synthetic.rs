//! Precisely-shaped synthetic workloads for controlled experiments.
//!
//! The named benchmarks model real programs; the constructors here build
//! workloads with *exact* variation wavelengths, which is what the
//! wavelength-sweep experiments need (how does each DVFS scheme's benefit
//! change as workload variation gets faster?).

use crate::benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
use crate::mix::InstructionMix;
use crate::phase::PhaseSpec;

/// A square-wave workload: FP-burst phases alternating with integer
/// phases, with a full period of `period_ops` dynamic instructions and
/// the given duty cycle (fraction of the period spent in the FP burst).
///
/// # Panics
///
/// Panics unless `period_ops >= 200` and `duty` is in `(0, 1)`.
pub fn square_wave(period_ops: u64, duty: f64) -> BenchmarkSpec {
    assert!(period_ops >= 200, "period too short to form two phases");
    assert!(duty > 0.0 && duty < 1.0, "duty must be inside (0, 1)");
    let hi = ((period_ops as f64 * duty).round() as u64).max(100);
    let lo = (period_ops - hi).max(100);
    BenchmarkSpec {
        name: "synthetic_square",
        suite: Suite::MediaBench,
        description: "square-wave FP/integer alternation with exact wavelength",
        phases: vec![
            PhaseSpec::new("burst", InstructionMix::fp_burst(), hi)
                .with_dep_mean(8.0)
                .with_misses(0.03, 0.2),
            PhaseSpec::new("quiet", InstructionMix::integer_kernel(), lo)
                .with_dep_mean(4.0)
                .with_misses(0.02, 0.2),
        ],
        loops: true,
        expected_variability: if period_ops <= 120_000 {
            VariabilityClass::Fast
        } else {
            VariabilityClass::Slow
        },
    }
}

/// A single-step workload: integer code that switches to FP-heavy code
/// once, `at_ops` instructions in (for step-response experiments on the
/// real simulator).
///
/// # Panics
///
/// Panics if `at_ops` is zero.
pub fn step_workload(at_ops: u64) -> BenchmarkSpec {
    assert!(at_ops > 0, "step instant must be positive");
    BenchmarkSpec {
        name: "synthetic_step",
        suite: Suite::MediaBench,
        description: "one integer-to-FP workload step",
        phases: vec![
            PhaseSpec::new("before", InstructionMix::integer_kernel(), at_ops).with_dep_mean(4.0),
            PhaseSpec::new("after", InstructionMix::fp_burst(), at_ops)
                .with_dep_mean(8.0)
                .with_misses(0.03, 0.2),
        ],
        loops: false,
        expected_variability: VariabilityClass::Slow,
    }
}

/// The μ–f resonance probe: one steady integer-bound phase with a fixed
/// dependency structure, used to measure throughput against pinned
/// operating points (the `repro resonance` experiment).
///
/// A *flat* workload is the point: with no phase variation, any
/// throughput structure observed while sweeping the pinned back-end
/// frequency comes from the synchronization interface itself — the
/// clock-edge coincidence patterns at rational frequency ratios (5:8 at
/// 625 MHz on the default curve) that the PR 3 investigation root-caused
/// and the default ±10 ps clock jitter normally breaks up.
pub fn resonance_probe() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "synthetic_resonance",
        suite: Suite::MediaBench,
        description: "steady integer phase for rational-ratio resonance sweeps",
        phases: vec![
            PhaseSpec::new("steady", InstructionMix::integer_typical(), 10_000)
                .with_dep_mean(4.0)
                .with_misses(0.01, 0.2),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::stats::TraceStats;

    #[test]
    fn square_wave_period_is_exact() {
        let b = square_wave(20_000, 0.4);
        assert_eq!(b.cycle_length(), 20_000);
        assert_eq!(b.phases[0].len_ops, 8_000);
        assert_eq!(b.phases[1].len_ops, 12_000);
        assert!(b.loops);
    }

    #[test]
    fn square_wave_alternates_fp() {
        let b = square_wave(10_000, 0.5);
        let ops: Vec<_> = TraceGenerator::new(&b, 10_000, 1).collect();
        let first_half = TraceStats::from_trace(&ops[..5_000]);
        let second_half = TraceStats::from_trace(&ops[5_000..]);
        assert!(first_half.fp_fraction() > 0.3);
        assert!(second_half.fp_fraction() < 0.05);
    }

    #[test]
    fn short_periods_are_designed_fast() {
        assert_eq!(
            square_wave(20_000, 0.5).expected_variability,
            VariabilityClass::Fast
        );
        assert_eq!(
            square_wave(400_000, 0.5).expected_variability,
            VariabilityClass::Slow
        );
    }

    #[test]
    fn step_workload_switches_once() {
        let b = step_workload(5_000);
        assert!(!b.loops);
        let ops: Vec<_> = TraceGenerator::new(&b, 15_000, 1).collect();
        let before = TraceStats::from_trace(&ops[..5_000]);
        let after = TraceStats::from_trace(&ops[10_000..]);
        assert!(before.fp_fraction() < 0.05);
        assert!(after.fp_fraction() > 0.3, "final phase extends forever");
    }

    #[test]
    #[should_panic(expected = "duty must be inside")]
    fn bad_duty_panics() {
        let _ = square_wave(10_000, 1.0);
    }

    #[test]
    fn resonance_probe_is_flat() {
        let b = resonance_probe();
        assert!(b.loops, "the probe must sustain any measurement length");
        assert_eq!(
            b.phases.len(),
            1,
            "phase variation would confound the sweep"
        );
        let ops: Vec<_> = TraceGenerator::new(&b, 20_000, 1).collect();
        let first = TraceStats::from_trace(&ops[..10_000]);
        let second = TraceStats::from_trace(&ops[10_000..]);
        assert!(first.fp_fraction() < 0.05);
        assert!((first.fp_fraction() - second.fp_fraction()).abs() < 0.02);
    }
}
