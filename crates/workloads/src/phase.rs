//! Workload phases: homogeneous stretches of dynamic instructions.
//!
//! A benchmark is a list of phases executed in order (optionally looping).
//! Phase *lengths* are in dynamic instructions, so the wavelength of
//! workload variation is explicit — which is exactly the property the
//! paper's spectral analysis (Section 5.2) classifies benchmarks by.

use crate::mix::InstructionMix;

/// A homogeneous workload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Human-readable phase name (for traces and reports).
    pub name: &'static str,
    /// Instruction-class distribution inside the phase.
    pub mix: InstructionMix,
    /// Phase length in dynamic instructions.
    pub len_ops: u64,
    /// Mean register-dependency distance (in instructions); larger means
    /// more instruction-level parallelism.
    pub dep_mean: f64,
    /// Target L1 D-cache miss ratio of memory accesses.
    pub l1d_miss: f64,
    /// Fraction of L1 misses that also miss in L2.
    pub l2_miss: f64,
    /// Fraction of branch sites with data-dependent (random) outcomes.
    pub branch_random: f64,
    /// Taken probability of random branches.
    pub branch_taken: f64,
    /// Static code footprint of the phase, in distinct instructions.
    pub code_footprint: u64,
}

impl PhaseSpec {
    /// Creates a phase with the given mix/length and typical defaults for
    /// everything else (moderate ILP, warm caches, predictable branches).
    pub fn new(name: &'static str, mix: InstructionMix, len_ops: u64) -> Self {
        assert!(len_ops > 0, "phase must contain at least one instruction");
        PhaseSpec {
            name,
            mix,
            len_ops,
            dep_mean: 6.0,
            l1d_miss: 0.03,
            l2_miss: 0.2,
            branch_random: 0.10,
            branch_taken: 0.6,
            code_footprint: 2048,
        }
    }

    /// Sets the mean dependency distance.
    pub fn with_dep_mean(mut self, dep_mean: f64) -> Self {
        assert!(dep_mean >= 1.0, "dependency distance must be >= 1");
        self.dep_mean = dep_mean;
        self
    }

    /// Sets the cache-miss targets.
    ///
    /// # Panics
    ///
    /// Panics if either ratio is outside `[0, 1]`.
    pub fn with_misses(mut self, l1d_miss: f64, l2_miss: f64) -> Self {
        assert!((0.0..=1.0).contains(&l1d_miss), "l1d_miss out of range");
        assert!((0.0..=1.0).contains(&l2_miss), "l2_miss out of range");
        self.l1d_miss = l1d_miss;
        self.l2_miss = l2_miss;
        self
    }

    /// Sets branch behaviour: the random-site fraction and taken rate.
    pub fn with_branches(mut self, random: f64, taken: f64) -> Self {
        assert!((0.0..=1.0).contains(&random), "branch_random out of range");
        assert!((0.0..=1.0).contains(&taken), "branch_taken out of range");
        self.branch_random = random;
        self.branch_taken = taken;
        self
    }

    /// Sets the static code footprint (distinct instruction addresses).
    pub fn with_code_footprint(mut self, instructions: u64) -> Self {
        assert!(instructions > 0, "code footprint must be positive");
        self.code_footprint = instructions;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = PhaseSpec::new("p", InstructionMix::integer_typical(), 1000);
        assert_eq!(p.len_ops, 1000);
        assert!(p.dep_mean >= 1.0);
        assert!(p.l1d_miss < 0.5);
        assert!(p.code_footprint > 0);
    }

    #[test]
    fn builder_methods_override() {
        let p = PhaseSpec::new("p", InstructionMix::fp_typical(), 10)
            .with_dep_mean(3.0)
            .with_misses(0.2, 0.5)
            .with_branches(0.3, 0.5)
            .with_code_footprint(128);
        assert_eq!(p.dep_mean, 3.0);
        assert_eq!(p.l1d_miss, 0.2);
        assert_eq!(p.l2_miss, 0.5);
        assert_eq!(p.branch_random, 0.3);
        assert_eq!(p.code_footprint, 128);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_length_phase_panics() {
        let _ = PhaseSpec::new("p", InstructionMix::integer_typical(), 0);
    }

    #[test]
    #[should_panic(expected = "l1d_miss out of range")]
    fn invalid_miss_rate_panics() {
        let _ = PhaseSpec::new("p", InstructionMix::integer_typical(), 1).with_misses(1.5, 0.0);
    }
}
