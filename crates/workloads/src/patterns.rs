//! Analytic workload-variation patterns.
//!
//! These patterns produce deterministic scalar series `λ(t)` used by the
//! control-model experiments (step responses, spectral-analysis fixtures)
//! and by ablation studies that need a precisely-shaped input instead of a
//! full benchmark. The paper's motivating scenario — "the workload
//! increases dramatically in the first half-interval and decreases in the
//! second half" — is [`VariationPattern::SquareWave`] with a period equal
//! to the fixed-interval length.

/// A deterministic workload-intensity pattern over continuous time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VariationPattern {
    /// Constant intensity.
    Constant {
        /// The constant level.
        level: f64,
    },
    /// Step from `before` to `after` at time `at`.
    Step {
        /// Level before the step.
        before: f64,
        /// Level after the step.
        after: f64,
        /// Step instant.
        at: f64,
    },
    /// Square wave between `low` and `high` with the given period and duty
    /// cycle (fraction of the period spent at `high`).
    SquareWave {
        /// Low level.
        low: f64,
        /// High level.
        high: f64,
        /// Wave period.
        period: f64,
        /// Fraction of each period at `high`, in `[0, 1]`.
        duty: f64,
    },
    /// Sinusoid `mean + amplitude·sin(2πt/period)`.
    Sine {
        /// Mean level.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Oscillation period.
        period: f64,
    },
    /// Linear ramp from `from` at t=0 to `to` at `duration`, then flat.
    Ramp {
        /// Initial level.
        from: f64,
        /// Final level.
        to: f64,
        /// Time to traverse the ramp.
        duration: f64,
    },
}

impl VariationPattern {
    /// The pattern's value at time `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `t` is negative.
    pub fn sample(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0, "patterns are defined for t >= 0");
        match *self {
            VariationPattern::Constant { level } => level,
            VariationPattern::Step { before, after, at } => {
                if t < at {
                    before
                } else {
                    after
                }
            }
            VariationPattern::SquareWave {
                low,
                high,
                period,
                duty,
            } => {
                let phase = (t / period).fract();
                if phase < duty {
                    high
                } else {
                    low
                }
            }
            VariationPattern::Sine {
                mean,
                amplitude,
                period,
            } => mean + amplitude * (2.0 * std::f64::consts::PI * t / period).sin(),
            VariationPattern::Ramp { from, to, duration } => {
                if t >= duration {
                    to
                } else {
                    from + (to - from) * t / duration
                }
            }
        }
    }

    /// Samples the pattern at `n` points spaced `dt` apart, starting at 0.
    pub fn series(&self, n: usize, dt: f64) -> Vec<f64> {
        (0..n).map(|i| self.sample(i as f64 * dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = VariationPattern::Constant { level: 2.5 };
        assert_eq!(p.sample(0.0), 2.5);
        assert_eq!(p.sample(1e6), 2.5);
    }

    #[test]
    fn step_switches_at_instant() {
        let p = VariationPattern::Step {
            before: 1.0,
            after: 3.0,
            at: 10.0,
        };
        assert_eq!(p.sample(9.999), 1.0);
        assert_eq!(p.sample(10.0), 3.0);
    }

    #[test]
    fn square_wave_respects_duty_cycle() {
        let p = VariationPattern::SquareWave {
            low: 0.0,
            high: 1.0,
            period: 10.0,
            duty: 0.3,
        };
        assert_eq!(p.sample(1.0), 1.0);
        assert_eq!(p.sample(2.9), 1.0);
        assert_eq!(p.sample(3.1), 0.0);
        assert_eq!(p.sample(9.9), 0.0);
        assert_eq!(p.sample(10.5), 1.0); // next period
        let s = p.series(1000, 0.01);
        let high = s.iter().filter(|&&x| x > 0.5).count();
        assert!((high as f64 / 1000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn sine_oscillates_around_mean() {
        let p = VariationPattern::Sine {
            mean: 5.0,
            amplitude: 2.0,
            period: 4.0,
        };
        assert!((p.sample(0.0) - 5.0).abs() < 1e-12);
        assert!((p.sample(1.0) - 7.0).abs() < 1e-12);
        assert!((p.sample(3.0) - 3.0).abs() < 1e-12);
        let s = p.series(4000, 0.001);
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 5.0).abs() < 0.01);
    }

    #[test]
    fn ramp_saturates_at_target() {
        let p = VariationPattern::Ramp {
            from: 0.0,
            to: 10.0,
            duration: 5.0,
        };
        assert_eq!(p.sample(0.0), 0.0);
        assert_eq!(p.sample(2.5), 5.0);
        assert_eq!(p.sample(5.0), 10.0);
        assert_eq!(p.sample(100.0), 10.0);
    }

    #[test]
    fn series_has_requested_length_and_spacing() {
        let p = VariationPattern::Ramp {
            from: 0.0,
            to: 1.0,
            duration: 1.0,
        };
        let s = p.series(11, 0.1);
        assert_eq!(s.len(), 11);
        assert!((s[5] - 0.5).abs() < 1e-12);
        assert_eq!(*s.last().expect("nonempty"), 1.0);
    }
}
