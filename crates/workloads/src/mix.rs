//! Instruction-mix distributions.

use crate::uop::OpClass;

/// Fractions of each [`OpClass`] in a workload phase.
///
/// The fractions must be non-negative and sum to 1 (within 1e-6); use
/// [`InstructionMix::new`] to validate or the presets for typical shapes.
///
/// ```
/// use mcd_workloads::InstructionMix;
/// let mix = InstructionMix::integer_typical();
/// assert!((mix.total() - 1.0).abs() < 1e-9);
/// assert_eq!(mix.fraction(mcd_workloads::OpClass::FpDiv), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    int_alu: f64,
    int_mul: f64,
    fp_alu: f64,
    fp_mul: f64,
    fp_div: f64,
    load: f64,
    store: f64,
    branch: f64,
}

impl InstructionMix {
    /// Builds a mix from per-class fractions.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any fraction is negative/non-finite or the sum
    /// deviates from 1 by more than 1e-6.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        int_alu: f64,
        int_mul: f64,
        fp_alu: f64,
        fp_mul: f64,
        fp_div: f64,
        load: f64,
        store: f64,
        branch: f64,
    ) -> Result<Self, MixError> {
        let parts = [
            int_alu, int_mul, fp_alu, fp_mul, fp_div, load, store, branch,
        ];
        if parts.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(MixError::NegativeFraction);
        }
        let total: f64 = parts.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(MixError::BadTotal(total));
        }
        Ok(InstructionMix {
            int_alu,
            int_mul,
            fp_alu,
            fp_mul,
            fp_div,
            load,
            store,
            branch,
        })
    }

    /// A typical integer-code mix (SPECint-like): no FP, ~1/4 memory.
    pub fn integer_typical() -> Self {
        InstructionMix::new(0.42, 0.02, 0.0, 0.0, 0.0, 0.22, 0.12, 0.22).expect("preset valid")
    }

    /// A typical FP-code mix (SPECfp-like): heavy FP, fewer branches.
    pub fn fp_typical() -> Self {
        InstructionMix::new(0.18, 0.01, 0.22, 0.14, 0.03, 0.24, 0.10, 0.08).expect("preset valid")
    }

    /// An FP-burst mix: the FP queue fills quickly (used inside bursty
    /// phases of media codes).
    pub fn fp_burst() -> Self {
        InstructionMix::new(0.10, 0.00, 0.32, 0.24, 0.06, 0.16, 0.06, 0.06).expect("preset valid")
    }

    /// A memory-bound mix (mcf/art-like): every third op touches memory.
    pub fn memory_bound() -> Self {
        InstructionMix::new(0.30, 0.01, 0.04, 0.02, 0.0, 0.33, 0.12, 0.18).expect("preset valid")
    }

    /// An integer mix with no FP and little memory (adpcm-like kernels).
    pub fn integer_kernel() -> Self {
        InstructionMix::new(0.55, 0.04, 0.0, 0.0, 0.0, 0.14, 0.08, 0.19).expect("preset valid")
    }

    /// The fraction assigned to `class`.
    pub fn fraction(&self, class: OpClass) -> f64 {
        match class {
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::FpAlu => self.fp_alu,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Branch => self.branch,
        }
    }

    /// Sum of all fractions (≈1 by construction).
    pub fn total(&self) -> f64 {
        OpClass::ALL.iter().map(|&c| self.fraction(c)).sum()
    }

    /// Total FP fraction (alu + mul + div).
    pub fn fp_fraction(&self) -> f64 {
        self.fp_alu + self.fp_mul + self.fp_div
    }

    /// Total memory fraction (loads + stores).
    pub fn mem_fraction(&self) -> f64 {
        self.load + self.store
    }

    /// Picks the class at cumulative position `u ∈ [0, 1)` — the inverse-CDF
    /// sampler used by the trace generator.
    pub fn sample(&self, u: f64) -> OpClass {
        debug_assert!((0.0..=1.0).contains(&u));
        let mut acc = 0.0;
        for &c in &OpClass::ALL {
            acc += self.fraction(c);
            if u < acc {
                return c;
            }
        }
        // Floating-point slack: the tail belongs to the last nonzero class.
        *OpClass::ALL
            .iter()
            .rev()
            .find(|&&c| self.fraction(c) > 0.0)
            .expect("mix sums to 1, so some class is nonzero")
    }

    /// Linear blend `(1−t)·self + t·other` (both mixes stay normalized).
    pub fn blended(&self, other: &InstructionMix, t: f64) -> InstructionMix {
        let lerp = |a: f64, b: f64| a + (b - a) * t.clamp(0.0, 1.0);
        InstructionMix {
            int_alu: lerp(self.int_alu, other.int_alu),
            int_mul: lerp(self.int_mul, other.int_mul),
            fp_alu: lerp(self.fp_alu, other.fp_alu),
            fp_mul: lerp(self.fp_mul, other.fp_mul),
            fp_div: lerp(self.fp_div, other.fp_div),
            load: lerp(self.load, other.load),
            store: lerp(self.store, other.store),
            branch: lerp(self.branch, other.branch),
        }
    }
}

/// Errors from [`InstructionMix::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixError {
    /// A fraction was negative or non-finite.
    NegativeFraction,
    /// The fractions did not sum to 1 (contains the actual sum).
    BadTotal(f64),
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixError::NegativeFraction => write!(f, "mix fraction negative or non-finite"),
            MixError::BadTotal(t) => write!(f, "mix fractions sum to {t}, expected 1"),
        }
    }
}

impl std::error::Error for MixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_normalized() {
        for mix in [
            InstructionMix::integer_typical(),
            InstructionMix::fp_typical(),
            InstructionMix::fp_burst(),
            InstructionMix::memory_bound(),
            InstructionMix::integer_kernel(),
        ] {
            assert!((mix.total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_mixes() {
        assert_eq!(
            InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            Err(MixError::BadTotal(0.5))
        );
        assert_eq!(
            InstructionMix::new(1.2, -0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            Err(MixError::NegativeFraction)
        );
    }

    #[test]
    fn sample_covers_all_classes_proportionally() {
        let mix = InstructionMix::fp_typical();
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            *counts.entry(mix.sample(u)).or_insert(0u32) += 1;
        }
        for &c in &OpClass::ALL {
            let got = *counts.get(&c).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - mix.fraction(c)).abs() < 1e-3,
                "{c}: got {got}, want {}",
                mix.fraction(c)
            );
        }
    }

    #[test]
    fn sample_edges_do_not_panic() {
        let mix = InstructionMix::integer_typical();
        let _ = mix.sample(0.0);
        let _ = mix.sample(0.999_999_999);
        let _ = mix.sample(1.0);
    }

    #[test]
    fn blend_endpoints_match_inputs() {
        let a = InstructionMix::integer_typical();
        let b = InstructionMix::fp_burst();
        assert_eq!(a.blended(&b, 0.0), a);
        let at_one = a.blended(&b, 1.0);
        for &c in &OpClass::ALL {
            assert!((at_one.fraction(c) - b.fraction(c)).abs() < 1e-12);
        }
        let mid = a.blended(&b, 0.5);
        assert!((mid.total() - 1.0).abs() < 1e-9);
        assert!(mid.fp_fraction() > a.fp_fraction());
        assert!(mid.fp_fraction() < b.fp_fraction());
    }

    #[test]
    fn convenience_fractions() {
        let mix = InstructionMix::fp_typical();
        assert!((mix.fp_fraction() - 0.39).abs() < 1e-9);
        assert!((mix.mem_fraction() - 0.34).abs() < 1e-9);
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = MixError::BadTotal(0.4);
        assert!(format!("{e}").contains("0.4"));
        assert!(!format!("{}", MixError::NegativeFraction).is_empty());
    }
}
