//! SPEC2000 integer benchmark models (6 applications, as in the paper).

use crate::benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
use crate::mix::InstructionMix;
use crate::phase::PhaseSpec;

/// All SPECint2000 benchmark models.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![gzip(), vpr(), gcc(), mcf(), parser(), bzip2()]
}

/// `gzip`: long compression phases with moderate memory traffic.
pub fn gzip() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gzip",
        suite: Suite::SpecInt2000,
        description: "long deflate phases, moderate memory traffic, FP idle",
        phases: vec![
            PhaseSpec::new("deflate", InstructionMix::integer_typical(), 600_000)
                .with_dep_mean(5.0)
                .with_misses(0.025, 0.2),
            PhaseSpec::new("window", InstructionMix::integer_kernel(), 200_000)
                .with_dep_mean(4.0)
                .with_misses(0.04, 0.25),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `vpr`: place-and-route with a small FP component (cost functions).
pub fn vpr() -> BenchmarkSpec {
    let mix = InstructionMix::new(0.38, 0.02, 0.06, 0.02, 0.0, 0.22, 0.10, 0.20)
        .expect("static mix is valid");
    BenchmarkSpec {
        name: "vpr",
        suite: Suite::SpecInt2000,
        description: "integer place-and-route with a small steady FP cost-function component",
        phases: vec![PhaseSpec::new("place", mix, 400_000)
            .with_dep_mean(5.5)
            .with_misses(0.035, 0.3)
            .with_branches(0.18, 0.5)],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `gcc`: branchy parsing alternating with memory-heavy optimization.
pub fn gcc() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gcc",
        suite: Suite::SpecInt2000,
        description: "branchy front-end passes alternating with pointer-heavy optimization",
        phases: vec![
            PhaseSpec::new("parse", InstructionMix::integer_typical(), 150_000)
                .with_dep_mean(4.5)
                .with_branches(0.3, 0.5)
                .with_code_footprint(8192),
            PhaseSpec::new("optimize", InstructionMix::memory_bound(), 180_000)
                .with_dep_mean(5.0)
                .with_misses(0.06, 0.35)
                .with_code_footprint(8192),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `mcf`: pointer chasing with very high miss rates — the LS domain and
/// asynchronous memory dominate.
pub fn mcf() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "mcf",
        suite: Suite::SpecInt2000,
        description: "memory-bound pointer chasing; execution time set by the asynchronous memory",
        phases: vec![
            PhaseSpec::new("simplex", InstructionMix::memory_bound(), 500_000)
                .with_dep_mean(3.0)
                .with_misses(0.25, 0.6)
                .with_branches(0.2, 0.5),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `parser`: dictionary lookups and branchy parsing.
pub fn parser() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "parser",
        suite: Suite::SpecInt2000,
        description: "branchy parsing with periodic dictionary-lookup stretches",
        phases: vec![
            PhaseSpec::new("parse", InstructionMix::integer_typical(), 250_000)
                .with_dep_mean(4.0)
                .with_branches(0.25, 0.55),
            PhaseSpec::new("dict", InstructionMix::memory_bound(), 150_000)
                .with_dep_mean(4.5)
                .with_misses(0.05, 0.3),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `bzip2`: block-sort bursts alternating with Huffman coding on a short
/// wavelength — the integer member of the fast group.
pub fn bzip2() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "bzip2",
        suite: Suite::SpecInt2000,
        description:
            "short alternation of memory-heavy block sorting and compute-only Huffman coding",
        phases: vec![
            PhaseSpec::new("blocksort", InstructionMix::memory_bound(), 40_000)
                .with_dep_mean(5.0)
                .with_misses(0.07, 0.3),
            PhaseSpec::new("huffman", InstructionMix::integer_kernel(), 30_000)
                .with_dep_mean(4.0)
                .with_misses(0.01, 0.1),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_specint_benchmarks_all_integer_dominant() {
        let benches = all();
        assert_eq!(benches.len(), 6);
        for b in &benches {
            assert_eq!(b.suite, Suite::SpecInt2000);
            for p in &b.phases {
                assert!(
                    p.mix.fp_fraction() < 0.15,
                    "{}: SPECint phase {} too FP-heavy",
                    b.name,
                    p.name
                );
            }
        }
    }

    #[test]
    fn mcf_is_the_most_memory_bound() {
        let m = mcf();
        assert!(m.phases[0].l1d_miss >= 0.2);
        assert!(m.phases[0].mix.mem_fraction() > 0.4);
    }
}
