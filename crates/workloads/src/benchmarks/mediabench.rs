//! MediaBench benchmark models (6 applications, as in the paper).

use crate::benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
use crate::mix::InstructionMix;
use crate::phase::PhaseSpec;

/// All MediaBench benchmark models.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![
        adpcm_encode(),
        adpcm_decode(),
        epic_encode(),
        epic_decode(),
        g721_encode(),
        mpeg2_decode(),
    ]
}

/// `adpcm_encode`: tiny integer kernel, essentially phase-free. The FP
/// queue is permanently empty and the INT queue occupancy is steady.
pub fn adpcm_encode() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "adpcm_encode",
        suite: Suite::MediaBench,
        description: "steady integer kernel; FP idle throughout",
        phases: vec![
            PhaseSpec::new("encode", InstructionMix::integer_kernel(), 400_000)
                .with_dep_mean(4.0)
                .with_misses(0.01, 0.1)
                .with_branches(0.05, 0.6)
                .with_code_footprint(256),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `adpcm_decode`: like the encoder, slightly more serial.
pub fn adpcm_decode() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "adpcm_decode",
        suite: Suite::MediaBench,
        description: "steady serial integer kernel; FP idle throughout",
        phases: vec![
            PhaseSpec::new("decode", InstructionMix::integer_kernel(), 400_000)
                .with_dep_mean(3.0)
                .with_misses(0.01, 0.1)
                .with_branches(0.04, 0.65)
                .with_code_footprint(256),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `epic_encode`: wavelet filter / quantize / entropy-code inner loop —
/// FP activity alternates on a short wavelength (the paper's fast group).
pub fn epic_encode() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "epic_encode",
        suite: Suite::MediaBench,
        description: "FP filter bursts alternating with integer coding at short wavelength",
        phases: vec![
            PhaseSpec::new("filter", InstructionMix::fp_burst(), 30_000)
                .with_dep_mean(8.0)
                .with_misses(0.04, 0.2),
            PhaseSpec::new("quantize", InstructionMix::integer_typical(), 20_000)
                .with_dep_mean(5.0)
                .with_misses(0.02, 0.2),
            PhaseSpec::new("encode", InstructionMix::integer_kernel(), 25_000)
                .with_dep_mean(4.0)
                .with_branches(0.2, 0.55),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

/// `epic_decode`: the paper's Figure 7 illustration. The FP queue is
/// emptying except for two distinct activity phases: a modest one about a
/// quarter of the way in, and a dramatic burst near the end.
pub fn epic_decode() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "epic_decode",
        suite: Suite::MediaBench,
        description: "FP idle except two distinct phases (modest mid-run, dramatic near end)",
        phases: vec![
            PhaseSpec::new("unpack", InstructionMix::integer_typical(), 270_000).with_dep_mean(5.0),
            PhaseSpec::new("fp_modest", InstructionMix::fp_typical(), 130_000)
                .with_dep_mean(7.0)
                .with_misses(0.03, 0.2),
            PhaseSpec::new("entropy", InstructionMix::integer_kernel(), 450_000)
                .with_dep_mean(4.0)
                .with_branches(0.15, 0.6),
            PhaseSpec::new("fp_burst", InstructionMix::fp_burst(), 150_000)
                .with_dep_mean(9.0)
                .with_misses(0.04, 0.2),
        ],
        loops: false,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `g721_encode`: steady integer DSP code with multiplies.
pub fn g721_encode() -> BenchmarkSpec {
    let mix = InstructionMix::new(0.46, 0.08, 0.0, 0.0, 0.0, 0.18, 0.09, 0.19)
        .expect("static mix is valid");
    BenchmarkSpec {
        name: "g721_encode",
        suite: Suite::MediaBench,
        description: "steady integer DSP with multiplies; FP idle",
        phases: vec![PhaseSpec::new("predict", mix, 350_000)
            .with_dep_mean(3.5)
            .with_misses(0.015, 0.15)
            .with_code_footprint(512)],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `mpeg2_decode`: IDCT (FP burst) / motion-compensation (memory) / VLD
/// (integer, branchy) macroblock loop — fast alternation.
pub fn mpeg2_decode() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "mpeg2_decode",
        suite: Suite::MediaBench,
        description: "IDCT FP bursts, memory-heavy motion compensation, branchy VLD per macroblock",
        phases: vec![
            PhaseSpec::new("idct", InstructionMix::fp_burst(), 15_000)
                .with_dep_mean(8.0)
                .with_misses(0.02, 0.2),
            PhaseSpec::new("motion", InstructionMix::memory_bound(), 20_000)
                .with_dep_mean(6.0)
                .with_misses(0.08, 0.3),
            PhaseSpec::new("vld", InstructionMix::integer_kernel(), 15_000)
                .with_dep_mean(4.0)
                .with_branches(0.25, 0.5),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_mediabench_benchmarks() {
        assert_eq!(all().len(), 6);
        for b in all() {
            assert_eq!(b.suite, Suite::MediaBench);
            assert!(!b.phases.is_empty());
        }
    }

    #[test]
    fn epic_decode_has_two_fp_phases_among_idle() {
        let b = epic_decode();
        let fp_phases: Vec<_> = b
            .phases
            .iter()
            .filter(|p| p.mix.fp_fraction() > 0.1)
            .collect();
        assert_eq!(fp_phases.len(), 2, "Figure 7 needs exactly two FP phases");
        assert!(!b.loops);
    }

    #[test]
    fn adpcm_has_no_fp() {
        for b in [adpcm_encode(), adpcm_decode()] {
            for p in &b.phases {
                assert_eq!(p.mix.fp_fraction(), 0.0);
            }
        }
    }

    #[test]
    fn fast_benchmarks_alternate_fp_and_int() {
        let b = mpeg2_decode();
        assert!(b.loops);
        assert!(b.phases.iter().any(|p| p.mix.fp_fraction() > 0.3));
        assert!(b.phases.iter().any(|p| p.mix.fp_fraction() < 0.1));
    }
}
