//! SPEC2000 floating-point benchmark models (5 applications, as in the
//! paper).

use crate::benchmarks::{BenchmarkSpec, Suite, VariabilityClass};
use crate::mix::InstructionMix;
use crate::phase::PhaseSpec;

/// All SPECfp2000 benchmark models.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![wupwise(), swim(), mgrid(), applu(), art()]
}

/// `wupwise`: long, steady FP phases (lattice QCD kernels).
pub fn wupwise() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "wupwise",
        suite: Suite::SpecFp2000,
        description: "long steady FP matrix kernels; near-constant queue occupancies",
        phases: vec![
            PhaseSpec::new("zgemm", InstructionMix::fp_typical(), 500_000)
                .with_dep_mean(8.0)
                .with_misses(0.03, 0.25),
        ],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `swim`: shallow-water stencil sweeps — FP bursts alternating with
/// array-update stretches on a short wavelength.
pub fn swim() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "swim",
        suite: Suite::SpecFp2000,
        description: "stencil FP bursts alternating with memory-heavy array updates",
        phases: vec![
            PhaseSpec::new("stencil", InstructionMix::fp_burst(), 25_000)
                .with_dep_mean(9.0)
                .with_misses(0.06, 0.3),
            PhaseSpec::new("update", InstructionMix::memory_bound(), 20_000)
                .with_dep_mean(6.0)
                .with_misses(0.08, 0.35),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

/// `mgrid`: multigrid relaxation — steady FP with heavy memory traffic.
pub fn mgrid() -> BenchmarkSpec {
    let mix = InstructionMix::new(0.14, 0.01, 0.24, 0.16, 0.02, 0.27, 0.09, 0.07)
        .expect("static mix is valid");
    BenchmarkSpec {
        name: "mgrid",
        suite: Suite::SpecFp2000,
        description: "steady multigrid relaxation; FP and LS both busy",
        phases: vec![PhaseSpec::new("relax", mix, 450_000)
            .with_dep_mean(8.0)
            .with_misses(0.05, 0.3)],
        loops: true,
        expected_variability: VariabilityClass::Slow,
    }
}

/// `applu`: SSOR sweeps — alternating lower/upper triangular solves and
/// right-hand-side computation at short wavelength.
pub fn applu() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "applu",
        suite: Suite::SpecFp2000,
        description: "alternating triangular-solve FP bursts and integer/memory RHS phases",
        phases: vec![
            PhaseSpec::new("blts", InstructionMix::fp_burst(), 30_000)
                .with_dep_mean(7.0)
                .with_misses(0.04, 0.3),
            PhaseSpec::new("buts", InstructionMix::fp_typical(), 30_000)
                .with_dep_mean(7.0)
                .with_misses(0.04, 0.3),
            PhaseSpec::new("rhs", InstructionMix::memory_bound(), 25_000)
                .with_dep_mean(5.0)
                .with_misses(0.06, 0.3),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

/// `art`: neural-network image matching — short FP/memory bursts with very
/// high miss rates.
pub fn art() -> BenchmarkSpec {
    let match_mix = InstructionMix::new(0.16, 0.0, 0.22, 0.12, 0.0, 0.30, 0.08, 0.12)
        .expect("static mix is valid");
    BenchmarkSpec {
        name: "art",
        suite: Suite::SpecFp2000,
        description: "short FP match bursts over a large, cache-hostile working set",
        phases: vec![
            PhaseSpec::new("match", match_mix, 20_000)
                .with_dep_mean(6.0)
                .with_misses(0.20, 0.5),
            PhaseSpec::new("learn", InstructionMix::integer_typical(), 15_000)
                .with_dep_mean(4.5)
                .with_misses(0.10, 0.4),
        ],
        loops: true,
        expected_variability: VariabilityClass::Fast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_specfp_benchmarks_fp_dominant() {
        let benches = all();
        assert_eq!(benches.len(), 5);
        for b in &benches {
            assert_eq!(b.suite, Suite::SpecFp2000);
            assert!(
                b.phases.iter().any(|p| p.mix.fp_fraction() > 0.2),
                "{}: no FP-heavy phase",
                b.name
            );
        }
    }

    #[test]
    fn art_is_cache_hostile() {
        let a = art();
        assert!(a.phases[0].l1d_miss >= 0.15);
    }

    #[test]
    fn fast_fp_benchmarks_loop() {
        for b in [swim(), applu(), art()] {
            assert!(b.loops, "{} should loop", b.name);
            assert_eq!(b.expected_variability, VariabilityClass::Fast);
        }
    }
}
