//! Named benchmark definitions (Table 2 of the paper).
//!
//! Each benchmark is a phase program whose lengths, mixes and memory
//! behaviour were chosen to reproduce the queue-occupancy character the
//! paper (and its companion studies) report for the real binaries — see
//! DESIGN.md, substitution S3. The `expected_variability` field records
//! which group the benchmark is *designed* to fall into; the Table 2
//! experiment re-derives the classification independently via spectral
//! analysis and cross-checks it against this field.

pub mod mediabench;
pub mod specfp;
pub mod specint;

use crate::phase::PhaseSpec;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MediaBench (official data inputs, whole-program windows).
    MediaBench,
    /// SPEC2000 integer (reference inputs, SimPoint windows).
    SpecInt2000,
    /// SPEC2000 floating-point (reference inputs, SimPoint windows).
    SpecFp2000,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::MediaBench => "MediaBench",
            Suite::SpecInt2000 => "SPEC2000int",
            Suite::SpecFp2000 => "SPEC2000fp",
        };
        f.write_str(s)
    }
}

/// Workload-variability class from the paper's Section 5.2 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariabilityClass {
    /// Slow or negligible workload variation: fixed-interval schemes keep up.
    Slow,
    /// Fast workload variation (short wavelengths): the adaptive scheme's
    /// advantage case.
    Fast,
}

impl std::fmt::Display for VariabilityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VariabilityClass::Slow => "slow",
            VariabilityClass::Fast => "fast",
        })
    }
}

/// A complete named benchmark: an ordered phase program.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Canonical lowercase name, e.g. `"epic_decode"`.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// One-line description of the workload shape being modeled.
    pub description: &'static str,
    /// Phase program, executed in order.
    pub phases: Vec<PhaseSpec>,
    /// Whether the phase program repeats (`true`) or the final phase
    /// extends indefinitely (`false`).
    pub loops: bool,
    /// The variability group the phase program is designed to land in.
    pub expected_variability: VariabilityClass,
}

impl BenchmarkSpec {
    /// Total instructions in one pass over the phase program.
    pub fn cycle_length(&self) -> u64 {
        self.phases.iter().map(|p| p.len_ops).sum()
    }

    /// Shortest phase length — an upper bound on the variation wavelength.
    pub fn min_phase_len(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.len_ops)
            .min()
            .expect("benchmarks have at least one phase")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn suite_and_class_display() {
        assert_eq!(format!("{}", Suite::MediaBench), "MediaBench");
        assert_eq!(format!("{}", VariabilityClass::Fast), "fast");
    }

    #[test]
    fn cycle_length_sums_phases() {
        let spec = registry::by_name("mpeg2_decode").expect("exists");
        let total: u64 = spec.phases.iter().map(|p| p.len_ops).sum();
        assert_eq!(spec.cycle_length(), total);
        assert!(spec.min_phase_len() <= total);
    }

    #[test]
    fn fast_benchmarks_have_short_phases() {
        for spec in registry::all() {
            match spec.expected_variability {
                VariabilityClass::Fast => assert!(
                    spec.min_phase_len() <= 60_000,
                    "{} marked fast but min phase is {}",
                    spec.name,
                    spec.min_phase_len()
                ),
                VariabilityClass::Slow => assert!(
                    spec.min_phase_len() >= 100_000,
                    "{} marked slow but min phase is {}",
                    spec.name,
                    spec.min_phase_len()
                ),
            }
        }
    }
}
