//! Plain-text trace export/import.
//!
//! Generated traces can be written to a simple line-oriented format and
//! read back, so a workload can be inspected, archived, or replayed
//! outside the generator. One micro-op per line:
//!
//! ```text
//! # mcd-trace v1
//! <class> <pc> <src1|-> <src2|-> <addr|-> <taken:0|1>
//! ```
//!
//! Sequence numbers are implicit (dense, starting at 0).

use std::io::{BufRead, Write};

use crate::uop::{MicroOp, OpClass};

/// The header line identifying the format.
pub const HEADER: &str = "# mcd-trace v1";

fn class_token(c: OpClass) -> &'static str {
    match c {
        OpClass::IntAlu => "ialu",
        OpClass::IntMul => "imul",
        OpClass::FpAlu => "falu",
        OpClass::FpMul => "fmul",
        OpClass::FpDiv => "fdiv",
        OpClass::Load => "ld",
        OpClass::Store => "st",
        OpClass::Branch => "br",
    }
}

fn parse_class(tok: &str) -> Option<OpClass> {
    Some(match tok {
        "ialu" => OpClass::IntAlu,
        "imul" => OpClass::IntMul,
        "falu" => OpClass::FpAlu,
        "fmul" => OpClass::FpMul,
        "fdiv" => OpClass::FpDiv,
        "ld" => OpClass::Load,
        "st" => OpClass::Store,
        "br" => OpClass::Branch,
        _ => return None,
    })
}

/// Errors from [`read_trace`].
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing or wrong header line.
    BadHeader,
    /// A malformed line (1-based line number and reason).
    BadLine(usize, &'static str),
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::BadHeader => write!(f, "missing '{HEADER}' header"),
            ParseTraceError::BadLine(n, why) => write!(f, "line {n}: {why}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes `ops` to `w` in the text format. Accepts any `Write` by value;
/// pass `&mut writer` to keep using it afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = MicroOp>>(
    ops: I,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for op in ops {
        let opt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
        writeln!(
            w,
            "{} {:#x} {} {} {} {}",
            class_token(op.class),
            op.pc,
            opt(op.src1),
            opt(op.src2),
            op.addr.map_or("-".to_string(), |a| format!("{a:#x}")),
            u8::from(op.taken),
        )?;
    }
    Ok(())
}

/// Reads a trace from `r`. Accepts any `BufRead` by value; pass
/// `&mut reader` to keep using it afterwards.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure, a missing header, or any
/// malformed line.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<MicroOp>, ParseTraceError> {
    let mut lines = r.lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == HEADER => {}
        Some(Ok(_)) | None => return Err(ParseTraceError::BadHeader),
        Some(Err(e)) => return Err(e.into()),
    }
    let parse_u64 = |tok: &str| -> Option<u64> {
        if let Some(hex) = tok.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            tok.parse().ok()
        }
    };
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let lineno = i + 2;
        if toks.len() != 6 {
            return Err(ParseTraceError::BadLine(lineno, "expected 6 fields"));
        }
        let class =
            parse_class(toks[0]).ok_or(ParseTraceError::BadLine(lineno, "unknown op class"))?;
        let pc = parse_u64(toks[1]).ok_or(ParseTraceError::BadLine(lineno, "bad pc"))?;
        let opt = |tok: &str, what: &'static str| -> Result<Option<u64>, ParseTraceError> {
            if tok == "-" {
                Ok(None)
            } else {
                parse_u64(tok)
                    .map(Some)
                    .ok_or(ParseTraceError::BadLine(lineno, what))
            }
        };
        let src1 = opt(toks[2], "bad src1")?;
        let src2 = opt(toks[3], "bad src2")?;
        let addr = opt(toks[4], "bad addr")?;
        let taken = match toks[5] {
            "0" => false,
            "1" => true,
            _ => return Err(ParseTraceError::BadLine(lineno, "bad taken flag")),
        };
        if class.is_mem() && addr.is_none() {
            return Err(ParseTraceError::BadLine(
                lineno,
                "memory op without address",
            ));
        }
        ops.push(MicroOp {
            seq: ops.len() as u64,
            class,
            src1,
            src2,
            addr,
            pc,
            taken,
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::registry;

    #[test]
    fn roundtrip_preserves_every_field() {
        let spec = registry::by_name("mpeg2_decode").expect("registered");
        let ops: Vec<MicroOp> = TraceGenerator::new(&spec, 5_000, 42).collect();
        let mut buf = Vec::new();
        write_trace(ops.iter().copied(), &mut buf).expect("write to vec");
        let back = read_trace(buf.as_slice()).expect("parse own output");
        assert_eq!(ops, back);
    }

    #[test]
    fn header_is_required() {
        let e = read_trace("ialu 0x400 - - - 0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, ParseTraceError::BadHeader));
        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{HEADER}\n\n# a comment\nialu 0x400 - - - 0\n");
        let ops = read_trace(text.as_bytes()).expect("parse");
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].class, OpClass::IntAlu);
        assert_eq!(ops[0].seq, 0);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = format!("{HEADER}\nialu 0x400 - - - 0\nbogus line here\n");
        let e = read_trace(text.as_bytes()).unwrap_err();
        match e {
            ParseTraceError::BadLine(n, _) => assert_eq!(n, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn memory_op_without_address_rejected() {
        let text = format!("{HEADER}\nld 0x400 - - - 0\n");
        let e = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(e, ParseTraceError::BadLine(2, _)));
    }

    #[test]
    fn all_classes_roundtrip_tokens() {
        for &c in &OpClass::ALL {
            assert_eq!(parse_class(class_token(c)), Some(c), "{c:?}");
        }
        assert_eq!(parse_class("nope"), None);
    }
}
