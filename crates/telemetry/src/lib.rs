//! Unified telemetry primitives for the MCD reproduction stack
//! (DESIGN.md §9).
//!
//! Three layers share these types:
//!
//! * **Histograms** ([`Histogram`]) — fixed-bucket, log-scale,
//!   atomic-counter distributions. The simulator records per-domain
//!   reaction-time and queue-occupancy distributions through them, the
//!   harness records per-run wall time, and the service records request
//!   latency per endpoint and outcome. `record` is a single relaxed
//!   `fetch_add` per bucket — lock-free and safe to share across worker
//!   threads.
//! * **Span profiling** ([`Profiler`], [`Span`]) — a lightweight
//!   wall-time + call-count tree answering "where does simulator time
//!   go" per experiment (`repro profile`). Disabled profilers cost one
//!   branch per span; wall-clock readings never flow into golden-gated
//!   report bytes, only into the profile table and `--bench-out` JSON.
//! * **Prometheus** ([`prometheus::PromText`]) — renders counters,
//!   gauges, and histogram snapshots in the text exposition format
//!   served by `GET /metrics`, plus [`prometheus::lint`], the
//!   format-validity check CI runs against every rendered page.
//!
//! The crate is std-only and dependency-free so every layer of the
//! workspace (simulator, harness, service) can use it without pulling
//! anything else in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::PromText;
pub use span::{PhaseStat, ProfileSnapshot, Profiler, Span};
