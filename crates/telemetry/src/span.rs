//! Lightweight span profiling: per-phase wall time and call counts.
//!
//! A [`Profiler`] is either disabled (the default — entering a span is
//! one branch and allocates nothing) or enabled, in which case
//! [`Span::enter`] pushes the phase name onto a thread-local stack and
//! the drop records elapsed wall time under the "/"-joined path of the
//! stack (`experiment/simulate/baseline`). Nested spans therefore form
//! a tree keyed by path.
//!
//! Determinism contract: wall-clock readings are inherently
//! nondeterministic, so profiler output must never flow into
//! golden-gated report bytes. The harness only surfaces it through the
//! `repro profile` table and `--bench-out` JSON, both of which already
//! carry wall times. Call *counts* are deterministic and may be
//! asserted on in tests.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// The active span names on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug, Default)]
struct Inner {
    /// Path → (calls, total nanoseconds). `BTreeMap` keeps snapshots in
    /// a deterministic order.
    phases: Mutex<BTreeMap<String, (u64, u64)>>,
}

/// A handle to a (possibly disabled) profile accumulator. Cheap to
/// clone; clones share the same accumulator.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl Profiler {
    /// A disabled profiler: spans cost one branch and record nothing.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// An enabled profiler with an empty accumulator.
    pub fn enabled() -> Profiler {
        Profiler {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether spans record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name`. The span records its wall time under
    /// the "/"-joined path of all open spans on this thread when it is
    /// dropped; on a disabled profiler this is a no-op.
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { live: None };
        };
        STACK.with(|s| s.borrow_mut().push(name));
        Span {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                started: Instant::now(),
            }),
        }
    }

    /// A point-in-time copy of every phase recorded so far.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let phases = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .phases
                .lock()
                .expect("profiler lock")
                .iter()
                .map(|(path, &(calls, nanos))| PhaseStat {
                    path: path.clone(),
                    calls,
                    nanos,
                })
                .collect(),
        };
        ProfileSnapshot { phases }
    }
}

struct LiveSpan {
    inner: Arc<Inner>,
    started: Instant,
}

/// An RAII guard for one profiled phase; records on drop.
///
/// Create via [`Profiler::span`] or the [`Span::enter`] convenience
/// (which profiles against a caller-supplied profiler reference).
#[must_use = "a span records its phase when dropped"]
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// `profiler.span(name)` spelled the way the issue tracker
    /// documents it: `Span::enter(&profiler, "phase")`.
    pub fn enter(profiler: &Profiler, name: &'static str) -> Span {
        profiler.span(name)
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.live.is_some())
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let nanos = live.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut phases = live.inner.phases.lock().expect("profiler lock");
        let slot = phases.entry(path).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += nanos;
    }
}

/// One phase in a [`ProfileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// "/"-joined span path, e.g. `experiment/simulate`.
    pub path: String,
    /// Times the span completed.
    pub calls: u64,
    /// Total wall time across those calls, in nanoseconds.
    pub nanos: u64,
}

impl PhaseStat {
    /// Total wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// An immutable copy of a profiler's accumulated phases, sorted by
/// path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Recorded phases in path order.
    pub phases: Vec<PhaseStat>,
}

impl ProfileSnapshot {
    /// Whether any phase was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phases recorded since `earlier` (both snapshots of the same
    /// profiler): per-path difference of calls and nanos, dropping
    /// paths that did not move.
    pub fn diff(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let old: BTreeMap<&str, (u64, u64)> = earlier
            .phases
            .iter()
            .map(|p| (p.path.as_str(), (p.calls, p.nanos)))
            .collect();
        let phases = self
            .phases
            .iter()
            .filter_map(|p| {
                let (c0, n0) = old.get(p.path.as_str()).copied().unwrap_or((0, 0));
                let calls = p.calls.saturating_sub(c0);
                if calls == 0 {
                    return None;
                }
                Some(PhaseStat {
                    path: p.path.clone(),
                    calls,
                    nanos: p.nanos.saturating_sub(n0),
                })
            })
            .collect();
        ProfileSnapshot { phases }
    }

    /// Total wall time across all phases, in nanoseconds. Nested spans
    /// overlap their parents, so this is an attribution total, not
    /// elapsed time.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        {
            let _a = p.span("outer");
            let _b = p.span("inner");
        }
        assert!(!p.is_enabled());
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_paths() {
        let p = Profiler::enabled();
        {
            let _outer = Span::enter(&p, "outer");
            {
                let _inner = p.span("inner");
            }
            {
                let _inner = p.span("inner");
            }
        }
        let snap = p.snapshot();
        let paths: Vec<(&str, u64)> = snap
            .phases
            .iter()
            .map(|ph| (ph.path.as_str(), ph.calls))
            .collect();
        assert_eq!(paths, vec![("outer", 1), ("outer/inner", 2)]);
    }

    #[test]
    fn diff_isolates_a_window() {
        let p = Profiler::enabled();
        {
            let _s = p.span("phase");
        }
        let before = p.snapshot();
        {
            let _s = p.span("phase");
        }
        {
            let _s = p.span("other");
        }
        let window = p.snapshot().diff(&before);
        let calls: Vec<(&str, u64)> = window
            .phases
            .iter()
            .map(|ph| (ph.path.as_str(), ph.calls))
            .collect();
        assert_eq!(calls, vec![("other", 1), ("phase", 1)]);
    }

    #[test]
    fn clones_share_one_accumulator() {
        let p = Profiler::enabled();
        let q = p.clone();
        {
            let _s = q.span("shared");
        }
        assert_eq!(p.snapshot().phases[0].calls, 1);
    }
}
