//! Fixed-bucket, lock-free, log-scale histograms.
//!
//! The bucket layout is fixed at compile time (DESIGN.md §9): values
//! `0..=15` get one exact bucket each, and every power-of-two octave
//! above that is split into four log-linear sub-buckets, giving 256
//! buckets total covering the full `u64` range with a worst-case
//! relative error of 25% per recorded value. Fixed buckets are what
//! make the type mergeable (bucket `i` means the same thing in every
//! histogram) and lock-free (recording is one relaxed `fetch_add`).
//!
//! Determinism: a snapshot is a pure function of the recorded values,
//! so any consumer that derives report bytes from snapshots of
//! deterministic quantities (reaction times, queue occupancies) stays
//! byte-deterministic. Wall-clock recordings are deterministic in
//! *shape* (bucket bounds) but not in content; they only flow into
//! surfaces that are not byte-gated (`--bench-out`, `/metrics`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in every [`Histogram`].
pub const NUM_BUCKETS: usize = 256;

/// Sub-buckets per power-of-two octave above the linear range.
const SUBS: usize = 4;

/// Values `0..=LINEAR_MAX` get one exact bucket each.
const LINEAR_MAX: u64 = 15;

/// First octave handled log-linearly (values `16..=31` live in octave 4).
const FIRST_OCTAVE: u32 = 4;

/// The bucket index `value` lands in.
pub fn bucket_index(value: u64) -> usize {
    if value <= LINEAR_MAX {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((value >> (octave - 2)) & 3) as usize;
    (LINEAR_MAX as usize + 1) + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

/// Largest value that lands in bucket `index` (inclusive upper bound).
///
/// Bounds are strictly monotone in `index`; the last bucket's bound is
/// `u64::MAX`.
pub fn bucket_upper(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index <= LINEAR_MAX as usize {
        return index as u64;
    }
    let k = index - (LINEAR_MAX as usize + 1);
    let octave = FIRST_OCTAVE + (k / SUBS) as u32;
    let sub = (k % SUBS) as u128;
    // Upper bound of sub-bucket `sub` in `octave`: the value just below
    // the next sub-bucket's start. Computed in u128 because the top
    // octave's bound overflows u64.
    let next_start = (sub + SUBS as u128 + 1) << (octave - 2);
    (next_start - 1).min(u64::MAX as u128) as u64
}

/// A lock-free log-scale histogram: 256 atomic buckets plus a running
/// sum and max. All methods take `&self`; share freely across threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` in one shot.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds every count in `other` into `self`. Counts are never lost:
    /// each bucket moves by exactly `other`'s bucket count (as read at
    /// the moment of the fold).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Individual bucket loads are
    /// relaxed, so a snapshot taken concurrently with recording can lag
    /// a few in-flight observations; counts already in a bucket are
    /// never lost or double-counted.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
            count += *slot;
        }
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s counters, with quantile and
/// rendering helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` observation, clamped to the
    /// recorded max. Returns 0 when empty. Deterministic: a pure
    /// function of the counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `earlier` was taken (both
    /// snapshots of the same monotonically-recorded histogram):
    /// per-bucket saturating difference. The window's `max` cannot be
    /// recovered from two cumulative snapshots, so the later snapshot's
    /// max is kept — an upper bound that only affects quantile clamping.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Occupied buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order — the raw material for Prometheus
    /// `le`-bucket rendering.
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..=15u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.sum(), (0..=15).sum::<u64>());
        assert_eq!(s.max(), 15);
        for v in 0..=15u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v, "value {v} exact");
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_monotone() {
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let b = bucket_upper(i);
            if let Some(p) = prev {
                assert!(b > p, "bound not monotone at {i}: {b} <= {p}");
            }
            prev = Some(b);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn every_value_lands_in_a_bucket_containing_it() {
        for &v in &[
            0u64,
            1,
            15,
            16,
            19,
            20,
            31,
            32,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} below its bucket range");
            }
            // Relative bucket width is bounded: within 25% of the value.
            let upper = bucket_upper(i);
            if v > LINEAR_MAX && upper != u64::MAX {
                assert!(
                    (upper - v) as f64 <= 0.25 * v as f64 + 1.0,
                    "bucket too wide at {v}: upper {upper}"
                );
            }
        }
    }

    #[test]
    fn quantiles_are_order_statistics_of_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.p50();
        let p99 = s.p99();
        // The rank-50 value is 50; its bucket upper bound is < 63.
        assert!((50..63).contains(&p50), "p50 estimate {p50}");
        assert!((99..=100).contains(&p99), "p99 estimate {p99}");
        assert_eq!(s.quantile(1.0), 100, "max quantile clamps to max");
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn merge_conserves_counts_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(7, 3);
        b.record(1_000_000);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 21 + 1_000_000);
        assert_eq!(s.max(), 1_000_000);
    }

    #[test]
    fn diff_recovers_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(20);
        h.record(30);
        let window = h.snapshot().diff(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 50);
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.occupied().count(), 0);
    }

    #[test]
    fn occupied_yields_ascending_bounds() {
        let h = Histogram::new();
        for &v in &[3u64, 3, 90, 4000] {
            h.record(v);
        }
        let s = h.snapshot();
        let got: Vec<(u64, u64)> = s.occupied().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (3, 2));
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got.iter().map(|&(_, c)| c).sum::<u64>(), s.count());
    }
}
