//! Prometheus text-exposition rendering and a format lint.
//!
//! [`PromText`] builds a `text/plain; version=0.0.4` page one metric
//! *family* at a time: each [`PromText::counter`] / [`gauge`] /
//! [`histogram`] call writes the `# HELP` / `# TYPE` header and returns
//! a writer for that family's samples, so all samples of a family are
//! contiguous (the exposition format requires uninterrupted groups).
//!
//! [`lint`] is the other half of the contract: it re-parses a rendered
//! page and rejects anything a Prometheus scraper would choke on —
//! invalid UTF-8, samples without a preceding `# TYPE`, `# TYPE`
//! without `# HELP`, bad metric/label names, broken label escaping,
//! non-monotone histogram `le` bounds, or a missing `+Inf` bucket. CI
//! runs it against the live `/metrics` page.
//!
//! [`gauge`]: PromText::gauge
//! [`histogram`]: PromText::histogram

use crate::histogram::HistogramSnapshot;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Content-Type value for the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a label value: backslash, double quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite f64 the way Prometheus expects (shortest
/// round-trip form; integral values print without a trailing `.0`).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_sample(buf: &mut String, name: &str, labels: &[(&str, &str)], value: &str) {
    buf.push_str(name);
    if !labels.is_empty() {
        buf.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{k}=\"{}\"", escape_label(v));
        }
        buf.push('}');
    }
    buf.push(' ');
    buf.push_str(value);
    buf.push('\n');
}

/// A Prometheus text-exposition page under construction.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        // HELP text escapes backslash and newline (not quotes).
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Starts a counter family; write each labelled series through the
    /// returned writer before starting the next family.
    pub fn counter<'a>(&'a mut self, name: &'a str, help: &str) -> Family<'a> {
        self.header(name, "counter", help);
        Family { page: self, name }
    }

    /// Starts a gauge family.
    pub fn gauge<'a>(&'a mut self, name: &'a str, help: &str) -> Family<'a> {
        self.header(name, "gauge", help);
        Family { page: self, name }
    }

    /// Starts a histogram family; each labelled series renders the
    /// snapshot's occupied buckets as cumulative `_bucket{le=...}`
    /// samples plus `_sum` and `_count`.
    pub fn histogram<'a>(&'a mut self, name: &'a str, help: &str) -> HistogramFamily<'a> {
        self.header(name, "histogram", help);
        HistogramFamily { page: self, name }
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Sample writer for one counter or gauge family.
#[derive(Debug)]
pub struct Family<'a> {
    page: &'a mut PromText,
    name: &'a str,
}

impl Family<'_> {
    /// Writes one integer-valued series.
    pub fn sample(&mut self, labels: &[(&str, &str)], value: u64) -> &mut Self {
        write_sample(&mut self.page.buf, self.name, labels, &value.to_string());
        self
    }

    /// Writes one float-valued series.
    pub fn sample_f64(&mut self, labels: &[(&str, &str)], value: f64) -> &mut Self {
        write_sample(&mut self.page.buf, self.name, labels, &fmt_value(value));
        self
    }
}

/// Sample writer for one histogram family.
#[derive(Debug)]
pub struct HistogramFamily<'a> {
    page: &'a mut PromText,
    name: &'a str,
}

impl HistogramFamily<'_> {
    /// Renders `snap` as one labelled series. `scale` converts recorded
    /// (integer) values into exposition units — e.g. a histogram
    /// recording microseconds renders in seconds with `scale = 1e-6`.
    /// Empty snapshots still emit `+Inf`/`_sum`/`_count` so the series
    /// exists from the first scrape.
    pub fn series(
        &mut self,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) -> &mut Self {
        let bucket = format!("{}_bucket", self.name);
        let mut cumulative = 0u64;
        for (upper, count) in snap.occupied() {
            cumulative += count;
            let le = fmt_value(upper as f64 * scale);
            let mut with_le = labels.to_vec();
            with_le.push(("le", &le));
            write_sample(
                &mut self.page.buf,
                &bucket,
                &with_le,
                &cumulative.to_string(),
            );
        }
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf"));
        write_sample(
            &mut self.page.buf,
            &bucket,
            &with_le,
            &snap.count().to_string(),
        );
        write_sample(
            &mut self.page.buf,
            &format!("{}_sum", self.name),
            labels,
            &fmt_value(snap.sum() as f64 * scale),
        );
        write_sample(
            &mut self.page.buf,
            &format!("{}_count", self.name),
            labels,
            &snap.count().to_string(),
        );
        self
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line_no: usize,
}

/// Parses `name{k="v",...} value`, validating names and escapes.
fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {line_no}: {msg}: {line:?}");
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| err("no value"))?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = &line[name_end..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let mut chars = body.char_indices();
        // The loop breaks with the byte index of the closing `}`.
        let consumed = 'series: loop {
            // Either `}` (end) or a `key="value"` pair.
            let mut key = String::new();
            for (i, c) in chars.by_ref() {
                match c {
                    '}' if key.is_empty() && labels.is_empty() => break 'series i,
                    '=' => break,
                    c => key.push(c),
                }
            }
            if !valid_label_name(key.trim()) {
                return Err(err("invalid label name"));
            }
            let key = key.trim().to_string();
            if !matches!(chars.next(), Some((_, '"'))) {
                return Err(err("label value not quoted"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        _ => return Err(err("invalid escape in label value")),
                    },
                    '\n' => return Err(err("raw newline in label value")),
                    c => value.push(c),
                }
            }
            if !closed {
                return Err(err("unterminated label value"));
            }
            labels.push((key, value));
            match chars.next() {
                Some((_, ',')) => continue,
                Some((i, '}')) => break 'series i,
                _ => return Err(err("expected , or } after label")),
            }
        };
        &body[consumed + 1..]
    } else {
        rest
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(err("no value"));
    }
    // Prometheus accepts Go-style floats plus +Inf/-Inf/NaN.
    let value = match value_str {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| err("value does not parse as a number"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
        line_no,
    })
}

/// Base family name for a sample: strips `_bucket`/`_sum`/`_count` when
/// the stripped name was declared as a histogram.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validates a text-exposition page. Returns `Err` with a line-numbered
/// message on the first violation: invalid UTF-8, unknown or duplicate
/// `# TYPE`, `# TYPE` without preceding `# HELP`, samples without a
/// `# TYPE`, samples interleaving another family's group, invalid
/// metric/label names or escapes, unparsable values, non-monotone or
/// non-cumulative histogram `le` buckets, a missing `+Inf` bucket, or a
/// `_count` that disagrees with the `+Inf` bucket.
pub fn lint(page: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(page).map_err(|e| format!("page is not UTF-8: {e}"))?;
    let mut helped: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut current_family: Option<String> = None;
    // (family, non-le labels) → histogram series accumulator.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut hist_series: BTreeMap<SeriesKey, HistSeries> = BTreeMap::new();

    #[derive(Default)]
    struct HistSeries {
        buckets: Vec<(f64, f64)>, // (le, cumulative count)
        count: Option<f64>,
        first_line: usize,
    }

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: HELP for invalid name {name:?}"));
                }
                helped.insert(name.to_string());
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: TYPE for invalid name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {line_no}: unknown TYPE {kind:?} for {name}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {line_no}: duplicate TYPE for {name}"));
                }
                if !helped.contains(name) {
                    return Err(format!(
                        "line {line_no}: TYPE {name} without preceding HELP"
                    ));
                }
                current_family = Some(name.to_string());
            }
            // Other comments are legal and ignored.
            continue;
        }

        let sample = parse_sample(line, line_no)?;
        let family = family_of(&sample.name, &types).to_string();
        let Some(kind) = types.get(&family) else {
            return Err(format!(
                "line {line_no}: sample {} without a # TYPE",
                sample.name
            ));
        };
        if current_family.as_deref() != Some(family.as_str()) {
            return Err(format!(
                "line {line_no}: sample {} interleaves another family's group",
                sample.name
            ));
        }
        for (k, _) in &sample.labels {
            if k == "le" && kind == "histogram" && sample.name.ends_with("_bucket") {
                continue;
            }
            if !valid_label_name(k) {
                return Err(format!("line {line_no}: invalid label name {k:?}"));
            }
        }

        if kind == "histogram" {
            let mut labels = sample.labels.clone();
            let le = labels
                .iter()
                .position(|(k, _)| k == "le")
                .map(|i| labels.remove(i).1);
            labels.sort();
            let key = (family.clone(), labels);
            let series = hist_series.entry(key).or_default();
            if series.first_line == 0 {
                series.first_line = sample.line_no;
            }
            if sample.name.ends_with("_bucket") {
                let Some(le) = le else {
                    return Err(format!("line {line_no}: _bucket sample without le label"));
                };
                let le = match le.as_str() {
                    "+Inf" => f64::INFINITY,
                    s => s
                        .parse::<f64>()
                        .map_err(|_| format!("line {line_no}: unparsable le {s:?}"))?,
                };
                series.buckets.push((le, sample.value));
            } else if sample.name.ends_with("_count") {
                series.count = Some(sample.value);
            }
        }
    }

    for ((family, labels), series) in &hist_series {
        let at = series.first_line;
        let mut prev: Option<(f64, f64)> = None;
        for &(le, cum) in &series.buckets {
            if let Some((ple, pcum)) = prev {
                if le <= ple {
                    return Err(format!(
                        "histogram {family} {labels:?} (line {at}): le not strictly increasing ({ple} then {le})"
                    ));
                }
                if cum < pcum {
                    return Err(format!(
                        "histogram {family} {labels:?} (line {at}): bucket counts not cumulative"
                    ));
                }
            }
            prev = Some((le, cum));
        }
        match prev {
            Some((le, cum)) if le == f64::INFINITY => {
                if let Some(count) = series.count {
                    if count != cum {
                        return Err(format!(
                            "histogram {family} {labels:?} (line {at}): _count {count} != +Inf bucket {cum}"
                        ));
                    }
                }
            }
            _ => {
                return Err(format!(
                    "histogram {family} {labels:?} (line {at}): missing +Inf bucket"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn page_with_histogram() -> String {
        let h = Histogram::new();
        for v in [3u64, 90, 90, 4000] {
            h.record(v);
        }
        let mut page = PromText::new();
        page.counter("mcd_requests_total", "Requests by outcome.")
            .sample(&[("outcome", "ok")], 7)
            .sample(&[("outcome", "shed")], 2);
        page.gauge("mcd_queue_depth", "Worker queue depth.")
            .sample(&[], 3);
        page.histogram("mcd_latency_seconds", "Request latency.")
            .series(&[("endpoint", "run")], &h.snapshot(), 1e-6);
        page.finish()
    }

    #[test]
    fn rendered_page_passes_lint() {
        let page = page_with_histogram();
        lint(page.as_bytes()).unwrap_or_else(|e| panic!("lint failed: {e}\n{page}"));
        assert!(page.contains("# TYPE mcd_requests_total counter"));
        assert!(page.contains("mcd_requests_total{outcome=\"ok\"} 7"));
        assert!(page.contains("le=\"+Inf\"} 4"));
        assert!(page.contains("mcd_latency_seconds_count{endpoint=\"run\"} 4"));
    }

    #[test]
    fn empty_histogram_series_still_valid() {
        let mut page = PromText::new();
        page.histogram("mcd_empty_seconds", "Never recorded.")
            .series(&[], &Histogram::new().snapshot(), 1.0);
        let page = page.finish();
        lint(page.as_bytes()).unwrap();
        assert!(page.contains("mcd_empty_seconds_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut page = PromText::new();
        page.counter("mcd_odd_total", "Odd labels.")
            .sample(&[("path", "a\\b\"c\nd")], 1);
        let page = page.finish();
        lint(page.as_bytes()).unwrap();
        assert!(page.contains("path=\"a\\\\b\\\"c\\nd\""));
    }

    #[test]
    fn lint_rejects_missing_type() {
        assert!(lint(b"mcd_orphan_total 1\n").is_err());
    }

    #[test]
    fn lint_rejects_type_without_help() {
        assert!(lint(b"# TYPE mcd_x counter\nmcd_x 1\n").is_err());
    }

    #[test]
    fn lint_rejects_non_monotone_le() {
        let page = "\
# HELP mcd_h x
# TYPE mcd_h histogram
mcd_h_bucket{le=\"2\"} 1
mcd_h_bucket{le=\"1\"} 2
mcd_h_bucket{le=\"+Inf\"} 2
mcd_h_count 2
";
        assert!(lint(page.as_bytes()).is_err());
    }

    #[test]
    fn lint_rejects_missing_inf_bucket() {
        let page = "\
# HELP mcd_h x
# TYPE mcd_h histogram
mcd_h_bucket{le=\"1\"} 1
mcd_h_count 1
";
        assert!(lint(page.as_bytes()).is_err());
    }

    #[test]
    fn lint_rejects_interleaved_families() {
        let page = "\
# HELP mcd_a x
# TYPE mcd_a counter
# HELP mcd_b x
# TYPE mcd_b counter
mcd_a 1
";
        assert!(lint(page.as_bytes()).is_err());
    }

    #[test]
    fn lint_rejects_bad_escape() {
        assert!(lint(b"# HELP mcd_a x\n# TYPE mcd_a counter\nmcd_a{l=\"\\q\"} 1\n").is_err());
    }

    #[test]
    fn lint_rejects_invalid_utf8() {
        assert!(lint(&[0xff, 0xfe]).is_err());
    }
}
