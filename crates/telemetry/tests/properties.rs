//! Property tests for the telemetry histogram: no observation is ever
//! lost across `record`/`merge`/`snapshot`, bucket bounds stay
//! monotone, and quantiles behave like order statistics of the bucket
//! bounds.

use mcd_telemetry::histogram::{bucket_index, bucket_upper, NUM_BUCKETS};
use mcd_telemetry::Histogram;
use proptest::collection;
use proptest::prelude::*;

/// Values spanning the full u64 range with a bias toward realistic
/// telemetry magnitudes (latencies in ns/us, occupancies).
fn values() -> impl Strategy<Value = u64> {
    (0u64..4, 0u64..=u64::MAX).prop_map(|(sel, raw)| match sel {
        0 => raw % 64,
        1 => raw % 100_000,
        2 => raw % 10_000_000_000,
        _ => raw,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every recorded observation lands in exactly one bucket, and the
    /// snapshot's count/sum/max agree with the raw data.
    #[test]
    fn record_never_loses_counts(vals in collection::vec(values(), 0..200)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), vals.len() as u64);
        prop_assert_eq!(s.sum(), vals.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(s.max(), vals.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(s.occupied().map(|(_, c)| c).sum::<u64>(), s.count());
    }

    /// Merging histograms (and snapshots) conserves every count: the
    /// merged snapshot equals the snapshot of recording both value sets
    /// into one histogram.
    #[test]
    fn merge_conserves_counts(
        a in collection::vec(values(), 0..100),
        b in collection::vec(values(), 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let combined = Histogram::new();
        for &v in &a {
            ha.record(v);
            combined.record(v);
        }
        for &v in &b {
            hb.record(v);
            combined.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.snapshot(), combined.snapshot());

        let mut sa = Histogram::new().snapshot();
        for h in [&a, &b] {
            let tmp = Histogram::new();
            for &v in h {
                tmp.record(v);
            }
            sa.merge(&tmp.snapshot());
        }
        prop_assert_eq!(sa, combined.snapshot());
    }

    /// Every value maps into a bucket whose range contains it, and the
    /// bucket's relative width is bounded (quantile error bound).
    #[test]
    fn bucket_contains_its_value(v in values()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(v <= bucket_upper(i));
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1));
        }
        let upper = bucket_upper(i);
        if v >= 16 && upper != u64::MAX {
            prop_assert!((upper - v) as f64 <= 0.25 * v as f64 + 1.0);
        }
    }

    /// Quantiles are monotone in q, never exceed the recorded max, and
    /// never undershoot the true quantile's bucket lower bound.
    #[test]
    fn quantiles_are_monotone_and_clamped(
        vals in collection::vec(values(), 1..200),
        permille in collection::vec(0u64..=1000, 2..6),
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        let mut qs: Vec<f64> = permille.iter().map(|&p| p as f64 / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &q in &qs {
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile not monotone at q={q}");
            prop_assert!(est <= s.max());
            prev = est;
        }
        // The estimate for a quantile is >= the true order statistic's
        // bucket lower bound.
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &q in &qs {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile(q);
            let lower = match bucket_index(truth) {
                0 => 0,
                i => bucket_upper(i - 1) + 1,
            };
            prop_assert!(
                est >= lower,
                "quantile({q}) = {est} under true value {truth}'s bucket [{lower}, ..]"
            );
        }
    }

    /// diff(earlier) recovers exactly the counts recorded in between.
    #[test]
    fn diff_recovers_the_window(
        early in collection::vec(values(), 0..100),
        late in collection::vec(values(), 0..100),
    ) {
        let h = Histogram::new();
        for &v in &early {
            h.record(v);
        }
        let before = h.snapshot();
        for &v in &late {
            h.record(v);
        }
        let window = h.snapshot().diff(&before);
        prop_assert_eq!(window.count(), late.len() as u64);
        prop_assert_eq!(window.sum(), late.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        let expect = Histogram::new();
        for &v in &late {
            expect.record(v);
        }
        let expect = expect.snapshot();
        prop_assert_eq!(
            window.occupied().collect::<Vec<_>>(),
            expect.occupied().collect::<Vec<_>>()
        );
    }
}

/// Bounds are strictly monotone across the whole table — the lint's
/// `le` monotonicity guarantee starts here.
#[test]
fn bucket_bounds_strictly_monotone() {
    for i in 1..NUM_BUCKETS {
        assert!(bucket_upper(i) > bucket_upper(i - 1), "at {i}");
    }
    assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
}

/// Concurrent recording from multiple threads loses nothing.
#[test]
fn concurrent_recording_is_lossless() {
    let h = std::sync::Arc::new(Histogram::new());
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000 + (i % 97));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(h.snapshot().count(), 40_000);
}
