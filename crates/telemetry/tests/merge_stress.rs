//! Concurrent stress test for the loss-free property of `Histogram`
//! `merge`/`snapshot`: merging a histogram while other threads are
//! mid-`record` must never lose or invent samples. The buckets are
//! relaxed atomics, so a mid-update snapshot may be *torn in time* —
//! it can miss samples recorded after it started — but every sample
//! must land in exactly one of {seen by this merge, seen by a later
//! one}, and the final post-join merge must be exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use mcd_telemetry::Histogram;

const WRITERS: usize = 4;
const PHASE1_PER_WRITER: u64 = 20_000;
const PHASE2_PER_WRITER: u64 = 20_000;

#[test]
fn merges_taken_mid_update_never_lose_or_invent_samples() {
    let source = Arc::new(Histogram::new());
    let go_phase2 = Arc::new(AtomicBool::new(false));

    // Writers: a fixed phase-1 population, then a barrier, then phase 2.
    // Values cover distinct buckets so torn per-bucket reads would show.
    let mut handles = Vec::new();
    let barrier = Arc::new(std::sync::Barrier::new(WRITERS + 1));
    for w in 0..WRITERS {
        let source = Arc::clone(&source);
        let barrier = Arc::clone(&barrier);
        let go_phase2 = Arc::clone(&go_phase2);
        handles.push(thread::spawn(move || {
            for i in 0..PHASE1_PER_WRITER {
                source.record((w as u64 + 1) * 1000 + (i % 97));
            }
            barrier.wait();
            while !go_phase2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            for i in 0..PHASE2_PER_WRITER {
                source.record((w as u64 + 1) * 1_000_000 + (i % 89));
            }
        }));
    }
    barrier.wait();
    go_phase2.store(true, Ordering::Release);

    let phase1_total = WRITERS as u64 * PHASE1_PER_WRITER;
    let grand_total = phase1_total + WRITERS as u64 * PHASE2_PER_WRITER;

    // Merges taken while phase-2 writers are racing: each merged view
    // must contain at least everything that was certainly complete
    // (phase 1) and never more than everything ever recorded.
    let mut last_count = 0u64;
    for _ in 0..50 {
        let merged = Histogram::new();
        merged.merge(&source);
        let snap = merged.snapshot();
        assert!(
            snap.count() >= phase1_total,
            "mid-update merge lost settled samples: {} < {phase1_total}",
            snap.count()
        );
        assert!(
            snap.count() <= grand_total,
            "mid-update merge invented samples: {} > {grand_total}",
            snap.count()
        );
        // Monotonic: a later merge can never see fewer samples than an
        // earlier one (writers only add).
        assert!(
            snap.count() >= last_count,
            "merge went backwards: {} < {last_count}",
            snap.count()
        );
        last_count = snap.count();
    }

    for h in handles {
        h.join().expect("writer thread");
    }

    // After the writers join, one final merge must be exact — count,
    // sum, and max all match an independently computed reference.
    let merged = Histogram::new();
    merged.merge(&source);
    let snap = merged.snapshot();
    assert_eq!(snap.count(), grand_total, "post-join merge must be exact");
    assert_eq!(snap.count(), source.snapshot().count());
    assert_eq!(snap.sum(), source.snapshot().sum());
    assert_eq!(snap.max(), source.snapshot().max());
}

#[test]
fn concurrent_merges_into_one_sink_accumulate_every_source() {
    // N threads each build a private histogram and merge it into a
    // shared sink concurrently; merge target updates must not clobber
    // each other.
    let sink = Arc::new(Histogram::new());
    let per_thread = 10_000u64;
    let threads = 8;
    let mut handles = Vec::new();
    for t in 0..threads {
        let sink = Arc::clone(&sink);
        handles.push(thread::spawn(move || {
            let private = Histogram::new();
            for i in 0..per_thread {
                private.record(t * 500 + (i % 61));
            }
            sink.merge(&private);
        }));
    }
    for h in handles {
        h.join().expect("merger thread");
    }
    let snap = sink.snapshot();
    assert_eq!(snap.count(), threads * per_thread);
}
