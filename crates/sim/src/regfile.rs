//! Physical register free lists (rename bookkeeping).

/// Free-list accounting for one physical register space.
///
/// The simulator is trace-driven, so only the *count* of free registers
/// matters: rename stalls when the pool is empty and registers return to
/// the pool at retirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    capacity: usize,
    free: usize,
}

impl FreeList {
    /// Creates a full free list of `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        FreeList {
            capacity,
            free: capacity,
        }
    }

    /// Registers currently available.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Total registers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempts to allocate one register. Returns `false` (without side
    /// effects) when the pool is empty.
    pub fn try_alloc(&mut self) -> bool {
        if self.free == 0 {
            false
        } else {
            self.free -= 1;
            true
        }
    }

    /// Returns one register to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more registers are released than were allocated.
    pub fn release(&mut self) {
        assert!(self.free < self.capacity, "free-list overflow");
        self.free += 1;
    }

    /// Serializes the free count (capacity comes from construction).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.free as u64);
    }

    /// Restores state captured by [`FreeList::save_state`] into a list of
    /// the same capacity.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let free = r.take_usize()?;
        if free > self.capacity {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "free list count {free} exceeds capacity {}",
                self.capacity
            )));
        }
        self.free = free;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let mut fl = FreeList::new(2);
        assert_eq!(fl.free(), 2);
        assert!(fl.try_alloc());
        assert!(fl.try_alloc());
        assert!(!fl.try_alloc(), "pool exhausted");
        fl.release();
        assert!(fl.try_alloc());
        assert_eq!(fl.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "free-list overflow")]
    fn over_release_panics() {
        let mut fl = FreeList::new(1);
        fl.release();
    }
}
