//! Set-associative caches with LRU replacement.

/// A set-associative cache directory (tags only — the simulator needs hit/
/// miss decisions and access counts, not data).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per-set tag stack, most-recently-used last
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `assoc` ways and `line_bytes`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or size not divisible into sets).
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(
            size_bytes > 0 && assoc > 0 && line_bytes > 0,
            "degenerate cache"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            lines >= assoc && lines.is_multiple_of(assoc),
            "size/assoc mismatch"
        );
        let n_sets = lines / assoc;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(assoc); n_sets],
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            accesses: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Accesses and (on miss) fills the line containing `addr`.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.sets.len().trailing_zeros();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            self.misses += 1;
            if set.len() == self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(tag);
            false
        }
    }

    /// Probes without filling or counting. Returns `true` on present.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.sets.len().trailing_zeros();
        self.sets[set_idx].contains(&tag)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far (0 if never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes the tag stacks and access counters (geometry comes from
    /// construction). LRU order within each set is preserved exactly.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        for set in &self.sets {
            w.put_seq(set, |w, &tag| w.put_u64(tag));
        }
        w.put_u64(self.accesses);
        w.put_u64(self.misses);
    }

    /// Restores state captured by [`Cache::save_state`] into a cache of
    /// the same geometry.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        for set in &mut self.sets {
            let ways: Vec<u64> = r.take_seq(|r| r.take_u64())?;
            if ways.len() > self.assoc {
                return Err(mcd_snap::SnapError::Mismatch(format!(
                    "cache set holds {} ways, associativity is {}",
                    ways.len(),
                    self.assoc
                )));
            }
            *set = ways;
        }
        self.accesses = r.take_u64()?;
        self.misses = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(64 * 1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line must hit");
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // Direct-mapped tiny cache: 2 lines of 64B.
        let mut c = Cache::new(128, 1, 64);
        assert_eq!(c.n_sets(), 2);
        assert!(!c.access(0x0)); // set 0
        assert!(!c.access(0x80)); // set 0, evicts 0x0
        assert!(!c.access(0x0)); // miss again
    }

    #[test]
    fn two_way_set_keeps_both_lines() {
        let mut c = Cache::new(256, 2, 64); // 2 sets, 2 ways
        c.access(0x000); // set 0
        c.access(0x100); // set 0, other tag
        assert!(c.access(0x000));
        assert!(c.access(0x100));
        // Third distinct tag in set 0 evicts the LRU (0x000 after the hits
        // above made 0x100 MRU... actually 0x100 was hit last, so 0x000 is LRU).
        c.access(0x200);
        assert!(c.probe(0x100));
        assert!(!c.probe(0x000));
    }

    #[test]
    fn probe_does_not_fill_or_count() {
        let c = Cache::new(1024, 2, 64);
        assert!(!c.probe(0x40));
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn miss_rate_tracks_counts() {
        let mut c = Cache::new(1024, 2, 64);
        assert_eq!(c.miss_rate(), 0.0);
        c.access(0x0);
        c.access(0x0);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_working_set_larger_than_cache_always_misses() {
        let mut c = Cache::new(4096, 1, 64); // 64 lines
                                             // Two passes over 128 distinct lines with a direct-mapped cache in
                                             // which each set sees two alternating tags: pass 2 must miss fully.
        for pass in 0..2 {
            for i in 0..128u64 {
                let hit = c.access(i * 64);
                if pass == 1 {
                    assert!(!hit, "line {i} unexpectedly survived");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_panics() {
        let _ = Cache::new(1024, 2, 48);
    }
}
