//! Simulator configuration (the paper's Table 1).

use mcd_power::{DomainClass, DvfsStyle, TimePs, VfCurve};

use crate::error::SimError;

/// Identity of one of the four on-chip clock domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainId {
    /// Fetch/decode/rename/dispatch/retire (fixed at maximum frequency).
    FrontEnd,
    /// Integer execution core.
    Int,
    /// Floating-point execution core.
    Fp,
    /// Load/store unit and on-chip caches.
    Ls,
}

impl DomainId {
    /// All four domains.
    pub const ALL: [DomainId; 4] = [
        DomainId::FrontEnd,
        DomainId::Int,
        DomainId::Fp,
        DomainId::Ls,
    ];

    /// The three DVFS-controlled back-end domains.
    pub const BACKEND: [DomainId; 3] = [DomainId::Int, DomainId::Fp, DomainId::Ls];

    /// Dense index (0..4) for array storage.
    pub fn index(self) -> usize {
        match self {
            DomainId::FrontEnd => 0,
            DomainId::Int => 1,
            DomainId::Fp => 2,
            DomainId::Ls => 3,
        }
    }

    /// Dense index among the back-end domains (0..3).
    ///
    /// # Panics
    ///
    /// Panics if called on [`DomainId::FrontEnd`].
    pub fn backend_index(self) -> usize {
        match self {
            DomainId::FrontEnd => panic!("front end is not a back-end domain"),
            DomainId::Int => 0,
            DomainId::Fp => 1,
            DomainId::Ls => 2,
        }
    }

    /// The power-model class of this domain.
    pub fn class(self) -> DomainClass {
        match self {
            DomainId::FrontEnd => DomainClass::FrontEnd,
            DomainId::Int => DomainClass::Integer,
            DomainId::Fp => DomainClass::FloatingPoint,
            DomainId::Ls => DomainClass::LoadStore,
        }
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DomainId::FrontEnd => "front-end",
            DomainId::Int => "INT",
            DomainId::Fp => "FP",
            DomainId::Ls => "LS",
        })
    }
}

/// The inter-domain synchronization interface family (Section 2 of the
/// paper surveys both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncModel {
    /// Arbitration-based queues with a stoppable clock (Sjogren & Myers),
    /// as used by the Semeraro et al. MCD implementation: every transfer
    /// whose source and destination edges fall closer than the
    /// synchronization window waits for the next destination edge.
    Arbitration,
    /// Token-ring FIFOs: no synchronization cost while the FIFO is
    /// neither full nor empty; a transfer into an empty queue still pays
    /// the window before the consumer can see it.
    TokenRing,
}

/// Full machine configuration. Defaults reproduce the paper's Table 1.
///
/// This is a passive parameter record in the C-struct spirit: all fields
/// are public, and [`SimConfig::default`] is the authoritative Table 1
/// instance (`repro table1` prints it).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Voltage/frequency operating range and step table
    /// (250 MHz–1.0 GHz, 0.65–1.20 V, 320 steps).
    pub vf_curve: VfCurve,
    /// DVFS transition semantics (XScale-style by default).
    pub dvfs_style: DvfsStyle,
    /// Queue-signal sampling period (250 MHz ⇒ 4 ns).
    pub sample_period: TimePs,
    /// Clock-jitter standard deviation; edges are clamped to ±3σ (±10 ps).
    pub jitter_sigma_ps: f64,
    /// Inter-domain synchronization window (300 ps).
    pub sync_window: TimePs,
    /// Synchronization interface family.
    pub sync_model: SyncModel,
    /// Fetch/decode width (instructions per front-end cycle).
    pub decode_width: u32,
    /// Per-domain issue width (instructions per back-end cycle).
    pub issue_width: u32,
    /// Retire width (instructions per front-end cycle).
    pub retire_width: u32,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// INT issue-queue capacity.
    pub int_queue: usize,
    /// FP issue-queue capacity.
    pub fp_queue: usize,
    /// LS queue capacity.
    pub ls_queue: usize,
    /// Physical integer registers.
    pub int_regs: usize,
    /// Physical floating-point registers.
    pub fp_regs: usize,
    /// Number of integer ALUs.
    pub int_alus: u32,
    /// Number of integer multiplier/divider units.
    pub int_muls: u32,
    /// Number of FP ALUs.
    pub fp_alus: u32,
    /// Number of FP multiply/divide/sqrt units.
    pub fp_muls: u32,
    /// Number of load/store ports.
    pub ls_ports: u32,
    /// L1 instruction cache size in bytes (64 KB, 2-way).
    pub l1i_bytes: usize,
    /// L1 instruction cache associativity.
    pub l1i_assoc: usize,
    /// L1 data cache size in bytes (64 KB, 2-way).
    pub l1d_bytes: usize,
    /// L1 data cache associativity.
    pub l1d_assoc: usize,
    /// Unified L2 size in bytes (1 MB, direct-mapped).
    pub l2_bytes: usize,
    /// L2 associativity (1 = direct-mapped).
    pub l2_assoc: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// L1 access latency in local cycles.
    pub l1_latency: u32,
    /// L2 access latency in LS-domain cycles.
    pub l2_latency: u32,
    /// Main-memory first-chunk latency (frequency independent).
    pub mem_first_chunk: TimePs,
    /// Main-memory inter-chunk latency (frequency independent).
    pub mem_inter_chunk: TimePs,
    /// Chunks per cache line transferred from memory.
    pub mem_chunks: u32,
    /// Branch-misprediction redirect penalty in front-end cycles (on top of
    /// waiting for the branch to resolve).
    pub mispredict_penalty: u32,
    /// Leakage-power scale (1.0 ≈ 0.18 µm technology; 0 disables static
    /// power; larger values model leakier processes).
    pub leakage_scale: f64,
    /// Master RNG seed for clock jitter.
    pub jitter_seed: u64,
    /// Record per-sample queue-occupancy traces (needed by the spectral
    /// analysis experiments; off by default to save memory).
    pub record_occupancy: bool,
    /// Record frequency traces (time, per-domain relative frequency).
    pub record_frequency: bool,
    /// Safety valve: abort if simulated time exceeds this bound.
    pub max_sim_time: TimePs,
    /// Debug/validation escape hatch: process every clock edge through the
    /// per-event path instead of sleeping domains through provably
    /// uneventful intervals (see `scheduler.rs`). Results are identical
    /// either way — the equivalence is property-tested — so this exists
    /// only to exercise the reference stepping path.
    pub cycle_stepping: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vf_curve: VfCurve::mcd_default(),
            dvfs_style: DvfsStyle::XScale,
            sample_period: TimePs::from_ns(4), // 250 MHz
            jitter_sigma_ps: 10.0 / 3.0,
            sync_window: TimePs::new(300),
            sync_model: SyncModel::Arbitration,
            decode_width: 4,
            issue_width: 6,
            retire_width: 11,
            rob_size: 80,
            int_queue: 20,
            fp_queue: 16,
            ls_queue: 16,
            int_regs: 72,
            fp_regs: 72,
            int_alus: 4,
            int_muls: 1,
            fp_alus: 2,
            fp_muls: 1,
            ls_ports: 2,
            l1i_bytes: 64 * 1024,
            l1i_assoc: 2,
            l1d_bytes: 64 * 1024,
            l1d_assoc: 2,
            l2_bytes: 1024 * 1024,
            l2_assoc: 1,
            line_bytes: 64,
            l1_latency: 2,
            l2_latency: 12,
            mem_first_chunk: TimePs::from_ns(80),
            mem_inter_chunk: TimePs::from_ns(2),
            mem_chunks: 4,
            mispredict_penalty: 7,
            leakage_scale: 1.0,
            jitter_seed: 0x5eed,
            record_occupancy: false,
            record_frequency: false,
            max_sim_time: TimePs::from_us(2_000_000), // 2 s of simulated time
            cycle_stepping: false,
        }
    }
}

impl SimConfig {
    /// Structural validation: every width, capacity and latency the
    /// engine divides by or indexes with must be usable. Returns the
    /// first problem found, phrased for an error report.
    ///
    /// [`crate::Machine::try_new`] calls this, so a malformed
    /// configuration surfaces as [`SimError::InvalidConfig`] instead of a
    /// panic deep inside construction or the run loop.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |why: String| Err(SimError::InvalidConfig(why));
        if self.decode_width == 0 || self.issue_width == 0 || self.retire_width == 0 {
            return bad(format!(
                "pipeline widths must be positive (decode {}, issue {}, retire {})",
                self.decode_width, self.issue_width, self.retire_width
            ));
        }
        if self.rob_size == 0 {
            return bad("reorder buffer needs at least one entry".into());
        }
        if self.int_queue == 0 || self.fp_queue == 0 || self.ls_queue == 0 {
            return bad(format!(
                "issue queues need at least one entry (INT {}, FP {}, LS {})",
                self.int_queue, self.fp_queue, self.ls_queue
            ));
        }
        if self.int_regs == 0 || self.fp_regs == 0 {
            return bad("register files need at least one physical register".into());
        }
        if self.int_alus == 0 || self.fp_alus == 0 || self.ls_ports == 0 {
            return bad("each domain needs at least one functional unit/port".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return bad(format!(
                "cache line size must be a positive power of two, got {}",
                self.line_bytes
            ));
        }
        for (what, bytes, assoc) in [
            ("L1I", self.l1i_bytes, self.l1i_assoc),
            ("L1D", self.l1d_bytes, self.l1d_assoc),
            ("L2", self.l2_bytes, self.l2_assoc),
        ] {
            if assoc == 0 || bytes < self.line_bytes * assoc {
                return bad(format!(
                    "{what} cache of {bytes} B cannot hold {assoc} way(s) of {} B lines",
                    self.line_bytes
                ));
            }
        }
        if self.mem_chunks == 0 {
            return bad("memory transfers need at least one chunk per line".into());
        }
        if self.sample_period <= TimePs::ZERO {
            return bad("controller sample period must be positive".into());
        }
        if !self.jitter_sigma_ps.is_finite() || self.jitter_sigma_ps < 0.0 {
            return bad(format!(
                "jitter sigma must be finite and non-negative, got {}",
                self.jitter_sigma_ps
            ));
        }
        if !self.leakage_scale.is_finite() || self.leakage_scale < 0.0 {
            return bad(format!(
                "leakage scale must be finite and non-negative, got {}",
                self.leakage_scale
            ));
        }
        if self.max_sim_time <= TimePs::ZERO {
            return bad("max_sim_time must be positive (it is the livelock guard)".into());
        }
        Ok(())
    }

    /// Queue capacity of a back-end domain's interface queue.
    pub fn queue_capacity(&self, d: DomainId) -> usize {
        match d {
            DomainId::Int => self.int_queue,
            DomainId::Fp => self.fp_queue,
            DomainId::Ls => self.ls_queue,
            DomainId::FrontEnd => panic!("front end has no interface queue"),
        }
    }

    /// Enables occupancy and frequency trace recording (used by the Figure
    /// 7/8 experiments).
    pub fn with_traces(mut self) -> Self {
        self.record_occupancy = true;
        self.record_frequency = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::Frequency;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.vf_curve.min().frequency, Frequency::from_mhz(250.0));
        assert_eq!(c.vf_curve.max().frequency, Frequency::from_ghz(1.0));
        assert_eq!(c.sample_period, TimePs::from_ns(4));
        assert_eq!(c.sync_window.as_ps(), 300);
        assert_eq!(c.int_queue, 20);
        assert_eq!(c.fp_queue, 16);
        assert_eq!(c.ls_queue, 16);
        assert_eq!(c.rob_size, 80);
        assert_eq!(c.int_regs, 72);
        assert_eq!((c.decode_width, c.issue_width, c.retire_width), (4, 6, 11));
        assert_eq!(c.l1d_bytes, 65536);
        assert_eq!(c.l2_assoc, 1);
        assert_eq!(c.mem_first_chunk, TimePs::from_ns(80));
    }

    #[test]
    fn domain_indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for &d in &DomainId::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(DomainId::Int.backend_index(), 0);
        assert_eq!(DomainId::Ls.backend_index(), 2);
    }

    #[test]
    #[should_panic(expected = "not a back-end domain")]
    fn frontend_has_no_backend_index() {
        let _ = DomainId::FrontEnd.backend_index();
    }

    #[test]
    fn queue_capacity_lookup() {
        let c = SimConfig::default();
        assert_eq!(c.queue_capacity(DomainId::Int), 20);
        assert_eq!(c.queue_capacity(DomainId::Fp), 16);
        assert_eq!(c.queue_capacity(DomainId::Ls), 16);
    }

    #[test]
    fn with_traces_enables_recording() {
        let c = SimConfig::default().with_traces();
        assert!(c.record_occupancy && c.record_frequency);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", DomainId::Int), "INT");
        assert_eq!(format!("{}", DomainId::FrontEnd), "front-end");
    }
}
