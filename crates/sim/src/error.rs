//! Typed simulator errors.
//!
//! The constructors and run loop historically panicked on bad input; the
//! experiment harness needs to distinguish "this configuration can never
//! work" from "this run went off the rails" so a sweep can report one bad
//! run and keep going (DESIGN.md §7). The panicking entry points remain
//! as thin wrappers for callers that prefer to crash.

use mcd_power::TimePs;

/// Why a simulation could not be constructed or did not finish.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The [`crate::SimConfig`] fails structural validation (zero widths,
    /// empty queues, degenerate caches, …).
    InvalidConfig(String),
    /// The workload trace is unusable (no phases, zero instructions, …).
    InvalidWorkload(String),
    /// Simulated time exceeded `max_sim_time` before the pipeline drained
    /// — the livelock guard fired.
    Diverged {
        /// Simulated time when the guard fired.
        at: TimePs,
        /// Instructions retired by then.
        retired: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid simulator configuration: {why}"),
            SimError::InvalidWorkload(why) => write!(f, "invalid workload: {why}"),
            SimError::Diverged { at, retired } => write!(
                f,
                "simulation exceeded max_sim_time at {at} with {retired} retired — livelock?"
            ),
        }
    }
}

impl std::error::Error for SimError {}
