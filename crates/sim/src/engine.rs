//! The MCD machine: event loop, pipeline stages, and DVFS plumbing.

use std::collections::VecDeque;

use mcd_power::{
    ActivityEvent, DomainEnergyMeter, Energy, EnergyModel, LeakageModel, OpIndex, TimePs,
};
use mcd_workloads::{MicroOp, OpClass};

use crate::bpred::BranchPredictor;
use crate::cache::Cache;
use crate::clock::DomainClock;
use crate::config::{DomainId, SimConfig};
use crate::controller::{ControllerCtx, DvfsController, QueueSample};
use crate::error::SimError;
use crate::memory::MainMemory;
use crate::metrics::{FreqTracePoint, Metrics, StallCause};
use crate::queue::{IqEntry, IssueQueue};
use crate::regfile::FreeList;
use crate::result::{DomainResult, SimResult};
use crate::rob::{Rob, RobEntry};
use crate::scheduler::{self, DomainSlot, EventKind};
use crate::scoreboard::{AddrMap, SeqScoreboard};
use crate::trace::{CtrlEvent, NullSink, TraceEvent, TraceSink};

/// Sampling periods between cumulative queue-occupancy histogram
/// snapshots emitted to an enabled trace sink (≈16 µs of simulated time
/// at the Table 1 sampling rate).
const HIST_SNAPSHOT_SAMPLES: u64 = 4096;

/// Wake deadline meaning "no timed wake — only an explicit signal".
const NEVER: TimePs = TimePs::new(u64::MAX);

/// Minimum sleep window worth entering. A sleep/replay round trip has a
/// fixed cost (deadline computation, watch bookkeeping, replay-loop
/// hoisting); a wake deadline closer than this is cheaper to reach by
/// staying awake. Purely a wall-clock heuristic — sleeping is semantically
/// free either way, so the threshold cannot affect results — but it is a
/// deterministic function of simulation state, so runs remain reproducible
/// event for event.
const MIN_SLEEP: TimePs = TimePs::new(4_000);

/// A domain's scheduling state (see `scheduler.rs` for the event model).
///
/// An awake domain contributes its next clock edge to the event
/// population; a sleeping one contributes its wake deadline. Sleep is only
/// entered when every local edge up to the wake point is *provably*
/// uneventful — nothing to fetch/dispatch/retire for the front end,
/// nothing issuable for a back end — so the skipped edges can be replayed
/// in a closed loop (clock advance + energy accounting) with results
/// bit-identical to stepping through them.
#[derive(Debug, Clone, Copy)]
enum Sleep {
    Awake,
    /// Asleep until `wake_at`, or until an explicit signal (a watched
    /// completion, a queue enqueue, an issue that frees queue space, or a
    /// controller retarget), whichever comes first. `stall` is the front
    /// end's dispatch-stall cause, replayed into the stall counters for
    /// every skipped edge exactly as the stepping core counted them.
    Asleep {
        wake_at: TimePs,
        stall: Option<StallCause>,
    },
}

/// Where and when an instruction finished executing.
#[derive(Debug, Clone, Copy)]
struct Completion {
    at: TimePs,
    domain: DomainId,
}

impl Default for Completion {
    fn default() -> Self {
        Completion {
            at: TimePs::ZERO,
            domain: DomainId::FrontEnd,
        }
    }
}

/// A pool of identical functional units, each free again at a known time.
#[derive(Debug, Clone)]
struct FuPool {
    free_at: Vec<TimePs>,
}

impl FuPool {
    fn new(units: u32) -> Self {
        FuPool {
            free_at: vec![TimePs::ZERO; units as usize],
        }
    }

    /// Claims a free unit until `busy_until`; returns false if none free.
    fn try_issue(&mut self, now: TimePs, busy_until: TimePs) -> bool {
        if let Some(u) = self.free_at.iter_mut().find(|t| **t <= now) {
            *u = busy_until;
            true
        } else {
            false
        }
    }

    fn busy_count(&self, now: TimePs) -> usize {
        self.free_at.iter().filter(|&&t| t > now).count()
    }

    fn total(&self) -> usize {
        self.free_at.len()
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_seq(&self.free_at, |w, t| w.put_u64(t.as_ps()));
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let free_at: Vec<u64> = r.take_seq(|r| r.take_u64())?;
        if free_at.len() != self.free_at.len() {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "FU pool holds {} units, snapshot has {}",
                self.free_at.len(),
                free_at.len()
            )));
        }
        self.free_at = free_at.into_iter().map(TimePs::new).collect();
        Ok(())
    }
}

/// Execution latency of `class` in consumer-domain cycles, and whether the
/// unit pipelines (frees after one cycle) or blocks until completion.
fn latency_cycles(class: OpClass) -> (u32, bool) {
    match class {
        OpClass::IntAlu | OpClass::Branch => (1, true),
        OpClass::IntMul => (3, true),
        OpClass::FpAlu => (4, true),
        OpClass::FpMul => (4, true),
        OpClass::FpDiv => (12, false),
        // Loads/stores are priced by the memory hierarchy, not here.
        OpClass::Load | OpClass::Store => (1, true),
    }
}

/// The simulated MCD processor.
///
/// Construct with [`Machine::new`], optionally attach per-domain DVFS
/// controllers with [`Machine::with_controller`], then call
/// [`Machine::run`] to simulate until the trace is drained.
pub struct Machine<T> {
    cfg: SimConfig,
    now: TimePs,
    clocks: [DomainClock; 4],
    meters: [DomainEnergyMeter; 4],
    leakage: LeakageModel,
    controllers: [Option<Box<dyn DvfsController>>; 3],

    trace: T,
    trace_done: bool,
    fetch_buf: VecDeque<MicroOp>,
    fetch_stall_until: TimePs,
    pending_redirect: Option<u64>,

    rob: Rob,
    iqs: [IssueQueue; 3],
    int_regs: FreeList,
    fp_regs: FreeList,
    // Completion records live from issue to retirement, so the live keys
    // span at most a ROB's worth of sequence numbers — the window the
    // ring scoreboard is sized by. The store map is pruned at retirement
    // (see `retire`), bounding it the same way.
    completed: SeqScoreboard<Completion>,
    store_map: AddrMap,
    // Per-tick scratch reused across calls so the issue loop never
    // allocates; always left empty between ticks.
    issue_cand: Vec<(usize, IqEntry)>,
    issued_idx: Vec<usize>,

    int_alus: FuPool,
    int_muls: FuPool,
    fp_alus: FuPool,
    fp_muls: FuPool,
    ls_ports: FuPool,

    icache: Cache,
    dcache: Cache,
    l2: Cache,
    memory: MainMemory,
    bpred: BranchPredictor,

    next_sample: TimePs,
    metrics: Metrics,
    retired: u64,
    // Event-scheduling state: per-domain sleep slots, the producer
    // sequence numbers each sleeping domain is waiting on, and the
    // back-end queue the front end needs space in (if any).
    sleep: [Sleep; 4],
    watch: [Vec<u64>; 4],
    fe_iq_wait: Option<usize>,
    // Sleep-evaluation backoff: when an evaluation finds a wake deadline
    // too near to pay for the sleep/replay round trip, re-evaluating
    // before that deadline cannot reach a different conclusion, so the
    // evaluation itself is skipped until then.
    no_sleep_until: [TimePs; 4],
    // Controller-event scratch reused across samples so draining never
    // allocates in the steady state; always left empty between ticks.
    ctrl_events: Vec<CtrlEvent>,
    // Earliest unanswered deviation onset per backend domain and signal
    // (0 = occupancy, 1 = delta), for reaction-time measurement.
    onsets: [[Option<TimePs>; 2]; 3],
}

impl<T> std::fmt::Debug for Machine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("retired", &self.retired)
            .field("rob_len", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl<T: Iterator<Item = MicroOp>> Machine<T> {
    /// Builds a machine over `trace` with configuration `cfg`. All domains
    /// start at the maximum operating point with no controllers attached
    /// (the study's full-speed baseline).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`]; use
    /// [`Machine::try_new`] to handle that as a typed error.
    pub fn new(cfg: SimConfig, trace: T) -> Self {
        Self::try_new(cfg, trace).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible sibling of [`Machine::new`]: validates `cfg` first and
    /// returns [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_new(cfg: SimConfig, trace: T) -> Result<Self, SimError> {
        cfg.validate()?;
        let curve = cfg.vf_curve.clone();
        let max = curve.max_index();
        let model = EnergyModel::new(curve.max().voltage);
        let mk_clock = |i: usize| {
            DomainClock::new(
                curve.clone(),
                cfg.dvfs_style,
                max,
                cfg.jitter_sigma_ps,
                cfg.jitter_seed.wrapping_add(i as u64 * 0x9e37),
            )
        };
        let clocks = [mk_clock(0), mk_clock(1), mk_clock(2), mk_clock(3)];
        let meters = [
            DomainEnergyMeter::new(DomainId::FrontEnd.class(), model.clone()),
            DomainEnergyMeter::new(DomainId::Int.class(), model.clone()),
            DomainEnergyMeter::new(DomainId::Fp.class(), model.clone()),
            DomainEnergyMeter::new(DomainId::Ls.class(), model),
        ];
        Ok(Machine {
            now: TimePs::ZERO,
            clocks,
            meters,
            leakage: LeakageModel::new(curve.max().voltage).with_scale(cfg.leakage_scale),
            controllers: [None, None, None],
            trace,
            trace_done: false,
            fetch_buf: VecDeque::with_capacity(4 * cfg.decode_width as usize),
            fetch_stall_until: TimePs::ZERO,
            pending_redirect: None,
            rob: Rob::new(cfg.rob_size),
            iqs: [
                IssueQueue::new(cfg.int_queue),
                IssueQueue::new(cfg.fp_queue),
                IssueQueue::new(cfg.ls_queue),
            ],
            int_regs: FreeList::new(cfg.int_regs),
            fp_regs: FreeList::new(cfg.fp_regs),
            completed: SeqScoreboard::new(cfg.rob_size),
            store_map: AddrMap::new(),
            issue_cand: Vec::with_capacity(cfg.issue_width as usize),
            issued_idx: Vec::with_capacity(cfg.issue_width as usize),
            int_alus: FuPool::new(cfg.int_alus),
            int_muls: FuPool::new(cfg.int_muls),
            fp_alus: FuPool::new(cfg.fp_alus),
            fp_muls: FuPool::new(cfg.fp_muls),
            ls_ports: FuPool::new(cfg.ls_ports),
            icache: Cache::new(cfg.l1i_bytes, cfg.l1i_assoc, cfg.line_bytes),
            dcache: Cache::new(cfg.l1d_bytes, cfg.l1d_assoc, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line_bytes),
            memory: MainMemory::new(cfg.mem_first_chunk, cfg.mem_inter_chunk, cfg.mem_chunks),
            bpred: BranchPredictor::table1(),
            next_sample: cfg.sample_period,
            metrics: Metrics {
                occupancy_hist: [
                    vec![0; cfg.int_queue + 1],
                    vec![0; cfg.fp_queue + 1],
                    vec![0; cfg.ls_queue + 1],
                ],
                ..Metrics::default()
            },
            retired: 0,
            sleep: [Sleep::Awake; 4],
            watch: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            fe_iq_wait: None,
            no_sleep_until: [TimePs::ZERO; 4],
            ctrl_events: Vec::new(),
            onsets: [[None; 2]; 3],
            cfg,
        })
    }

    /// Parks `domain`'s clock at operating point `idx` before the run
    /// starts, instead of the default maximum. The domain begins the run
    /// already settled there — no initial max→target transition — which is
    /// what a pinned-frequency measurement (e.g. fitting the μ–f model of
    /// equation 9) needs: with the default start, a short run's mean
    /// frequency and throughput are contaminated by up to ~55 µs of
    /// regulator slew.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds the configured curve's maximum index.
    pub fn with_initial_operating_point(
        mut self,
        domain: DomainId,
        idx: mcd_power::OpIndex,
    ) -> Self {
        assert!(
            idx.0 <= self.cfg.vf_curve.max_index().0,
            "operating point {} out of range",
            idx.0
        );
        let i = domain.index();
        self.clocks[i] = DomainClock::new(
            self.cfg.vf_curve.clone(),
            self.cfg.dvfs_style,
            idx,
            self.cfg.jitter_sigma_ps,
            self.cfg.jitter_seed.wrapping_add(i as u64 * 0x9e37),
        );
        self
    }

    /// Attaches a DVFS controller to a back-end domain.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is the front end (which runs at fixed maximum
    /// speed, as in the paper's experiments).
    pub fn with_controller(
        mut self,
        domain: DomainId,
        controller: Box<dyn DvfsController>,
    ) -> Self {
        self.controllers[domain.backend_index()] = Some(controller);
        self
    }

    /// Builds one controller per back-end domain from `factory` and
    /// attaches them.
    pub fn with_controllers<F>(mut self, mut factory: F) -> Self
    where
        F: FnMut(DomainId) -> Box<dyn DvfsController>,
    {
        for &d in &DomainId::BACKEND {
            self.controllers[d.backend_index()] = Some(factory(d));
        }
        self
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Runs the machine until the trace is drained and the pipeline is
    /// empty, then returns the accumulated results.
    ///
    /// Equivalent to [`Machine::run_traced`] with a [`NullSink`]: the
    /// sink's disabled flag compiles the event-construction sites out of
    /// the sampling path, so this is exactly as fast as before the
    /// observability layer existed.
    ///
    /// # Panics
    ///
    /// Panics if simulated time exceeds `cfg.max_sim_time` (a livelock
    /// guard — a correct configuration always terminates).
    pub fn run(self) -> SimResult {
        self.run_traced(&mut NullSink)
    }

    /// Runs the machine, streaming [`TraceEvent`]s into `sink`.
    ///
    /// The result is bit-identical to [`Machine::run`] for any sink: the
    /// sink only observes, it never feeds back into simulation state.
    ///
    /// # Panics
    ///
    /// Panics if simulated time exceeds `cfg.max_sim_time` (a livelock
    /// guard — a correct configuration always terminates). Use
    /// [`Machine::try_run_traced`] to get that as [`SimError::Diverged`]
    /// instead.
    pub fn run_traced<S: TraceSink + ?Sized>(self, sink: &mut S) -> SimResult {
        self.try_run_traced(sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible sibling of [`Machine::run_traced`]: the livelock guard
    /// surfaces as [`SimError::Diverged`] instead of a panic, so a sweep
    /// harness can report one divergent run and keep going.
    pub fn try_run_traced<S: TraceSink + ?Sized>(
        mut self,
        sink: &mut S,
    ) -> Result<SimResult, SimError> {
        let done = self.try_advance_traced(u64::MAX, sink)?;
        debug_assert!(done, "no boundary can precede u64::MAX retirements");
        Ok(self.finish_traced(sink))
    }

    /// Advances the event loop until either the trace drains (`Ok(true)`)
    /// or at least `boundary` instructions have retired (`Ok(false)`,
    /// paused *between* events with no transient state in flight — the
    /// instant [`Machine::snapshot`] captures).
    ///
    /// Segmenting a run at any boundaries and resuming each segment (in
    /// the same machine or via snapshot/restore into a fresh one) is
    /// bit-identical to one uninterrupted run, including the order of
    /// events streamed into `sink`.
    pub fn try_advance_traced<S: TraceSink + ?Sized>(
        &mut self,
        boundary: u64,
        sink: &mut S,
    ) -> Result<bool, SimError> {
        while !(self.trace_done && self.fetch_buf.is_empty() && self.rob.is_empty()) {
            if self.retired >= boundary {
                return Ok(false);
            }
            let ev = scheduler::pick_next(self.next_sample, &self.domain_slots());
            if ev.time > self.cfg.max_sim_time {
                return Err(self.diverged());
            }
            self.metrics.events_processed += 1;
            match ev.kind {
                EventKind::Sample => self.tick_sample(sink),
                EventKind::Edge(DomainId::FrontEnd) => self.tick_frontend(),
                EventKind::Edge(d) => self.tick_backend(d),
                // A timed wake: replay the skipped edges strictly before
                // the deadline and rejoin the edge population (the first
                // edge at or past the deadline runs as a normal tick).
                EventKind::Wake(d) => self.wake_domain(d.index(), ev.time, false),
            }
        }
        Ok(true)
    }

    /// Settles end-of-run debts after [`Machine::try_advance_traced`]
    /// returned `Ok(true)` and builds the result.
    ///
    /// The event loop exits right after the front-end tick that drained
    /// the pipeline. Sleeping domains still owe their skipped edges
    /// strictly before that instant; edges at exactly the exit time rank
    /// after the front end and were never processed by the stepping core
    /// either.
    pub fn finish_traced<S: TraceSink + ?Sized>(mut self, sink: &mut S) -> SimResult {
        let t_exit = self.now;
        for i in 0..4 {
            self.wake_domain(i, t_exit, false);
        }
        // Final cumulative histogram snapshot, so every traced run ends
        // with the complete occupancy distribution per domain.
        if sink.enabled() {
            for &d in &DomainId::BACKEND {
                let bi = d.backend_index();
                sink.record(&TraceEvent::QueueHistogram {
                    at: self.now,
                    domain: d,
                    samples: self.metrics.samples,
                    counts: self.metrics.occupancy_hist[bi].clone(),
                });
            }
        }
        self.build_result()
    }

    // ----- event scheduling ---------------------------------------------

    /// The live event population for [`scheduler::pick_next`].
    fn domain_slots(&self) -> [DomainSlot; 4] {
        std::array::from_fn(|i| match self.sleep[i] {
            Sleep::Awake => DomainSlot::Edge(self.clocks[i].next_edge()),
            Sleep::Asleep { wake_at, .. } => DomainSlot::Wake(wake_at),
        })
    }

    /// The earliest wake deadline if *every* domain is asleep (capped at
    /// the divergence bound), or `None` while any domain is awake.
    fn sleep_horizon(&self) -> Option<TimePs> {
        let mut horizon = self.cfg.max_sim_time;
        for s in &self.sleep {
            match *s {
                Sleep::Awake => return None,
                Sleep::Asleep { wake_at, .. } => horizon = horizon.min(wake_at),
            }
        }
        Some(horizon)
    }

    /// Reproduces the stepping core's divergence point exactly: it
    /// processed every event with time within the bound before failing on
    /// the first minimum beyond it, so settle the sleepers' debt through
    /// the bound and report the true next-event time.
    fn diverged(&mut self) -> SimError {
        let max = self.cfg.max_sim_time;
        for i in 0..4 {
            self.wake_domain(i, max, true);
        }
        let mut at = self.next_sample;
        for c in &self.clocks {
            at = at.min(c.next_edge());
        }
        SimError::Diverged {
            at,
            retired: self.retired,
        }
    }

    /// Ends domain `di`'s sleep (no-op when awake): replays its skipped
    /// clock edges up to `limit` and returns it to the edge population.
    ///
    /// `inclusive` controls the edge exactly at `limit`. A waking signal
    /// raised by an event that *outranks* the sleeper at equal timestamps
    /// (a back-end issue waking the front end) must replay that edge too,
    /// because in event order it fired — blocked — before the signal.
    /// Signals from lower-ranked events (a front-end enqueue or a sample's
    /// retarget waking a back end) leave it pending as a live event.
    fn wake_domain(&mut self, di: usize, limit: TimePs, inclusive: bool) {
        let Sleep::Asleep { stall, .. } = self.sleep[di] else {
            return;
        };
        self.sleep[di] = Sleep::Awake;
        self.watch[di].clear();
        if di == DomainId::FrontEnd.index() {
            self.fe_iq_wait = None;
            self.replay_frontend(limit, inclusive, stall);
        } else {
            self.replay_backend(DomainId::ALL[di], limit, inclusive);
        }
    }

    /// Replays the front end's skipped edges: each is exactly the
    /// fully-blocked tick the stepping core executed — leakage, a
    /// zero-utilization cycle charge, and (with instructions waiting) one
    /// dispatch-stall count. Voltage and period are hoisted because the
    /// front end's regulator never retargets.
    fn replay_frontend(&mut self, limit: TimePs, inclusive: bool, stall: Option<StallCause>) {
        let di = DomainId::FrontEnd.index();
        let first = self.clocks[di].next_edge();
        if first > limit || (!inclusive && first == limit) {
            return;
        }
        let v = self.clocks[di].voltage_at(first);
        let period = self.clocks[di].cycles_to_time(1, first);
        let leak = self.leakage.energy(DomainId::FrontEnd.class(), period, v);
        loop {
            let e = self.clocks[di].next_edge();
            if e > limit || (!inclusive && e == limit) {
                break;
            }
            self.clocks[di].tick();
            self.meters[di].charge_leakage(leak);
            self.meters[di].charge_cycle(0.0, v);
            if let Some(cause) = stall {
                self.metrics.dispatch_stalls[cause.index()] += 1;
            }
            self.metrics.cycles_skipped += 1;
        }
    }

    /// Replays a back-end domain's skipped edges: clock advance, leakage,
    /// extreme-operating-point counters, and the cycle-energy charge at
    /// the (known, monotonically draining) functional-unit utilization.
    /// The regulator is settled across the whole window — sleep is never
    /// entered mid-transition and a retarget always wakes first — so the
    /// per-edge constants are hoisted.
    fn replay_backend(&mut self, d: DomainId, limit: TimePs, inclusive: bool) {
        let di = d.index();
        let bi = d.backend_index();
        let first = self.clocks[di].next_edge();
        if first > limit || (!inclusive && first == limit) {
            return;
        }
        debug_assert!(!self.clocks[di].regulator().is_transitioning(first));
        let v = self.clocks[di].voltage_at(first);
        let period = self.clocks[di].cycles_to_time(1, first);
        let leak = self.leakage.energy(d.class(), period, v);
        let target = self.clocks[di].regulator().target();
        let at_min = target.0 == 0;
        let at_max = target == self.cfg.vf_curve.max_index();
        loop {
            let e = self.clocks[di].next_edge();
            if e > limit || (!inclusive && e == limit) {
                break;
            }
            let edge = self.clocks[di].tick();
            self.meters[di].charge_leakage(leak);
            if at_min {
                self.metrics.fmin_cycles[bi] += 1;
            } else if at_max {
                self.metrics.fmax_cycles[bi] += 1;
            }
            debug_assert!(self.clocks[di].regulator().stall_until(edge).is_none());
            let (busy, total) = self.fu_usage(d, edge);
            self.meters[di].charge_cycle(busy as f64 / total as f64, v);
            self.metrics.cycles_skipped += 1;
        }
    }

    /// Wakes any sleeper watching producer `seq`, which completed during
    /// the back-end tick at `at`. The front end's replay is inclusive (its
    /// edge at `at` fired, blocked, before this back-end tick in event
    /// order); other back ends rank at their own index, and either way the
    /// new completion — strictly in the future — cannot change their edge
    /// at `at`, so exclusive replay keeps it as a live event.
    fn note_completion(&mut self, seq: u64, at: TimePs) {
        for di in 0..4 {
            if !self.watch[di].is_empty() && self.watch[di].contains(&seq) {
                self.wake_domain(di, at, di == DomainId::FrontEnd.index());
            }
        }
    }

    /// The synchronization penalty a result produced in `producer` pays
    /// before `consumer` may use it (the same rule as
    /// [`Machine::source_ready`]).
    fn sync_penalty(&self, producer: DomainId, consumer: DomainId) -> TimePs {
        match self.cfg.sync_model {
            crate::config::SyncModel::Arbitration if producer != consumer => self.cfg.sync_window,
            _ => TimePs::ZERO,
        }
    }

    /// Decides whether the front end can sleep after the tick at `edge`
    /// (`blocked` is that tick's dispatch obstacle, if any). It can when
    /// fetch, dispatch, and retirement are all durably blocked; the wake
    /// deadline is the earliest instant any of them can unblock, with
    /// unknown completion times covered by watches and full queues by an
    /// issue-space signal.
    fn maybe_sleep_frontend(&mut self, edge: TimePs, blocked: Option<StallCause>) {
        if self.cfg.cycle_stepping {
            return;
        }
        let di = DomainId::FrontEnd.index();
        if edge < self.no_sleep_until[di] {
            return;
        }
        let cap = 4 * self.cfg.decode_width as usize;
        let fetch_blocked = self.pending_redirect.is_some()
            || self.trace_done
            || self.fetch_buf.len() >= cap
            || edge < self.fetch_stall_until;
        if !fetch_blocked {
            return;
        }
        if !self.fetch_buf.is_empty() && blocked.is_none() {
            return;
        }
        if let Some(head) = self.rob.head() {
            // A ready head retires on the very next edge: stay awake.
            if self.source_ready(head.seq, edge, DomainId::FrontEnd) {
                return;
            }
        }
        let mut wake = NEVER;
        debug_assert!(self.watch[di].is_empty());
        let mut watch = std::mem::take(&mut self.watch[di]);
        {
            // Scoped so the closure's borrow of `watch` ends here.
            let mut track =
                |completed: &SeqScoreboard<Completion>, seq: u64| match completed.get(seq) {
                    Some(c) => Some(c.at + self.sync_penalty(c.domain, DomainId::FrontEnd)),
                    None => {
                        if !watch.contains(&seq) {
                            watch.push(seq);
                        }
                        None
                    }
                };
            if let Some(head) = self.rob.head() {
                if let Some(t) = track(&self.completed, head.seq) {
                    wake = wake.min(t);
                }
            }
            if let Some(bseq) = self.pending_redirect {
                if let Some(t) = track(&self.completed, bseq) {
                    wake = wake.min(t);
                }
            }
        }
        if self.pending_redirect.is_none() && !self.trace_done && edge < self.fetch_stall_until {
            wake = wake.min(self.fetch_stall_until);
        }
        let iq_wait = match blocked {
            Some(StallCause::IntQueueFull) => Some(0),
            Some(StallCause::FpQueueFull) => Some(1),
            Some(StallCause::LsQueueFull) => Some(2),
            _ => None,
        };
        // Defensive: never sleep with no wake source at all.
        if wake == NEVER && watch.is_empty() && iq_wait.is_none() {
            self.watch[di] = watch;
            return;
        }
        // Too-near wake: not worth the round trip (see `MIN_SLEEP`).
        if wake < edge + MIN_SLEEP {
            watch.clear();
            self.watch[di] = watch;
            self.no_sleep_until[di] = wake;
            return;
        }
        self.fe_iq_wait = iq_wait;
        self.watch[di] = watch;
        let stall = if self.fetch_buf.is_empty() {
            None
        } else {
            blocked
        };
        self.sleep[di] = Sleep::Asleep {
            wake_at: wake,
            stall,
        };
    }

    /// Decides whether back end `d` can sleep after an edge that issued
    /// nothing: computes the exact earliest instant any queued entry
    /// becomes ready. Entries gated on in-flight completions contribute a
    /// timed bound (readiness is fully determined by `visible_at` and
    /// completion times); entries gated on unissued producers register a
    /// watch. An empty queue sleeps on the enqueue signal alone.
    fn maybe_sleep_backend(&mut self, d: DomainId, edge: TimePs) {
        if self.cfg.cycle_stepping {
            return;
        }
        let di = d.index();
        if edge < self.no_sleep_until[di] {
            return;
        }
        if self.clocks[di].regulator().is_transitioning(edge) {
            return;
        }
        let bi = d.backend_index();
        let mut wake = NEVER;
        if !self.iqs[bi].is_empty() {
            debug_assert!(self.watch[di].is_empty());
            let mut watch = std::mem::take(&mut self.watch[di]);
            {
                let completed = &self.completed;
                let retired = self.retired;
                let sync_model = self.cfg.sync_model;
                let sync_window = self.cfg.sync_window;
                for e in self.iqs[bi].iter_mut() {
                    match Self::entry_ready_time(completed, retired, sync_model, sync_window, d, e)
                    {
                        // Fully-known producers: an exact, monotone bound.
                        Some(r) => wake = wake.min(r),
                        // Some producer is unissued: watch it instead.
                        None => {
                            for src in e.op.sources().chain(e.mem_dep) {
                                if src >= retired
                                    && completed.get(src).is_none()
                                    && !watch.contains(&src)
                                {
                                    watch.push(src);
                                }
                            }
                        }
                    }
                }
            }
            // Too-near wake: not worth the round trip (see `MIN_SLEEP`).
            if wake < edge + MIN_SLEEP {
                watch.clear();
                self.watch[di] = watch;
                self.no_sleep_until[di] = wake;
                return;
            }
            self.watch[di] = watch;
        }
        self.sleep[di] = Sleep::Asleep {
            wake_at: wake,
            stall: None,
        };
    }

    /// Busy and total functional units of `d` at `now` (cycle-energy
    /// utilization).
    fn fu_usage(&self, d: DomainId, now: TimePs) -> (usize, usize) {
        match d {
            DomainId::Int => (
                self.int_alus.busy_count(now) + self.int_muls.busy_count(now),
                self.int_alus.total() + self.int_muls.total(),
            ),
            DomainId::Fp => (
                self.fp_alus.busy_count(now) + self.fp_muls.busy_count(now),
                self.fp_alus.total() + self.fp_muls.total(),
            ),
            DomainId::Ls => (self.ls_ports.busy_count(now), self.ls_ports.total()),
            DomainId::FrontEnd => unreachable!("front end handled separately"),
        }
    }

    // ----- readiness ---------------------------------------------------

    /// Whether producer `src`'s result is usable at time `t` by an op in
    /// `consumer`.
    fn source_ready(&self, src: u64, t: TimePs, consumer: DomainId) -> bool {
        if src < self.retired {
            return true; // architecturally committed long ago
        }
        match self.completed.get(src) {
            None => false,
            Some(c) => {
                let cross = c.domain != consumer;
                let penalty = match self.cfg.sync_model {
                    // Arbitration checks every cross-domain transfer
                    // against the synchronization window.
                    crate::config::SyncModel::Arbitration if cross => self.cfg.sync_window,
                    // Token-ring FIFOs forward results without a
                    // synchronization check while the ring is flowing.
                    _ => TimePs::ZERO,
                };
                c.at + penalty <= t
            }
        }
    }

    /// The exact instant entry `e` becomes issue-ready, if every producer
    /// is already completion-tracked — `None` while any producer is still
    /// unissued. Caches the computed instant on the entry (see
    /// [`IqEntry::ready_hint`]); an entry is ready at `t` iff this returns
    /// `Some(r)` with `r <= t`.
    ///
    /// A free function over the borrowed pieces (not `&self`) so the scan
    /// can hold `&mut` entries of one queue while reading the scoreboard.
    fn entry_ready_time(
        completed: &SeqScoreboard<Completion>,
        retired: u64,
        sync_model: crate::config::SyncModel,
        sync_window: TimePs,
        consumer: DomainId,
        e: &mut IqEntry,
    ) -> Option<TimePs> {
        if e.ready_hint.is_some() {
            return e.ready_hint;
        }
        let mut ready_at = e.visible_at;
        for src in e.op.sources().chain(e.mem_dep) {
            if src < retired {
                continue; // architecturally committed long ago
            }
            let c = completed.get(src)?;
            let penalty = match sync_model {
                // Arbitration checks every cross-domain transfer against
                // the synchronization window; token-ring FIFOs forward
                // results without one while the ring is flowing.
                crate::config::SyncModel::Arbitration if c.domain != consumer => sync_window,
                _ => TimePs::ZERO,
            };
            ready_at = ready_at.max(c.at + penalty);
        }
        e.ready_hint = Some(ready_at);
        Some(ready_at)
    }

    // ----- back-end domains ---------------------------------------------

    fn tick_backend(&mut self, d: DomainId) {
        let di = d.index();
        let bi = d.backend_index();
        let edge = self.clocks[di].tick();
        self.now = edge;
        let v = self.clocks[di].voltage_at(edge);
        // Static power accrues per local period; at lower frequency the
        // periods lengthen, so leakage energy tracks wall-clock time.
        let period = self.clocks[di].cycles_to_time(1, edge);
        self.meters[di].charge_leakage(self.leakage.energy(d.class(), period, v));

        // Range-saturation accounting: cycles the domain spends settled
        // at the extremes of the operating range (where the controller
        // has no headroom left in that direction).
        let reg = self.clocks[di].regulator();
        if !reg.is_transitioning(edge) {
            let target = reg.target();
            if target.0 == 0 {
                self.metrics.fmin_cycles[bi] += 1;
            } else if target == self.cfg.vf_curve.max_index() {
                self.metrics.fmax_cycles[bi] += 1;
            }
        }

        // Transmeta-style transitions stall the whole domain.
        if self.clocks[di].regulator().stall_until(edge).is_some() {
            self.meters[di].charge_cycle(0.0, v);
            return;
        }

        // Idle fast path: with nothing queued there is nothing to select
        // or issue — only the cycle-energy accounting below still applies
        // (units can stay busy from earlier multi-cycle issues).
        let mut issued_any = false;
        let mut struct_fail = false;
        if !self.iqs[bi].is_empty() {
            // Select ready entries in age order, bounded by issue width.
            // The single scan records each candidate's index *and* a copy
            // of the entry, so the issue loop below never re-walks the
            // queue (previously an O(width × occupancy) `iter().nth`
            // per candidate). The scratch vectors are reused across
            // ticks to keep this loop allocation-free.
            let width = self.cfg.issue_width as usize;
            let mut candidates = std::mem::take(&mut self.issue_cand);
            {
                let completed = &self.completed;
                let retired = self.retired;
                let sync_model = self.cfg.sync_model;
                let sync_window = self.cfg.sync_window;
                for (i, e) in self.iqs[bi].iter_mut().enumerate() {
                    if candidates.len() >= width {
                        break;
                    }
                    let ready =
                        Self::entry_ready_time(completed, retired, sync_model, sync_window, d, e);
                    if ready.is_some_and(|r| r <= edge) {
                        candidates.push((i, *e));
                    }
                }
            }

            // Try to claim functional units and compute completion times.
            let mut issued = std::mem::take(&mut self.issued_idx);
            for &(idx, entry) in &candidates {
                let op = entry.op;
                let (lat, pipelined) = latency_cycles(op.class);
                let lat_time = self.clocks[di].cycles_to_time(lat, edge);
                let one_cycle = self.clocks[di].cycles_to_time(1, edge);

                let (pool, completion): (&mut FuPool, TimePs) = match op.class {
                    OpClass::IntAlu | OpClass::Branch => (&mut self.int_alus, edge + lat_time),
                    OpClass::IntMul => (&mut self.int_muls, edge + lat_time),
                    OpClass::FpAlu => (&mut self.fp_alus, edge + lat_time),
                    OpClass::FpMul | OpClass::FpDiv => (&mut self.fp_muls, edge + lat_time),
                    OpClass::Load | OpClass::Store => (&mut self.ls_ports, edge + lat_time),
                };
                let busy_until = if pipelined {
                    edge + one_cycle
                } else {
                    completion
                };
                if !pool.try_issue(edge, busy_until) {
                    // A ready entry denied by a structural hazard keeps the
                    // domain awake: readiness alone no longer predicts the
                    // next issue, so the next edge must re-evaluate.
                    struct_fail = true;
                    continue; // structural hazard; try younger ops
                }

                // Memory ops get their real completion from the hierarchy.
                let completion = if op.class.is_mem() {
                    self.execute_mem(&op, edge, v)
                } else {
                    self.charge_exec_energy(op.class, di, v);
                    completion
                };
                self.meters[di].charge_event(ActivityEvent::Issue, v);
                self.completed.insert(
                    op.seq,
                    Completion {
                        at: completion,
                        domain: d,
                    },
                );
                // A sleeper watching this producer now has a known wake
                // bound; settle its debt through the present.
                self.note_completion(op.seq, edge);
                issued.push(idx);
            }
            self.iqs[bi].remove_issued(&issued);
            issued_any = !issued.is_empty();
            candidates.clear();
            issued.clear();
            self.issue_cand = candidates;
            self.issued_idx = issued;
        }

        // Cycle energy at the fraction of busy units.
        let (busy, total) = self.fu_usage(d, edge);
        self.meters[di].charge_cycle(busy as f64 / total as f64, v);

        // Issuing from this queue frees the space a sleeping front end may
        // be blocked on. Inclusive: the front end's edge at `edge` outranks
        // this one and fired — still blocked — before the issue.
        if issued_any && self.fe_iq_wait == Some(bi) {
            self.wake_domain(DomainId::FrontEnd.index(), edge, true);
        }

        if !issued_any && !struct_fail {
            self.maybe_sleep_backend(d, edge);
        }
    }

    fn charge_exec_energy(&mut self, class: OpClass, di: usize, v: mcd_power::Voltage) {
        let ev = match class {
            OpClass::IntAlu | OpClass::Branch => ActivityEvent::IntAlu,
            OpClass::IntMul => ActivityEvent::IntMul,
            OpClass::FpAlu => ActivityEvent::FpAlu,
            OpClass::FpMul => ActivityEvent::FpMul,
            OpClass::FpDiv => ActivityEvent::FpDiv,
            OpClass::Load | OpClass::Store => return,
        };
        self.meters[di].charge_event(ev, v);
        // Register traffic: two reads, one write (when a value is produced).
        self.meters[di].charge_events(ActivityEvent::RegRead, 2, v);
        if class.produces_value() {
            self.meters[di].charge_event(ActivityEvent::RegWrite, v);
        }
    }

    /// Executes a load/store against the cache hierarchy; returns its
    /// completion time and charges LS-domain energy.
    fn execute_mem(&mut self, op: &MicroOp, edge: TimePs, v: mcd_power::Voltage) -> TimePs {
        let di = DomainId::Ls.index();
        let addr = op.addr.expect("memory op carries an address");
        self.meters[di].charge_event(ActivityEvent::LsqAccess, v);
        self.meters[di].charge_event(ActivityEvent::L1DAccess, v);
        let l1_time = self.clocks[di].cycles_to_time(self.cfg.l1_latency, edge);

        if op.class == OpClass::Store {
            // Stores drain through a write buffer: one port cycle, cache
            // line allocated on the spot (write-allocate, no stall).
            self.dcache.access(addr);
            return edge + self.clocks[di].cycles_to_time(1, edge);
        }

        if self.dcache.access(addr) {
            return edge + l1_time;
        }
        self.meters[di].charge_event(ActivityEvent::L2Access, v);
        let l2_time = self.clocks[di].cycles_to_time(self.cfg.l2_latency, edge);
        if self.l2.access(addr) {
            return edge + l1_time + l2_time;
        }
        self.meters[di].charge_event(ActivityEvent::MemAccess, v);
        // Off-chip: frequency-independent latency after the on-chip lookups.
        self.memory.access(edge + l1_time + l2_time)
    }

    // ----- front end ----------------------------------------------------

    fn tick_frontend(&mut self) {
        let di = DomainId::FrontEnd.index();
        let edge = self.clocks[di].tick();
        self.now = edge;
        let v = self.clocks[di].voltage_at(edge);
        let period = self.clocks[di].cycles_to_time(1, edge);
        self.meters[di].charge_leakage(self.leakage.energy(DomainId::FrontEnd.class(), period, v));

        let retired_now = self.retire(edge, v);

        // A resolved mispredicted branch redirects fetch after the penalty.
        if let Some(bseq) = self.pending_redirect {
            if self.source_ready(bseq, edge, DomainId::FrontEnd) {
                self.pending_redirect = None;
                self.fetch_stall_until =
                    edge + self.clocks[di].cycles_to_time(self.cfg.mispredict_penalty, edge);
            }
        }

        let fetched_now = self.fetch(edge, v);
        let (dispatched_now, blocked) = self.dispatch(edge, v);

        let width = self.cfg.decode_width as f64;
        let util = (fetched_now as f64 + dispatched_now as f64 + retired_now as f64)
            / (2.0 * width + self.cfg.retire_width as f64);
        self.meters[di].charge_cycle(util.min(1.0), v);

        self.maybe_sleep_frontend(edge, blocked);
    }

    fn retire(&mut self, edge: TimePs, v: mcd_power::Voltage) -> u32 {
        let mut retired_now = 0;
        while retired_now < self.cfg.retire_width {
            let Some(head) = self.rob.head() else { break };
            let seq = head.seq;
            if !self.source_ready(seq, edge, DomainId::FrontEnd) {
                break;
            }
            let entry = self.rob.retire_head();
            if entry.holds_int_reg() {
                self.int_regs.release();
            } else if entry.holds_fp_reg() {
                self.fp_regs.release();
            }
            self.completed.remove(seq);
            // A committing store leaves the in-flight window: drop its
            // store-map entry (unless a younger store already took over
            // the address) so the map tracks the pipeline, not the whole
            // address footprint. Observably free: a load depending on a
            // retired store sees `seq < retired` and is ready instantly,
            // exactly as if the entry were still present.
            if let Some(addr) = entry.addr {
                self.store_map.remove_if(addr, seq);
            }
            self.retired += 1;
            retired_now += 1;
            self.meters[DomainId::FrontEnd.index()].charge_event(ActivityEvent::Commit, v);
        }
        retired_now
    }

    fn fetch(&mut self, edge: TimePs, v: mcd_power::Voltage) -> u32 {
        if self.pending_redirect.is_some() || edge < self.fetch_stall_until || self.trace_done {
            return 0;
        }
        let di = DomainId::FrontEnd.index();
        let cap = 4 * self.cfg.decode_width as usize;
        let mut fetched = 0;
        while fetched < self.cfg.decode_width && self.fetch_buf.len() < cap {
            let Some(op) = self.trace.next() else {
                self.trace_done = true;
                break;
            };
            self.meters[di].charge_event(ActivityEvent::Fetch, v);

            // Instruction-cache lookup; a miss stalls subsequent fetch.
            if !self.icache.access(op.pc) {
                self.meters[di].charge_event(ActivityEvent::L2Access, v);
                let stall = if self.l2.access(op.pc) {
                    self.clocks[di].cycles_to_time(self.cfg.l2_latency, edge)
                } else {
                    self.meters[di].charge_event(ActivityEvent::MemAccess, v);
                    self.memory.access(edge) - edge
                };
                self.fetch_stall_until = edge + stall;
                self.fetch_buf.push_back(op);
                fetched += 1;
                break;
            }

            if op.class == OpClass::Branch {
                self.meters[di].charge_event(ActivityEvent::BpredLookup, v);
                let pred = self.bpred.predict(op.pc);
                self.meters[di].charge_event(ActivityEvent::BpredUpdate, v);
                let correct = self.bpred.update(op.pc, pred, op.taken);
                let seq = op.seq;
                self.fetch_buf.push_back(op);
                fetched += 1;
                if !correct {
                    // No wrong-path execution in trace-driven mode: model
                    // the bubble by freezing fetch until the branch
                    // resolves, plus the redirect penalty. The wrong-path
                    // instructions a real front end would have fetched and
                    // decoded before the redirect still cost energy.
                    let wrong_path = (self.cfg.mispredict_penalty * self.cfg.decode_width) as u64;
                    self.meters[di].charge_events(ActivityEvent::Fetch, wrong_path, v);
                    self.meters[di].charge_events(ActivityEvent::DecodeRename, wrong_path, v);
                    self.pending_redirect = Some(seq);
                    break;
                }
                continue;
            }
            self.fetch_buf.push_back(op);
            fetched += 1;
        }
        fetched
    }

    /// Returns the dispatch count and the obstacle that ended the scan (if
    /// any) — the latter feeds the front end's sleep evaluation.
    fn dispatch(&mut self, edge: TimePs, v: mcd_power::Voltage) -> (u32, Option<StallCause>) {
        let di = DomainId::FrontEnd.index();
        let mut dispatched = 0;
        let mut blocked: Option<StallCause> = None;
        while dispatched < self.cfg.decode_width {
            let Some(&op) = self.fetch_buf.front() else {
                break;
            };
            if self.rob.is_full() {
                blocked = Some(StallCause::RobFull);
                break;
            }
            let target = op.class.domain();
            let bi = match target {
                mcd_workloads::ExecDomain::Integer => 0,
                mcd_workloads::ExecDomain::FloatingPoint => 1,
                mcd_workloads::ExecDomain::LoadStore => 2,
            };
            if self.iqs[bi].is_full() {
                blocked = Some(match bi {
                    0 => StallCause::IntQueueFull,
                    1 => StallCause::FpQueueFull,
                    _ => StallCause::LsQueueFull,
                });
                break;
            }
            // Rename: claim a physical register for value producers
            // (exactly one space per op, so a failed claim leaks nothing).
            let needs_fp = op.class.produces_value() && op.class.is_fp();
            let needs_int = op.class.produces_value() && !op.class.is_fp();
            if needs_int && !self.int_regs.try_alloc() {
                blocked = Some(StallCause::IntRegs);
                break;
            }
            if needs_fp && !self.fp_regs.try_alloc() {
                blocked = Some(StallCause::FpRegs);
                break;
            }

            self.fetch_buf.pop_front();
            self.rob.push(RobEntry {
                seq: op.seq,
                class: op.class,
                addr: (op.class == OpClass::Store).then_some(op.addr).flatten(),
            });
            let mem_dep = match op.class {
                OpClass::Load => op
                    .addr
                    .and_then(|a| self.store_map.get(a))
                    .filter(|&s| s < op.seq),
                _ => None,
            };
            if op.class == OpClass::Store {
                let a = op.addr.expect("store carries an address");
                self.store_map.insert(a, op.seq);
            }
            // An enqueue is the signal an empty-queue sleeper waits on.
            // Wake it *before* reading its clock below: the sync-stall
            // comparison needs the consumer's true next edge. Exclusive —
            // the consumer's edge at this instant ranks after the front
            // end's and stays a live event.
            if !matches!(self.sleep[1 + bi], Sleep::Awake) {
                self.wake_domain(1 + bi, edge, false);
            }
            let visible_at = match self.cfg.sync_model {
                // Arbitration: every enqueue synchronizes across the
                // boundary before the consumer may observe it.
                crate::config::SyncModel::Arbitration => edge + self.cfg.sync_window,
                // Token-ring: only an enqueue into an empty FIFO pays the
                // window (the ring must restart); otherwise entries flow
                // behind their predecessors for free.
                crate::config::SyncModel::TokenRing => {
                    if self.iqs[bi].is_empty() {
                        edge + self.cfg.sync_window
                    } else {
                        edge
                    }
                }
            };
            // A synchronization stall: the window pushed visibility past
            // the consumer's next clock edge, costing it (at least) one
            // issue opportunity.
            if visible_at > self.clocks[1 + bi].next_edge() {
                self.metrics.sync_enqueues[bi] += 1;
            }
            self.iqs[bi].push(IqEntry {
                op,
                visible_at,
                mem_dep,
                ready_hint: None,
            });
            self.meters[di].charge_event(ActivityEvent::DecodeRename, v);
            self.meters[di].charge_event(ActivityEvent::Dispatch, v);
            dispatched += 1;
        }
        // A fully-blocked cycle with work waiting is a dispatch stall.
        if dispatched == 0 {
            if let Some(cause) = blocked {
                self.metrics.dispatch_stalls[cause.index()] += 1;
            }
        }
        (dispatched, blocked)
    }

    // ----- sampling & DVFS ------------------------------------------------

    fn tick_sample<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        let t = self.next_sample;
        self.now = t;
        self.next_sample = t + self.cfg.sample_period;
        self.metrics.samples += 1;

        // Sample batching: with every domain asleep and no per-sample
        // observer attached (controllers, traces, an enabled sink), a
        // sample's only effect is the always-on occupancy accounting of a
        // *frozen* queue state — so all samples up to the earliest wake
        // deadline collapse into closed-form bulk adds.
        if !self.cfg.cycle_stepping
            && !sink.enabled()
            && !self.cfg.record_occupancy
            && !self.cfg.record_frequency
            && self.controllers.iter().all(|c| c.is_none())
        {
            if let Some(horizon) = self.sleep_horizon() {
                let p = self.cfg.sample_period;
                if horizon >= t + p {
                    let k = (horizon - t).as_ps() / p.as_ps() + 1;
                    self.metrics.samples += k - 1;
                    self.metrics.cycles_skipped += k - 1;
                    for &d in &DomainId::BACKEND {
                        let bi = d.backend_index();
                        let occupancy = self.iqs[bi].len() as u64;
                        self.metrics.occupancy_sum[bi] += occupancy * k;
                        let hist = &mut self.metrics.occupancy_hist[bi];
                        let slot = (occupancy as usize).min(hist.len() - 1);
                        hist[slot] += k;
                    }
                    self.now = t + p * (k - 1);
                    self.next_sample = t + p * k;
                    return;
                }
            }
        }

        let f_max = self.cfg.vf_curve.max().frequency;
        if self.cfg.record_frequency {
            self.metrics.retired_trace.push(self.retired);
        }
        for &d in &DomainId::BACKEND {
            let di = d.index();
            let bi = d.backend_index();
            let occupancy = self.iqs[bi].len() as u32;
            self.metrics.occupancy_sum[bi] += occupancy as u64;
            {
                let hist = &mut self.metrics.occupancy_hist[bi];
                let slot = (occupancy as usize).min(hist.len() - 1);
                hist[slot] += 1;
            }
            if self.cfg.record_occupancy {
                self.metrics.occupancy[bi].push(occupancy.min(u8::MAX as u32) as u8);
            }
            if self.cfg.record_frequency {
                let rel = self.clocks[di].frequency_at(t).relative_to(f_max);
                self.metrics.frequency[bi].push(FreqTracePoint {
                    time: t,
                    rel_freq: rel,
                });
            }

            let current = self.clocks[di].regulator().target();
            let in_transition = self.clocks[di].regulator().is_transitioning(t);
            let single_step_time = self.clocks[di].regulator().single_step_time();
            let mut action = None;
            let mut events = std::mem::take(&mut self.ctrl_events);
            if let Some(ctrl) = self.controllers[bi].as_mut() {
                let ctx = ControllerCtx {
                    now: t,
                    domain: d,
                    current,
                    curve: &self.cfg.vf_curve,
                    in_transition,
                    single_step_time,
                    sample_period: self.cfg.sample_period,
                    retired: self.retired,
                };
                let sample = QueueSample {
                    occupancy,
                    capacity: self.iqs[bi].capacity() as u32,
                };
                action = ctrl.on_sample(&ctx, sample);
                ctrl.drain_events(&mut events);
            }
            // Observe decision events *before* applying the action, so a
            // relay that fires the same sample its window was entered
            // still has its onset on record for reaction timing.
            for ev in &events {
                self.observe_ctrl_event(bi, d, ev, sink);
            }
            events.clear();
            self.ctrl_events = events;

            if let Some(action) = action {
                let target = action.resolve(current, &self.cfg.vf_curve);
                if target != current {
                    // Retargeting invalidates a sleeper's hoisted operating
                    // point: settle its debt at the old settled point first.
                    // Exclusive — its edge at `t` ranks after the sample.
                    self.wake_domain(di, t, false);
                    self.clocks[di].regulator_mut().request(target, t);
                    self.metrics.dvfs_actions[bi] += 1;
                    self.note_freq_step(t, d, current, target, sink);
                }
            }
        }

        if sink.enabled() && self.metrics.samples.is_multiple_of(HIST_SNAPSHOT_SAMPLES) {
            for &d in &DomainId::BACKEND {
                let bi = d.backend_index();
                sink.record(&TraceEvent::QueueHistogram {
                    at: t,
                    domain: d,
                    samples: self.metrics.samples,
                    counts: self.metrics.occupancy_hist[bi].clone(),
                });
            }
        }
    }

    /// Folds one controller decision event into the always-on counters
    /// and (when the sink is enabled) forwards it as a trace event.
    fn observe_ctrl_event<S: TraceSink + ?Sized>(
        &mut self,
        bi: usize,
        d: DomainId,
        ev: &CtrlEvent,
        sink: &mut S,
    ) {
        match *ev {
            CtrlEvent::WindowEnter { at, signal, .. } => {
                let slot = &mut self.onsets[bi][signal.index()];
                if slot.is_none() {
                    *slot = Some(at);
                }
            }
            CtrlEvent::WindowExit { signal, .. } => {
                self.onsets[bi][signal.index()] = None;
            }
            CtrlEvent::RelayArm { .. } => self.metrics.relay_arms[bi] += 1,
            CtrlEvent::RelayFire { .. } => self.metrics.relay_fires[bi] += 1,
            CtrlEvent::RelayReset { .. } => self.metrics.relay_resets[bi] += 1,
        }
        if sink.enabled() {
            sink.record(&TraceEvent::Controller {
                domain: d,
                event: *ev,
            });
        }
    }

    /// Accounts for an applied frequency retarget: step direction
    /// counters, reaction time from the earliest pending deviation onset,
    /// and (when enabled) a [`TraceEvent::FreqStep`].
    fn note_freq_step<S: TraceSink + ?Sized>(
        &mut self,
        t: TimePs,
        d: DomainId,
        from: OpIndex,
        to: OpIndex,
        sink: &mut S,
    ) {
        let bi = d.backend_index();
        if to.0 > from.0 {
            self.metrics.freq_steps_up[bi] += 1;
        } else {
            self.metrics.freq_steps_down[bi] += 1;
        }
        let onset = match (self.onsets[bi][0], self.onsets[bi][1]) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(on) = onset {
            self.metrics.reaction_sum_ps[bi] += (t - on).as_ps();
            self.metrics.reaction_count[bi] += 1;
            self.onsets[bi] = [None, None];
        }
        if sink.enabled() {
            let curve = &self.cfg.vf_curve;
            sink.record(&TraceEvent::FreqStep {
                at: t,
                domain: d,
                from,
                to,
                from_mhz: curve.point(from).frequency.as_mhz(),
                to_mhz: curve.point(to).frequency.as_mhz(),
                from_mv: curve.point(from).voltage.as_mv(),
                to_mv: curve.point(to).voltage.as_mv(),
            });
        }
    }

    // ----- results ---------------------------------------------------------

    fn build_result(mut self) -> SimResult {
        for &d in &DomainId::BACKEND {
            self.metrics.transition_time_ps[d.backend_index()] = self.clocks[d.index()]
                .regulator()
                .total_transition_time(self.now)
                .as_ps();
        }
        let f_max_hz = self.cfg.vf_curve.max().frequency.as_hz() as f64;
        let secs = self.now.as_secs();
        let mut domains = Vec::with_capacity(4);
        let mut regulator_energy = Energy::ZERO;
        for &d in &DomainId::ALL {
            let di = d.index();
            let cycles = self.clocks[di].edges();
            let mean_rel_freq = if secs > 0.0 {
                cycles as f64 / (secs * f_max_hz)
            } else {
                0.0
            };
            regulator_energy += self.clocks[di].regulator().switching_energy();
            domains.push(DomainResult {
                domain: d,
                cycles,
                energy: *self.meters[di].breakdown(),
                mean_rel_freq,
                transitions: self.clocks[di].regulator().transitions_started(),
            });
        }
        SimResult {
            instructions: self.retired,
            sim_time: self.now,
            domains,
            regulator_energy,
            metrics: self.metrics,
            queue_peaks: [self.iqs[0].peak(), self.iqs[1].peak(), self.iqs[2].peak()],
            l1d_miss_rate: self.dcache.miss_rate(),
            l2_miss_rate: self.l2.miss_rate(),
            mispredict_rate: self.bpred.mispredict_rate(),
        }
    }
}

impl<T: Iterator<Item = MicroOp> + crate::snapshot::SnapshotSource> Machine<T> {
    /// Serializes the machine's complete evolving state (see
    /// [`crate::snapshot`] for the format). Must be called between events
    /// — i.e. on a machine paused by [`Machine::try_advance_traced`] or
    /// never run — when the per-tick scratch buffers are empty.
    pub fn snapshot(&self) -> Vec<u8> {
        debug_assert!(self.issue_cand.is_empty(), "snapshot mid-tick");
        debug_assert!(self.issued_idx.is_empty(), "snapshot mid-tick");
        debug_assert!(self.ctrl_events.is_empty(), "snapshot mid-sample");
        let mut w = mcd_snap::SnapWriter::new();
        w.put_u32(crate::snapshot::SNAPSHOT_MAGIC);
        w.put_u32(crate::snapshot::SNAPSHOT_FORMAT_VERSION);
        w.put_u64(crate::snapshot::config_hash(&self.cfg));

        w.put_u64(self.now.as_ps());
        w.put_u64(self.next_sample.as_ps());
        w.put_u64(self.retired);
        w.put_bool(self.trace_done);
        w.put_u64(self.fetch_stall_until.as_ps());
        w.put_opt_u64(self.pending_redirect);

        for clock in &self.clocks {
            clock.save_state(&mut w);
        }
        for meter in &self.meters {
            meter.save_state(&mut w);
        }

        w.put_usize(self.fetch_buf.len());
        for op in &self.fetch_buf {
            op.save_state(&mut w);
        }
        self.rob.save_state(&mut w);
        for iq in &self.iqs {
            iq.save_state(&mut w);
        }
        self.int_regs.save_state(&mut w);
        self.fp_regs.save_state(&mut w);
        self.completed.save_state(&mut w, |w, c| {
            w.put_u64(c.at.as_ps());
            w.put_u8(c.domain.index() as u8);
        });
        self.store_map.save_state(&mut w);
        for pool in [
            &self.int_alus,
            &self.int_muls,
            &self.fp_alus,
            &self.fp_muls,
            &self.ls_ports,
        ] {
            pool.save_state(&mut w);
        }
        self.icache.save_state(&mut w);
        self.dcache.save_state(&mut w);
        self.l2.save_state(&mut w);
        self.memory.save_state(&mut w);
        self.bpred.save_state(&mut w);
        self.metrics.save_state(&mut w);

        for s in &self.sleep {
            match *s {
                Sleep::Awake => w.put_u8(0),
                Sleep::Asleep { wake_at, stall } => {
                    w.put_u8(1);
                    w.put_u64(wake_at.as_ps());
                    w.put_opt_u64(stall.map(|c| c.index() as u64));
                }
            }
        }
        for watch in &self.watch {
            w.put_seq(watch, |w, &seq| w.put_u64(seq));
        }
        w.put_opt_u64(self.fe_iq_wait.map(|i| i as u64));
        for &t in &self.no_sleep_until {
            w.put_u64(t.as_ps());
        }
        for row in &self.onsets {
            for &onset in row {
                w.put_opt_u64(onset.map(TimePs::as_ps));
            }
        }

        // Controllers: presence, name, and a length-prefixed state blob,
        // so a stateless default (empty blob) and a stateful override
        // both round-trip without the machine knowing the difference.
        for ctrl in &self.controllers {
            match ctrl {
                None => w.put_bool(false),
                Some(c) => {
                    w.put_bool(true);
                    w.put_str(c.name());
                    let mut sub = mcd_snap::SnapWriter::new();
                    c.save_state(&mut sub);
                    w.put_bytes(&sub.into_bytes());
                }
            }
        }

        // The trace source, length-prefixed for the same reason.
        let mut sub = mcd_snap::SnapWriter::new();
        crate::snapshot::SnapshotSource::save_state(&self.trace, &mut sub);
        w.put_bytes(&sub.into_bytes());

        w.into_bytes()
    }

    /// Restores state captured by [`Machine::snapshot`] into a machine
    /// freshly built with the same configuration, controllers of the same
    /// types, and a trace source of the same specification. After a
    /// successful restore, continuing the run is bit-identical to the
    /// machine the snapshot was taken from.
    pub fn restore(&mut self, bytes: &[u8]) -> mcd_snap::SnapResult<()> {
        use mcd_snap::SnapError;
        let mut r = mcd_snap::SnapReader::new(bytes);
        r.expect_u32(crate::snapshot::SNAPSHOT_MAGIC, "snapshot magic")?;
        r.expect_u32(
            crate::snapshot::SNAPSHOT_FORMAT_VERSION,
            "snapshot format version",
        )?;
        r.expect_u64(crate::snapshot::config_hash(&self.cfg), "config hash")?;

        self.now = TimePs::new(r.take_u64()?);
        self.next_sample = TimePs::new(r.take_u64()?);
        self.retired = r.take_u64()?;
        self.trace_done = r.take_bool()?;
        self.fetch_stall_until = TimePs::new(r.take_u64()?);
        self.pending_redirect = r.take_opt_u64()?;

        for clock in &mut self.clocks {
            clock.load_state(&mut r)?;
        }
        for meter in &mut self.meters {
            meter.load_state(&mut r)?;
        }

        let fetch_len = r.take_usize()?;
        self.fetch_buf.clear();
        for _ in 0..fetch_len {
            self.fetch_buf.push_back(MicroOp::load_state(&mut r)?);
        }
        self.rob.load_state(&mut r)?;
        for iq in &mut self.iqs {
            iq.load_state(&mut r)?;
        }
        self.int_regs.load_state(&mut r)?;
        self.fp_regs.load_state(&mut r)?;
        self.completed.load_state(&mut r, |r| {
            let at = TimePs::new(r.take_u64()?);
            let di = r.take_u8()? as usize;
            let domain = DomainId::ALL.get(di).copied().ok_or_else(|| {
                SnapError::Mismatch(format!("completion domain index {di} out of range"))
            })?;
            Ok(Completion { at, domain })
        })?;
        self.store_map.load_state(&mut r)?;
        for pool in [
            &mut self.int_alus,
            &mut self.int_muls,
            &mut self.fp_alus,
            &mut self.fp_muls,
            &mut self.ls_ports,
        ] {
            pool.load_state(&mut r)?;
        }
        self.icache.load_state(&mut r)?;
        self.dcache.load_state(&mut r)?;
        self.l2.load_state(&mut r)?;
        self.memory.load_state(&mut r)?;
        self.bpred.load_state(&mut r)?;
        self.metrics.load_state(&mut r)?;

        for s in &mut self.sleep {
            *s = match r.take_u8()? {
                0 => Sleep::Awake,
                1 => {
                    let wake_at = TimePs::new(r.take_u64()?);
                    let stall = match r.take_opt_u64()? {
                        None => None,
                        Some(i) => Some(StallCause::from_index(i as usize).ok_or_else(|| {
                            SnapError::Mismatch(format!("stall cause index {i} out of range"))
                        })?),
                    };
                    Sleep::Asleep { wake_at, stall }
                }
                tag => {
                    return Err(SnapError::Mismatch(format!(
                        "sleep state tag {tag} invalid"
                    )));
                }
            };
        }
        for watch in &mut self.watch {
            *watch = r.take_seq(|r| r.take_u64())?;
        }
        self.fe_iq_wait = match r.take_opt_u64()? {
            None => None,
            Some(i) if i < 3 => Some(i as usize),
            Some(i) => {
                return Err(SnapError::Mismatch(format!(
                    "front-end queue wait index {i} out of range"
                )));
            }
        };
        for t in &mut self.no_sleep_until {
            *t = TimePs::new(r.take_u64()?);
        }
        for row in &mut self.onsets {
            for onset in row {
                *onset = r.take_opt_u64()?.map(TimePs::new);
            }
        }

        for (bi, ctrl) in self.controllers.iter_mut().enumerate() {
            let present = r.take_bool()?;
            if present != ctrl.is_some() {
                return Err(SnapError::Mismatch(format!(
                    "controller presence mismatch for backend {bi}: snapshot {present}, machine {}",
                    ctrl.is_some()
                )));
            }
            if let Some(c) = ctrl {
                let name = r.take_str()?;
                if name != c.name() {
                    return Err(SnapError::Mismatch(format!(
                        "controller mismatch for backend {bi}: snapshot '{name}', machine '{}'",
                        c.name()
                    )));
                }
                let blob = r.take_bytes()?;
                let mut sub = mcd_snap::SnapReader::new(blob);
                c.load_state(&mut sub)?;
                sub.finish()?;
            }
        }

        let blob = r.take_bytes()?;
        let mut sub = mcd_snap::SnapReader::new(blob);
        crate::snapshot::SnapshotSource::load_state(&mut self.trace, &mut sub)?;
        sub.finish()?;

        r.finish()?;
        // Per-tick scratch is empty by the snapshot contract; clear it in
        // case the restore target was paused mid-run itself.
        self.issue_cand.clear();
        self.issued_idx.clear();
        self.ctrl_events.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::DvfsAction;
    use mcd_power::OpIndex;
    use mcd_workloads::{registry, TraceGenerator};

    fn run_benchmark(name: &str, ops: u64) -> SimResult {
        let spec = registry::by_name(name).expect("benchmark exists");
        let trace = TraceGenerator::new(&spec, ops, 1);
        Machine::new(SimConfig::default(), trace).run()
    }

    #[test]
    fn retires_every_instruction() {
        let r = run_benchmark("adpcm_encode", 10_000);
        assert_eq!(r.instructions, 10_000);
        assert!(r.sim_time > TimePs::ZERO);
    }

    #[test]
    fn ipc_is_plausible_for_ilp_code() {
        let r = run_benchmark("adpcm_encode", 20_000);
        assert!(r.ipc() > 0.3, "ipc {}", r.ipc());
        assert!(r.ipc() <= 4.0, "ipc {} exceeds fetch width", r.ipc());
    }

    #[test]
    fn deterministic_runs() {
        let a = run_benchmark("gzip", 5_000);
        let b = run_benchmark("gzip", 5_000);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.instructions, b.instructions);
        assert!((a.total_energy().as_joules() - b.total_energy().as_joules()).abs() < 1e-18);
    }

    #[test]
    fn memory_bound_code_is_slower_and_hits_memory() {
        let fast = run_benchmark("adpcm_encode", 10_000);
        let slow = run_benchmark("mcf", 10_000);
        assert!(
            slow.ipc() < fast.ipc(),
            "mcf {} vs adpcm {}",
            slow.ipc(),
            fast.ipc()
        );
        assert!(slow.l1d_miss_rate > 0.05, "l1d miss {}", slow.l1d_miss_rate);
    }

    #[test]
    fn fp_code_exercises_fp_domain() {
        let r = run_benchmark("wupwise", 10_000);
        let fp = r.domain(DomainId::Fp);
        assert!(fp.energy.compute.as_pj() > 0.0, "no FP compute energy");
        // Integer-only code leaves the FP compute meter untouched.
        let ri = run_benchmark("adpcm_encode", 10_000);
        assert_eq!(ri.domain(DomainId::Fp).energy.compute.as_pj(), 0.0);
    }

    #[test]
    fn all_domains_run_at_full_speed_without_controllers() {
        let r = run_benchmark("gzip", 10_000);
        for &d in &DomainId::ALL {
            let m = r.domain(d).mean_rel_freq;
            assert!((m - 1.0).abs() < 0.01, "{d} mean rel freq {m}");
        }
        assert_eq!(r.domain(DomainId::Int).transitions, 0);
    }

    /// Forces a domain to minimum frequency from the first sample.
    #[derive(Debug)]
    struct ForceMin;
    impl DvfsController for ForceMin {
        fn on_sample(&mut self, ctx: &ControllerCtx<'_>, _: QueueSample) -> Option<DvfsAction> {
            if ctx.current.0 > 0 {
                Some(DvfsAction::Set(OpIndex(0)))
            } else {
                None
            }
        }
        fn name(&self) -> &'static str {
            "force-min"
        }
    }

    #[test]
    fn scaling_fp_down_saves_energy_on_integer_code() {
        // The run must be several times the ~55 us full-range slew time for
        // the scaled FP domain to actually spend most of it at f_min.
        let spec = registry::by_name("adpcm_encode").expect("exists");
        let base = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 150_000, 1)).run();
        let scaled = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 150_000, 1))
            .with_controller(DomainId::Fp, Box::new(ForceMin))
            .run();
        assert_eq!(scaled.instructions, base.instructions);
        // FP is idle in adpcm: scaling it to f_min must save energy with
        // almost no slowdown.
        assert!(
            scaled.total_energy() < base.total_energy(),
            "scaled {} !< base {}",
            scaled.total_energy(),
            base.total_energy()
        );
        assert!(
            scaled.perf_degradation_vs(&base) < 0.02,
            "perf hit {}",
            scaled.perf_degradation_vs(&base)
        );
        assert!(scaled.domain(DomainId::Fp).mean_rel_freq < 0.5);
        assert!(scaled.domain(DomainId::Fp).transitions >= 1);
    }

    #[test]
    fn scaling_int_down_slows_integer_code() {
        // adpcm_decode is the most serial integer kernel (dep_mean 3), so
        // the INT domain at f_min cannot hide behind its ALU headroom.
        let spec = registry::by_name("adpcm_decode").expect("exists");
        let base = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 50_000, 1)).run();
        let scaled = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 50_000, 1))
            .with_controller(DomainId::Int, Box::new(ForceMin))
            .run();
        assert!(
            scaled.perf_degradation_vs(&base) > 0.15,
            "perf hit only {}",
            scaled.perf_degradation_vs(&base)
        );
    }

    #[test]
    fn occupancy_traces_recorded_when_enabled() {
        let spec = registry::by_name("gzip").expect("exists");
        let cfg = SimConfig::default().with_traces();
        let r = Machine::new(cfg, TraceGenerator::new(&spec, 10_000, 1)).run();
        assert_eq!(r.metrics.occupancy[0].len() as u64, r.metrics.samples);
        assert_eq!(r.metrics.frequency[0].len() as u64, r.metrics.samples);
        assert!(r.metrics.samples > 0);
    }

    #[test]
    fn slowing_a_domain_shows_up_in_stall_accounting() {
        use crate::metrics::StallCause;
        let spec = registry::by_name("adpcm_decode").expect("exists");
        let base = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 30_000, 1)).run();
        let slowed = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 30_000, 1))
            .with_controller(DomainId::Int, Box::new(ForceMin))
            .run();
        let idx = StallCause::IntQueueFull.index();
        assert!(
            slowed.metrics.dispatch_stalls[idx] > base.metrics.dispatch_stalls[idx],
            "slowed {} !> base {}",
            slowed.metrics.dispatch_stalls[idx],
            base.metrics.dispatch_stalls[idx]
        );
    }

    #[test]
    fn queue_peaks_are_positive_and_bounded() {
        let r = run_benchmark("swim", 10_000);
        let caps = [20usize, 16, 16];
        for (i, (&peak, &cap)) in r.queue_peaks.iter().zip(&caps).enumerate() {
            assert!(peak > 0, "queue {i} never held an entry");
            assert!(peak <= cap, "queue {i} peak {peak} over capacity {cap}");
        }
    }

    #[test]
    fn leakage_energy_accrues_with_time_not_frequency() {
        let spec = registry::by_name("adpcm_encode").expect("exists");
        let with = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 10_000, 1)).run();
        let cfg0 = SimConfig {
            leakage_scale: 0.0,
            ..SimConfig::default()
        };
        let without = Machine::new(cfg0, TraceGenerator::new(&spec, 10_000, 1)).run();
        for &d in &DomainId::ALL {
            assert!(
                with.domain(d).energy.leakage.as_joules() > 0.0,
                "{d} leaks nothing"
            );
            assert_eq!(without.domain(d).energy.leakage, Energy::ZERO);
        }
        // Leakage is a small but visible fraction of the total (≈ a few %).
        let frac = with
            .domains
            .iter()
            .map(|dr| dr.energy.leakage)
            .sum::<Energy>()
            / with.total_energy();
        assert!((0.005..0.25).contains(&frac), "leakage fraction {frac}");
    }

    #[test]
    fn token_ring_sync_is_cheaper_than_arbitration() {
        let spec = registry::by_name("gzip").expect("exists");
        let arb = SimConfig {
            jitter_sigma_ps: 0.0,
            ..SimConfig::default()
        };
        let mut ring = arb.clone();
        ring.sync_model = crate::config::SyncModel::TokenRing;
        let a = Machine::new(arb, TraceGenerator::new(&spec, 20_000, 1)).run();
        let r = Machine::new(ring, TraceGenerator::new(&spec, 20_000, 1)).run();
        assert!(
            r.sim_time <= a.sim_time,
            "token ring {} should not be slower than arbitration {}",
            r.sim_time,
            a.sim_time
        );
    }

    #[test]
    fn queue_occupancy_rises_when_consumer_is_slowed() {
        let spec = registry::by_name("adpcm_encode").expect("exists");
        let cfg = SimConfig::default().with_traces();
        let base = Machine::new(cfg.clone(), TraceGenerator::new(&spec, 20_000, 1)).run();
        let scaled = Machine::new(cfg, TraceGenerator::new(&spec, 20_000, 1))
            .with_controller(DomainId::Int, Box::new(ForceMin))
            .run();
        let bi = DomainId::Int.backend_index();
        assert!(
            scaled.metrics.mean_occupancy(bi) > base.metrics.mean_occupancy(bi),
            "scaled occ {} !> base occ {}",
            scaled.metrics.mean_occupancy(bi),
            base.metrics.mean_occupancy(bi)
        );
    }
}
