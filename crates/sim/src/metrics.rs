//! Run-time trace recording (occupancy and frequency series).

use mcd_power::TimePs;

/// Why dispatch stopped in a front-end cycle (the first blocking reason,
/// since dispatch is in-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Reorder buffer full.
    RobFull,
    /// INT issue queue full.
    IntQueueFull,
    /// FP issue queue full.
    FpQueueFull,
    /// LS queue full.
    LsQueueFull,
    /// No free physical integer register.
    IntRegs,
    /// No free physical FP register.
    FpRegs,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 6] = [
        StallCause::RobFull,
        StallCause::IntQueueFull,
        StallCause::FpQueueFull,
        StallCause::LsQueueFull,
        StallCause::IntRegs,
        StallCause::FpRegs,
    ];

    /// Inverse of [`StallCause::index`], rejecting out-of-range values
    /// (the snapshot decoding).
    pub fn from_index(i: usize) -> Option<StallCause> {
        StallCause::ALL.get(i).copied()
    }

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallCause::RobFull => 0,
            StallCause::IntQueueFull => 1,
            StallCause::FpQueueFull => 2,
            StallCause::LsQueueFull => 3,
            StallCause::IntRegs => 4,
            StallCause::FpRegs => 5,
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StallCause::RobFull => "ROB full",
            StallCause::IntQueueFull => "INT queue full",
            StallCause::FpQueueFull => "FP queue full",
            StallCause::LsQueueFull => "LS queue full",
            StallCause::IntRegs => "INT registers",
            StallCause::FpRegs => "FP registers",
        })
    }
}

/// A point in a domain's frequency trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqTracePoint {
    /// Sample time.
    pub time: TimePs,
    /// Relative frequency `f/f_max` at that time.
    pub rel_freq: f64,
}

/// Optional per-sample traces collected during a run.
///
/// Indices into the per-domain arrays follow
/// [`crate::config::DomainId::backend_index`]: 0 = INT, 1 = FP, 2 = LS.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-backend-domain queue occupancy, one `u8` per sampling period
    /// (empty when recording is disabled).
    pub occupancy: [Vec<u8>; 3],
    /// Per-backend-domain relative-frequency trace, one point per sampling
    /// period (empty when recording is disabled).
    pub frequency: [Vec<FreqTracePoint>; 3],
    /// Instructions retired as of each sampling period (recorded together
    /// with the frequency traces; Figure 7's x-axis is instructions).
    pub retired_trace: Vec<u64>,
    /// Sampling periods elapsed.
    pub samples: u64,
    /// DVFS actions started, per backend domain.
    pub dvfs_actions: [u64; 3],
    /// Running occupancy sums for cheap averages (always collected).
    pub occupancy_sum: [u64; 3],
    /// Dispatch-stall cycles by first blocking cause (indexed by
    /// [`StallCause::index`]; counted on front-end cycles where at least
    /// one instruction was waiting but none dispatched).
    pub dispatch_stalls: [u64; 6],
    /// Enqueues per backend domain whose visibility was pushed past the
    /// consumer's next clock edge by the synchronization interface (the
    /// inter-domain communication cost of Section 2).
    pub sync_enqueues: [u64; 3],
    /// Local cycles each backend domain spent settled at the lowest
    /// operating point.
    pub fmin_cycles: [u64; 3],
    /// Local cycles each backend domain spent settled at the highest
    /// operating point.
    pub fmax_cycles: [u64; 3],
    /// Time each backend domain's regulator spent slewing between
    /// operating points.
    pub transition_time_ps: [u64; 3],
    /// Time-delay relay arms per backend domain (both signals).
    pub relay_arms: [u64; 3],
    /// Time-delay relay firings per backend domain (both signals).
    pub relay_fires: [u64; 3],
    /// Time-delay relay resets per backend domain (both signals).
    pub relay_resets: [u64; 3],
    /// Upward frequency steps issued per backend domain.
    pub freq_steps_up: [u64; 3],
    /// Downward frequency steps issued per backend domain.
    pub freq_steps_down: [u64; 3],
    /// Sum of reaction times (deviation onset to the frequency step that
    /// answered it) per backend domain, in ps.
    pub reaction_sum_ps: [u64; 3],
    /// Number of reaction times accumulated per backend domain.
    pub reaction_count: [u64; 3],
    /// Queue-occupancy histograms per backend domain: `hist[d][q]` counts
    /// sampling periods that observed occupancy `q` (length capacity + 1;
    /// always collected — one add per sample).
    pub occupancy_hist: [Vec<u64>; 3],
    /// Events dispatched by the event-driven scheduler's main loop (clock
    /// edges of awake domains, samples, and domain wake-ups).
    pub events_processed: u64,
    /// Clock edges and sampling periods absorbed by steady-state replay
    /// or sample batching instead of the per-event path. The ratio
    /// `cycles_skipped / events_processed` is the event core's leverage
    /// on a given workload.
    pub cycles_skipped: u64,
}

impl Metrics {
    /// Total dispatch-stall cycles across all causes.
    pub fn total_dispatch_stalls(&self) -> u64 {
        self.dispatch_stalls.iter().sum()
    }

    /// Serializes every metric, including the full trace series, so a
    /// restored run continues appending to bit-identical history.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        for d in 0..3 {
            w.put_seq(&self.occupancy[d], |w, &q| w.put_u8(q));
            w.put_seq(&self.frequency[d], |w, p| {
                w.put_u64(p.time.as_ps());
                w.put_f64(p.rel_freq);
            });
            w.put_seq(&self.occupancy_hist[d], |w, &n| w.put_u64(n));
        }
        w.put_seq(&self.retired_trace, |w, &n| w.put_u64(n));
        w.put_u64(self.samples);
        for arr in [
            &self.dvfs_actions,
            &self.occupancy_sum,
            &self.sync_enqueues,
            &self.fmin_cycles,
            &self.fmax_cycles,
            &self.transition_time_ps,
            &self.relay_arms,
            &self.relay_fires,
            &self.relay_resets,
            &self.freq_steps_up,
            &self.freq_steps_down,
            &self.reaction_sum_ps,
            &self.reaction_count,
        ] {
            for &v in arr.iter() {
                w.put_u64(v);
            }
        }
        for &v in &self.dispatch_stalls {
            w.put_u64(v);
        }
        w.put_u64(self.events_processed);
        w.put_u64(self.cycles_skipped);
    }

    /// Restores state captured by [`Metrics::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        for d in 0..3 {
            self.occupancy[d] = r.take_seq(|r| r.take_u8())?;
            self.frequency[d] = r.take_seq(|r| {
                Ok(FreqTracePoint {
                    time: TimePs::new(r.take_u64()?),
                    rel_freq: r.take_f64()?,
                })
            })?;
            self.occupancy_hist[d] = r.take_seq(|r| r.take_u64())?;
        }
        self.retired_trace = r.take_seq(|r| r.take_u64())?;
        self.samples = r.take_u64()?;
        for arr in [
            &mut self.dvfs_actions,
            &mut self.occupancy_sum,
            &mut self.sync_enqueues,
            &mut self.fmin_cycles,
            &mut self.fmax_cycles,
            &mut self.transition_time_ps,
            &mut self.relay_arms,
            &mut self.relay_fires,
            &mut self.relay_resets,
            &mut self.freq_steps_up,
            &mut self.freq_steps_down,
            &mut self.reaction_sum_ps,
            &mut self.reaction_count,
        ] {
            for v in arr.iter_mut() {
                *v = r.take_u64()?;
            }
        }
        for v in &mut self.dispatch_stalls {
            *v = r.take_u64()?;
        }
        self.events_processed = r.take_u64()?;
        self.cycles_skipped = r.take_u64()?;
        Ok(())
    }
}

impl Metrics {
    /// Mean queue occupancy of backend domain `idx` over the run.
    pub fn mean_occupancy(&self, idx: usize) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_sum[idx] as f64 / self.samples as f64
        }
    }

    /// Occupancy series of backend domain `idx` as `f64` (for spectral
    /// analysis).
    pub fn occupancy_series(&self, idx: usize) -> Vec<f64> {
        self.occupancy[idx].iter().map(|&q| q as f64).collect()
    }

    /// Mean reaction time of backend domain `idx` — deviation-window
    /// onset to the frequency step that answered it — in nanoseconds, or
    /// `None` if the domain's controller never completed a reaction.
    pub fn mean_reaction_time_ns(&self, idx: usize) -> Option<f64> {
        if self.reaction_count[idx] == 0 {
            None
        } else {
            Some(self.reaction_sum_ps[idx] as f64 / self.reaction_count[idx] as f64 / 1000.0)
        }
    }

    /// Total frequency steps (both directions) of backend domain `idx`.
    pub fn freq_steps(&self, idx: usize) -> u64 {
        self.freq_steps_up[idx] + self.freq_steps_down[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_occupancy_handles_empty() {
        let m = Metrics::default();
        assert_eq!(m.mean_occupancy(0), 0.0);
    }

    #[test]
    fn mean_occupancy_divides_by_samples() {
        let m = Metrics {
            samples: 4,
            occupancy_sum: [8, 0, 2],
            ..Metrics::default()
        };
        assert_eq!(m.mean_occupancy(0), 2.0);
        assert_eq!(m.mean_occupancy(2), 0.5);
    }

    #[test]
    fn stall_causes_are_dense_and_displayable() {
        let mut seen = [false; 6];
        for &c in &StallCause::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
            assert!(!format!("{c}").is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn total_dispatch_stalls_sums() {
        let m = Metrics {
            dispatch_stalls: [1, 2, 3, 4, 5, 6],
            ..Metrics::default()
        };
        assert_eq!(m.total_dispatch_stalls(), 21);
    }

    #[test]
    fn mean_reaction_time_requires_reactions() {
        let mut m = Metrics::default();
        assert_eq!(m.mean_reaction_time_ns(0), None);
        m.reaction_sum_ps = [24_000, 0, 0];
        m.reaction_count = [3, 0, 0];
        assert_eq!(m.mean_reaction_time_ns(0), Some(8.0));
        assert_eq!(m.mean_reaction_time_ns(1), None);
    }

    #[test]
    fn freq_steps_sum_both_directions() {
        let m = Metrics {
            freq_steps_up: [2, 0, 1],
            freq_steps_down: [3, 0, 0],
            ..Metrics::default()
        };
        assert_eq!(m.freq_steps(0), 5);
        assert_eq!(m.freq_steps(1), 0);
        assert_eq!(m.freq_steps(2), 1);
    }

    #[test]
    fn occupancy_series_converts_to_f64() {
        let mut m = Metrics::default();
        m.occupancy[1] = vec![1, 2, 3];
        assert_eq!(m.occupancy_series(1), vec![1.0, 2.0, 3.0]);
        assert!(m.occupancy_series(0).is_empty());
    }
}
