//! Run-time trace recording (occupancy and frequency series).

use mcd_power::TimePs;

/// Why dispatch stopped in a front-end cycle (the first blocking reason,
/// since dispatch is in-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Reorder buffer full.
    RobFull,
    /// INT issue queue full.
    IntQueueFull,
    /// FP issue queue full.
    FpQueueFull,
    /// LS queue full.
    LsQueueFull,
    /// No free physical integer register.
    IntRegs,
    /// No free physical FP register.
    FpRegs,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 6] = [
        StallCause::RobFull,
        StallCause::IntQueueFull,
        StallCause::FpQueueFull,
        StallCause::LsQueueFull,
        StallCause::IntRegs,
        StallCause::FpRegs,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallCause::RobFull => 0,
            StallCause::IntQueueFull => 1,
            StallCause::FpQueueFull => 2,
            StallCause::LsQueueFull => 3,
            StallCause::IntRegs => 4,
            StallCause::FpRegs => 5,
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StallCause::RobFull => "ROB full",
            StallCause::IntQueueFull => "INT queue full",
            StallCause::FpQueueFull => "FP queue full",
            StallCause::LsQueueFull => "LS queue full",
            StallCause::IntRegs => "INT registers",
            StallCause::FpRegs => "FP registers",
        })
    }
}

/// A point in a domain's frequency trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqTracePoint {
    /// Sample time.
    pub time: TimePs,
    /// Relative frequency `f/f_max` at that time.
    pub rel_freq: f64,
}

/// Optional per-sample traces collected during a run.
///
/// Indices into the per-domain arrays follow
/// [`crate::config::DomainId::backend_index`]: 0 = INT, 1 = FP, 2 = LS.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-backend-domain queue occupancy, one `u8` per sampling period
    /// (empty when recording is disabled).
    pub occupancy: [Vec<u8>; 3],
    /// Per-backend-domain relative-frequency trace, one point per sampling
    /// period (empty when recording is disabled).
    pub frequency: [Vec<FreqTracePoint>; 3],
    /// Instructions retired as of each sampling period (recorded together
    /// with the frequency traces; Figure 7's x-axis is instructions).
    pub retired_trace: Vec<u64>,
    /// Sampling periods elapsed.
    pub samples: u64,
    /// DVFS actions started, per backend domain.
    pub dvfs_actions: [u64; 3],
    /// Running occupancy sums for cheap averages (always collected).
    pub occupancy_sum: [u64; 3],
    /// Dispatch-stall cycles by first blocking cause (indexed by
    /// [`StallCause::index`]; counted on front-end cycles where at least
    /// one instruction was waiting but none dispatched).
    pub dispatch_stalls: [u64; 6],
}

impl Metrics {
    /// Total dispatch-stall cycles across all causes.
    pub fn total_dispatch_stalls(&self) -> u64 {
        self.dispatch_stalls.iter().sum()
    }
}

impl Metrics {
    /// Mean queue occupancy of backend domain `idx` over the run.
    pub fn mean_occupancy(&self, idx: usize) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_sum[idx] as f64 / self.samples as f64
        }
    }

    /// Occupancy series of backend domain `idx` as `f64` (for spectral
    /// analysis).
    pub fn occupancy_series(&self, idx: usize) -> Vec<f64> {
        self.occupancy[idx].iter().map(|&q| q as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_occupancy_handles_empty() {
        let m = Metrics::default();
        assert_eq!(m.mean_occupancy(0), 0.0);
    }

    #[test]
    fn mean_occupancy_divides_by_samples() {
        let m = Metrics {
            samples: 4,
            occupancy_sum: [8, 0, 2],
            ..Metrics::default()
        };
        assert_eq!(m.mean_occupancy(0), 2.0);
        assert_eq!(m.mean_occupancy(2), 0.5);
    }

    #[test]
    fn stall_causes_are_dense_and_displayable() {
        let mut seen = [false; 6];
        for &c in &StallCause::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
            assert!(!format!("{c}").is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn total_dispatch_stalls_sums() {
        let mut m = Metrics::default();
        m.dispatch_stalls = [1, 2, 3, 4, 5, 6];
        assert_eq!(m.total_dispatch_stalls(), 21);
    }

    #[test]
    fn occupancy_series_converts_to_f64() {
        let mut m = Metrics::default();
        m.occupancy[1] = vec![1, 2, 3];
        assert_eq!(m.occupancy_series(1), vec![1.0, 2.0, 3.0]);
        assert!(m.occupancy_series(0).is_empty());
    }
}
