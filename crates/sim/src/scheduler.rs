//! Event scheduling for the simulator core: the ordered event queue and
//! its deterministic tie-break contract.
//!
//! The engine no longer walks every clock edge of every domain. Each main
//! loop iteration dispatches exactly one *event* from a fixed population:
//!
//! * [`EventKind::Sample`] — the 4 ns queue-occupancy sampling tick that
//!   drives every DVFS controller (one recurring event).
//! * [`EventKind::Edge`] — the next clock edge of an *awake* domain (one
//!   per awake domain).
//! * [`EventKind::Wake`] — the scheduled end of a *sleeping* domain's
//!   provably-uneventful interval (one per sleeping domain). Processing a
//!   wake replays the domain's skipped edges in a closed loop (see
//!   `engine.rs`) and returns it to the awake population.
//!
//! # Tie-break ordering contract
//!
//! Events are totally ordered by `(time, rank)` with ranks
//!
//! | rank | event                 |
//! |------|-----------------------|
//! | 0    | `Sample`              |
//! | 1    | `Edge`/`Wake` front end |
//! | 2    | `Edge`/`Wake` integer |
//! | 3    | `Edge`/`Wake` floating-point |
//! | 4    | `Edge`/`Wake` load/store |
//!
//! At equal timestamps the sample fires first, then domains in index
//! order. This is exactly the order the original per-cycle loop produced
//! with its strict `<` five-way minimum, so the event-driven core replays
//! history identically; it is frozen as a contract here (and unit-tested
//! below) because every golden report depends on it.
//!
//! [`pick_next`] is the queue's pop operation. The population is small and
//! statically known (≤ 5 live events), so the "queue" is an indexed
//! five-slot scan rather than a materialized `BinaryHeap` — the
//! [`Event`] `Ord` impl is the same total order, and the tests verify the
//! scan against a real `BinaryHeap<Reverse<Event>>` on randomized
//! populations.

use crate::config::DomainId;
use mcd_power::TimePs;

/// What a scheduled event does when dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The recurring queue-occupancy sample (controller invocation point).
    Sample,
    /// The next clock edge of an awake domain.
    Edge(DomainId),
    /// The scheduled wake-up of a sleeping domain.
    Wake(DomainId),
}

impl EventKind {
    /// Tie-break rank; see the module-level ordering contract.
    pub fn rank(self) -> u8 {
        match self {
            EventKind::Sample => 0,
            EventKind::Edge(d) | EventKind::Wake(d) => 1 + d.index() as u8,
        }
    }
}

/// A scheduled event: totally ordered by `(time, rank)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: TimePs,
    /// What firing it does.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.kind.rank()).cmp(&(other.time, other.kind.rank()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One domain's pending event: its next edge while awake, or its wake
/// deadline while sleeping (`TimePs::new(u64::MAX)` ≈ "woken only by an
/// explicit signal").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainSlot {
    /// Awake: the domain's next clock edge.
    Edge(TimePs),
    /// Asleep: the domain's wake deadline.
    Wake(TimePs),
}

impl DomainSlot {
    fn time(self) -> TimePs {
        match self {
            DomainSlot::Edge(t) | DomainSlot::Wake(t) => t,
        }
    }

    fn kind(self, d: DomainId) -> EventKind {
        match self {
            DomainSlot::Edge(_) => EventKind::Edge(d),
            DomainSlot::Wake(_) => EventKind::Wake(d),
        }
    }
}

/// Pops the earliest event from the live population under the `(time,
/// rank)` order: the strict `<` scan keeps the sample on ties and the
/// lowest-index domain on domain-vs-domain ties.
pub fn pick_next(sample_at: TimePs, domains: &[DomainSlot; 4]) -> Event {
    let mut best = Event {
        time: sample_at,
        kind: EventKind::Sample,
    };
    for (i, slot) in domains.iter().enumerate() {
        let t = slot.time();
        if t < best.time {
            best = Event {
                time: t,
                kind: slot.kind(DomainId::ALL[i]),
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ps(t: u64) -> TimePs {
        TimePs::new(t)
    }

    /// Reference implementation: a real priority queue over the same
    /// population with the same `(time, rank)` order.
    fn heap_pick(sample_at: TimePs, domains: &[DomainSlot; 4]) -> Event {
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        heap.push(Reverse(Event {
            time: sample_at,
            kind: EventKind::Sample,
        }));
        for (i, slot) in domains.iter().enumerate() {
            heap.push(Reverse(Event {
                time: slot.time(),
                kind: slot.kind(DomainId::ALL[i]),
            }));
        }
        heap.pop().expect("population is non-empty").0
    }

    #[test]
    fn sample_wins_ties_against_every_domain() {
        let domains = [
            DomainSlot::Edge(ps(100)),
            DomainSlot::Edge(ps(100)),
            DomainSlot::Wake(ps(100)),
            DomainSlot::Edge(ps(100)),
        ];
        let ev = pick_next(ps(100), &domains);
        assert_eq!(ev.kind, EventKind::Sample);
        assert_eq!(ev.time, ps(100));
    }

    #[test]
    fn lower_domain_index_wins_ties() {
        let domains = [
            DomainSlot::Edge(ps(50)),
            DomainSlot::Edge(ps(50)),
            DomainSlot::Edge(ps(50)),
            DomainSlot::Edge(ps(50)),
        ];
        let ev = pick_next(ps(51), &domains);
        assert_eq!(ev.kind, EventKind::Edge(DomainId::FrontEnd));
        let domains = [
            DomainSlot::Edge(ps(60)),
            DomainSlot::Edge(ps(50)),
            DomainSlot::Edge(ps(50)),
            DomainSlot::Edge(ps(50)),
        ];
        assert_eq!(
            pick_next(ps(51), &domains).kind,
            EventKind::Edge(DomainId::Int)
        );
    }

    #[test]
    fn wake_ties_like_its_domain_edge() {
        // A sleeping front end's wake at t outranks a back-end edge at t.
        let domains = [
            DomainSlot::Wake(ps(70)),
            DomainSlot::Edge(ps(70)),
            DomainSlot::Edge(ps(90)),
            DomainSlot::Edge(ps(90)),
        ];
        let ev = pick_next(ps(80), &domains);
        assert_eq!(ev.kind, EventKind::Wake(DomainId::FrontEnd));
    }

    #[test]
    fn earliest_time_dominates_rank() {
        let domains = [
            DomainSlot::Edge(ps(500)),
            DomainSlot::Edge(ps(400)),
            DomainSlot::Edge(ps(300)),
            DomainSlot::Edge(ps(200)),
        ];
        let ev = pick_next(ps(600), &domains);
        assert_eq!(ev.kind, EventKind::Edge(DomainId::Ls));
        assert_eq!(ev.time, ps(200));
    }

    #[test]
    fn event_only_sleepers_never_win() {
        let never = ps(u64::MAX);
        let domains = [
            DomainSlot::Wake(never),
            DomainSlot::Wake(never),
            DomainSlot::Wake(never),
            DomainSlot::Wake(never),
        ];
        let ev = pick_next(ps(4000), &domains);
        assert_eq!(ev.kind, EventKind::Sample);
    }

    #[test]
    fn scan_matches_binary_heap_on_randomized_populations() {
        // Deterministic xorshift so the test needs no clock or OS entropy.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            // Small time range to force frequent ties.
            let t = |v: u64| ps(v % 8);
            let slot = |v: u64| {
                if v & 1 == 0 {
                    DomainSlot::Edge(t(v >> 1))
                } else {
                    DomainSlot::Wake(t(v >> 1))
                }
            };
            let domains = [slot(next()), slot(next()), slot(next()), slot(next())];
            let sample = t(next());
            assert_eq!(pick_next(sample, &domains), heap_pick(sample, &domains));
        }
    }
}
