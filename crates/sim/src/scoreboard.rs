//! Allocation- and hash-free completion tracking for the issue/retire
//! hot path.
//!
//! The engine consults two per-instruction maps on every back-end clock
//! edge, once per source operand of every queued micro-op:
//!
//! * *completed*: sequence number → completion record, queried by
//!   [`engine::Machine`](crate::engine::Machine)'s readiness check;
//! * *store map*: data address → youngest in-flight store, queried once
//!   per dispatched load.
//!
//! Both were `std::collections::HashMap`s, which meant SipHash plus a
//! probe chain on the hottest lookup in the simulator. The two
//! structures here exploit what the engine knows about its keys:
//!
//! * [`SeqScoreboard`] — sequence numbers are dense and live ones span a
//!   window no wider than the ROB (entries are inserted at issue, i.e.
//!   while in the ROB, and removed at retirement). A power-of-two ring
//!   indexed by `seq & mask` is therefore collision-free: one AND, one
//!   load, one tag compare per lookup — no hashing, no probing.
//! * [`AddrMap`] — addresses are *not* dense, so this is an open-addressed
//!   table with Fibonacci (multiply-shift) hashing, linear probing, and
//!   backward-shift deletion (no tombstones to accumulate). The engine
//!   prunes a store's entry when the store retires, bounding the table by
//!   the in-flight window instead of the touched-address footprint.
//!
//! Neither structure is ever iterated — all access is by key — so
//! swapping them in for `HashMap` is observably identical; only by-key
//! results reach simulation state.

use std::fmt;

/// Slot tag meaning "no entry". Sequence numbers are trace positions and
/// never reach `u64::MAX` (a trace that long would not finish simulating).
const EMPTY: u64 = u64::MAX;

/// A map from instruction sequence number to a per-instruction record,
/// valid while all live keys fit inside a fixed-width sliding window.
///
/// The caller guarantees that at any instant the live keys span less than
/// the `window` passed to [`SeqScoreboard::new`] (for the engine: an
/// instruction has a completion record only between issue and retirement,
/// and the ROB holds at most `rob_size` consecutive sequence numbers).
/// Under that invariant, `seq & mask` is injective over live keys and
/// every operation is a single indexed access.
#[derive(Clone)]
pub struct SeqScoreboard<V> {
    seqs: Vec<u64>,
    vals: Vec<V>,
    mask: u64,
}

impl<V: Copy + Default> SeqScoreboard<V> {
    /// Creates a scoreboard for live keys spanning at most `window`
    /// consecutive sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "scoreboard window must be positive");
        let cap = window.next_power_of_two();
        SeqScoreboard {
            seqs: vec![EMPTY; cap],
            vals: vec![V::default(); cap],
            mask: cap as u64 - 1,
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// The record for `seq`, if one is present.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&V> {
        let i = self.slot(seq);
        if self.seqs[i] == seq {
            Some(&self.vals[i])
        } else {
            None
        }
    }

    /// Inserts (or overwrites) the record for `seq`.
    ///
    /// In debug builds, panics if the slot is occupied by a *different*
    /// live key — that means the caller broke the window invariant and
    /// results would silently corrupt.
    #[inline]
    pub fn insert(&mut self, seq: u64, value: V) {
        let i = self.slot(seq);
        debug_assert!(
            self.seqs[i] == EMPTY || self.seqs[i] == seq,
            "scoreboard window violated: seq {} collides with live seq {}",
            seq,
            self.seqs[i]
        );
        self.seqs[i] = seq;
        self.vals[i] = value;
    }

    /// Removes the record for `seq`, if present.
    #[inline]
    pub fn remove(&mut self, seq: u64) {
        let i = self.slot(seq);
        if self.seqs[i] == seq {
            self.seqs[i] = EMPTY;
        }
    }

    /// Serializes the raw slot arrays (`save_val` encodes each live value),
    /// preserving the exact layout so a restore is indistinguishable from
    /// the original — empty slots keep stale values, which are never read.
    pub fn save_state(
        &self,
        w: &mut mcd_snap::SnapWriter,
        mut save_val: impl FnMut(&mut mcd_snap::SnapWriter, &V),
    ) {
        w.put_u64(self.seqs.len() as u64);
        for (i, &seq) in self.seqs.iter().enumerate() {
            w.put_u64(seq);
            if seq != EMPTY {
                save_val(w, &self.vals[i]);
            }
        }
    }

    /// Restores state captured by [`SeqScoreboard::save_state`] into a
    /// scoreboard of the same capacity.
    pub fn load_state(
        &mut self,
        r: &mut mcd_snap::SnapReader<'_>,
        mut load_val: impl FnMut(&mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<V>,
    ) -> mcd_snap::SnapResult<()> {
        r.expect_u64(self.seqs.len() as u64, "scoreboard capacity")?;
        for i in 0..self.seqs.len() {
            let seq = r.take_u64()?;
            self.seqs[i] = seq;
            self.vals[i] = if seq != EMPTY {
                load_val(r)?
            } else {
                V::default()
            };
        }
        Ok(())
    }
}

impl<V> fmt::Debug for SeqScoreboard<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let live = self.seqs.iter().filter(|&&s| s != EMPTY).count();
        f.debug_struct("SeqScoreboard")
            .field("capacity", &self.seqs.len())
            .field("live", &live)
            .finish()
    }
}

/// An open-addressed `u64 → u64` map (data address → store sequence
/// number) with Fibonacci hashing and linear probing.
///
/// Deletion uses backward shifting, so probe chains stay short without
/// tombstone cleanup; the table grows (never shrinks) at 7/8 load. Keys
/// must be below `u64::MAX`, which is reserved as the empty tag —
/// simulated data addresses are far below that.
#[derive(Clone)]
pub struct AddrMap {
    keys: Vec<u64>,
    vals: Vec<u64>,
    mask: usize,
    shift: u32,
    len: usize,
}

/// 2^64 / φ, the multiplier of Fibonacci hashing: consecutive and
/// stride-patterned addresses (exactly what address generators emit)
/// spread uniformly across the high bits.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl AddrMap {
    /// Creates an empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity_pow2(64)
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        AddrMap {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or overwrites the value for `key`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `key` is the reserved empty tag `u64::MAX`.
    pub fn insert(&mut self, key: u64, value: u64) {
        debug_assert!(key != EMPTY, "u64::MAX is reserved as the empty tag");
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = value;
                return;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key` only if it currently maps to `value`; returns whether
    /// an entry was removed.
    ///
    /// This is the retire-time pruning primitive: a committing store must
    /// not evict a *younger* store that has since overwritten its address
    /// slot, so the caller passes its own sequence number as `value`.
    pub fn remove_if(&mut self, key: u64, value: u64) -> bool {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                if self.vals[i] != value {
                    return false;
                }
                self.remove_slot(i);
                return true;
            }
            if k == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Backward-shift deletion: walk the probe chain after `i`, moving
    /// back any entry whose home position precedes the hole, so lookups
    /// never need tombstones.
    fn remove_slot(&mut self, mut i: usize) {
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // The entry at j may fill the hole at i iff i lies on its
            // probe path, i.e. dist(home(k) → j) >= dist(i → j).
            let dist_home = j.wrapping_sub(self.home(k)) & self.mask;
            let dist_hole = j.wrapping_sub(i) & self.mask;
            if dist_home >= dist_hole {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
        self.len -= 1;
    }

    /// Serializes the raw table arrays. Capacity and probe-chain layout are
    /// preserved exactly, so lookups and deletions after a restore walk the
    /// same slots the original table would have.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64((self.mask + 1) as u64);
        w.put_u64(self.len as u64);
        for i in 0..=self.mask {
            w.put_u64(self.keys[i]);
            w.put_u64(self.vals[i]);
        }
    }

    /// Restores a table captured by [`AddrMap::save_state`], replacing
    /// `self` entirely (the capacity comes from the snapshot, since the
    /// table grows dynamically).
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let cap = r.take_usize()?;
        if !cap.is_power_of_two() {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "addr map capacity {cap} is not a power of two"
            )));
        }
        let len = r.take_usize()?;
        if len > cap {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "addr map length {len} exceeds capacity {cap}"
            )));
        }
        // A corrupt capacity must fail before allocation: cap slots occupy
        // 16 bytes each in the snapshot, so they must fit what remains.
        if cap > r.remaining() / 16 {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "addr map capacity {cap} exceeds remaining snapshot bytes"
            )));
        }
        let mut fresh = Self::with_capacity_pow2(cap);
        for i in 0..cap {
            fresh.keys[i] = r.take_u64()?;
            fresh.vals[i] = r.take_u64()?;
        }
        fresh.len = len;
        *self = fresh;
        Ok(())
    }

    fn grow(&mut self) {
        let bigger = Self::with_capacity_pow2((self.mask + 1) * 2);
        let old = std::mem::replace(self, bigger);
        for (k, v) in old.keys.into_iter().zip(old.vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

impl Default for AddrMap {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for AddrMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddrMap")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_window_roundtrip() {
        let mut sb: SeqScoreboard<u32> = SeqScoreboard::new(80);
        for seq in 0..80u64 {
            sb.insert(seq, seq as u32 * 3);
        }
        for seq in 0..80u64 {
            assert_eq!(sb.get(seq), Some(&(seq as u32 * 3)));
        }
        assert_eq!(sb.get(80), None);
        // Slide the window: retire the oldest, admit a new youngest.
        sb.remove(0);
        assert_eq!(sb.get(0), None);
        sb.insert(128, 7); // 128 & 127 == 0: reuses the freed slot
        assert_eq!(sb.get(128), Some(&7));
        assert_eq!(sb.get(0), None, "old key must not alias the new one");
    }

    #[test]
    fn scoreboard_sliding_window_never_confuses_keys() {
        let mut sb: SeqScoreboard<u64> = SeqScoreboard::new(8);
        for seq in 0..1000u64 {
            sb.insert(seq, seq ^ 0xABCD);
            if seq >= 7 {
                let old = seq - 7;
                assert_eq!(sb.get(old), Some(&(old ^ 0xABCD)));
                sb.remove(old);
                assert_eq!(sb.get(old), None);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _: SeqScoreboard<u8> = SeqScoreboard::new(0);
    }

    #[test]
    fn addr_map_insert_get_overwrite() {
        let mut m = AddrMap::new();
        assert!(m.is_empty());
        m.insert(0x1000, 5);
        m.insert(0x2000, 9);
        assert_eq!(m.get(0x1000), Some(5));
        assert_eq!(m.get(0x2000), Some(9));
        assert_eq!(m.get(0x3000), None);
        m.insert(0x1000, 42); // younger store to the same address
        assert_eq!(m.get(0x1000), Some(42));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn addr_map_remove_if_respects_value() {
        let mut m = AddrMap::new();
        m.insert(0x40, 3);
        assert!(!m.remove_if(0x40, 99), "wrong seq must not evict");
        assert_eq!(m.get(0x40), Some(3));
        assert!(m.remove_if(0x40, 3));
        assert_eq!(m.get(0x40), None);
        assert!(!m.remove_if(0x40, 3), "double remove is a no-op");
        assert!(m.is_empty());
    }

    #[test]
    fn addr_map_grows_and_keeps_everything() {
        let mut m = AddrMap::new();
        // Strided addresses, well past the initial capacity.
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 64), Some(i), "addr {:#x}", i * 64);
        }
    }

    #[test]
    fn addr_map_backward_shift_keeps_chains_reachable() {
        // Build clustered keys (same stride ⇒ adjacent probe chains),
        // delete from the middle, and verify every survivor stays
        // reachable — the failure mode tombstone-free deletion must avoid.
        let mut m = AddrMap::new();
        let keys: Vec<u64> = (0..500).map(|i| i * 8).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u64);
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(m.remove_if(k, i as u64));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(i as u64), "lost key {k:#x}");
            }
        }
    }

    #[test]
    fn addr_map_churn_matches_std_hashmap() {
        use std::collections::HashMap;
        // Deterministic pseudo-random churn cross-checked against the
        // reference implementation the engine used to rely on.
        let mut m = AddrMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for round in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 4096 * 8;
            match state % 3 {
                0 | 1 => {
                    m.insert(key, round);
                    reference.insert(key, round);
                }
                _ => {
                    let expect = reference.get(&key).copied();
                    assert_eq!(m.get(key), expect);
                    if let Some(v) = expect {
                        assert!(m.remove_if(key, v));
                        reference.remove(&key);
                    }
                }
            }
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }
}
