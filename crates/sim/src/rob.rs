//! Reorder buffer (in-order dispatch and retirement bookkeeping).

use std::collections::VecDeque;

use mcd_workloads::OpClass;

/// One reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobEntry {
    /// Dynamic sequence number of the instruction.
    pub seq: u64,
    /// Operation class (decides which register pool it holds).
    pub class: OpClass,
    /// Data address for stores, so retirement can prune the engine's
    /// store-forwarding map; `None` for everything else.
    pub addr: Option<u64>,
}

impl RobEntry {
    /// Whether the entry holds a physical integer register.
    pub fn holds_int_reg(&self) -> bool {
        self.class.produces_value() && !self.class.is_fp()
    }

    /// Whether the entry holds a physical floating-point register.
    pub fn holds_fp_reg(&self) -> bool {
        self.class.produces_value() && self.class.is_fp()
    }
}

/// A bounded in-order reorder buffer.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty (pipeline drained).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ROB is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Oldest (next-to-retire) entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Appends a dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "push into full ROB");
        self.entries.push_back(entry);
    }

    /// Retires the head entry.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is empty.
    pub fn retire_head(&mut self) -> RobEntry {
        self.entries.pop_front().expect("retire from empty ROB")
    }

    /// Serializes the in-flight entries (capacity comes from construction).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_u64(e.seq);
            w.put_u8(e.class.index());
            w.put_opt_u64(e.addr);
        }
    }

    /// Restores state captured by [`Rob::save_state`] into a ROB of the
    /// same capacity.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let len = r.take_usize()?;
        if len > self.capacity {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "ROB length {len} exceeds capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..len {
            let seq = r.take_u64()?;
            let class_idx = r.take_u8()?;
            let class = OpClass::from_index(class_idx).ok_or_else(|| {
                mcd_snap::SnapError::Mismatch(format!("ROB op class index {class_idx} invalid"))
            })?;
            let addr = r.take_opt_u64()?;
            self.entries.push_back(RobEntry { seq, class, addr });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut rob = Rob::new(4);
        for i in 0..3 {
            rob.push(RobEntry {
                seq: i,
                class: OpClass::IntAlu,
                addr: None,
            });
        }
        assert_eq!(rob.head().map(|e| e.seq), Some(0));
        assert_eq!(rob.retire_head().seq, 0);
        assert_eq!(rob.retire_head().seq, 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn fullness_tracks_capacity() {
        let mut rob = Rob::new(2);
        assert!(!rob.is_full());
        rob.push(RobEntry {
            seq: 0,
            class: OpClass::Load,
            addr: None,
        });
        rob.push(RobEntry {
            seq: 1,
            class: OpClass::Store,
            addr: None,
        });
        assert!(rob.is_full());
    }

    #[test]
    fn register_holding_predicates() {
        let int = RobEntry {
            seq: 0,
            class: OpClass::IntAlu,
            addr: None,
        };
        let fp = RobEntry {
            seq: 1,
            class: OpClass::FpMul,
            addr: None,
        };
        let ld = RobEntry {
            seq: 2,
            class: OpClass::Load,
            addr: None,
        };
        let st = RobEntry {
            seq: 3,
            class: OpClass::Store,
            addr: None,
        };
        let br = RobEntry {
            seq: 4,
            class: OpClass::Branch,
            addr: None,
        };
        assert!(int.holds_int_reg() && !int.holds_fp_reg());
        assert!(fp.holds_fp_reg() && !fp.holds_int_reg());
        assert!(ld.holds_int_reg(), "loads write an integer register here");
        assert!(!st.holds_int_reg() && !st.holds_fp_reg());
        assert!(!br.holds_int_reg() && !br.holds_fp_reg());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn overfull_push_panics() {
        let mut rob = Rob::new(1);
        rob.push(RobEntry {
            seq: 0,
            class: OpClass::IntAlu,
            addr: None,
        });
        rob.push(RobEntry {
            seq: 1,
            class: OpClass::IntAlu,
            addr: None,
        });
    }

    #[test]
    #[should_panic(expected = "empty ROB")]
    fn empty_retire_panics() {
        let mut rob = Rob::new(1);
        let _ = rob.retire_head();
    }
}
