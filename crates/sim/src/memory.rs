//! External main memory: an asynchronous, frequency-independent domain.
//!
//! The paper treats main memory as a separate external clock domain not
//! controlled by the processor; its latency is fixed in wall-clock time
//! (Table 1: "80 ns first chunk, 2 ns inter-chunk"), which is what makes
//! memory-bound codes insensitive to LS-domain frequency.

use mcd_power::TimePs;

/// The fixed-latency main-memory model.
#[derive(Debug, Clone, PartialEq)]
pub struct MainMemory {
    first_chunk: TimePs,
    inter_chunk: TimePs,
    chunks: u32,
    accesses: u64,
}

impl MainMemory {
    /// Creates a memory with the given chunk latencies and line transfer
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn new(first_chunk: TimePs, inter_chunk: TimePs, chunks: u32) -> Self {
        assert!(chunks > 0, "line transfers need at least one chunk");
        MainMemory {
            first_chunk,
            inter_chunk,
            chunks,
            accesses: 0,
        }
    }

    /// Latency of a full line fill, independent of any domain frequency.
    pub fn line_latency(&self) -> TimePs {
        self.first_chunk + self.inter_chunk * (self.chunks - 1) as u64
    }

    /// Records an access and returns its completion time.
    pub fn access(&mut self, now: TimePs) -> TimePs {
        self.accesses += 1;
        now + self.line_latency()
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Serializes the access counter (latencies come from construction).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.accesses);
    }

    /// Restores state captured by [`MainMemory::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.accesses = r.take_u64()?;
        Ok(())
    }
}

impl Default for MainMemory {
    /// The Table 1 memory: 80 ns + 3 × 2 ns.
    fn default() -> Self {
        MainMemory::new(TimePs::from_ns(80), TimePs::from_ns(2), 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_line_latency_is_86ns() {
        let m = MainMemory::default();
        assert_eq!(m.line_latency(), TimePs::from_ns(86));
    }

    #[test]
    fn access_is_frequency_independent_offset() {
        let mut m = MainMemory::default();
        let done = m.access(TimePs::from_ns(100));
        assert_eq!(done, TimePs::from_ns(186));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn single_chunk_memory_has_no_inter_latency() {
        let m = MainMemory::new(TimePs::from_ns(50), TimePs::from_ns(5), 1);
        assert_eq!(m.line_latency(), TimePs::from_ns(50));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        let _ = MainMemory::new(TimePs::from_ns(80), TimePs::from_ns(2), 0);
    }
}
