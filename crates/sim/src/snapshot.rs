//! Machine-state snapshots: pausing a run between events and resuming it
//! elsewhere, bit-identically.
//!
//! A snapshot captures every piece of evolving simulation state — domain
//! clocks (including their jitter-stream positions), regulators, energy
//! meters, the pipeline (fetch buffer, ROB, issue queues, free lists,
//! scoreboards), the memory hierarchy, the branch predictor, all metrics,
//! the event-scheduler population (per-domain sleep slots with their
//! frozen tie-break ranks derive from these), the controllers, and the
//! trace generator's RNG position. Static configuration (the
//! [`crate::SimConfig`], the VF curve, cache geometry) is *not* stored:
//! a restore target is built through the normal constructor with the same
//! configuration, and the snapshot overwrites only what evolves. A
//! configuration hash in the header rejects mismatched restores early.
//!
//! Snapshots are only taken *between* events — [`crate::Machine`]'s
//! `try_advance_traced` pauses at a retired-instruction boundary, at
//! which point the per-tick scratch buffers are provably empty — so no
//! transient state needs encoding.
//!
//! The encoding is [`mcd_snap`]'s little-endian fixed-width format; all
//! `f64` state round-trips through `to_bits`, so a restored run continues
//! with bit-identical arithmetic.

use mcd_snap::{SnapReader, SnapResult, SnapWriter};

use crate::config::SimConfig;

/// Snapshot file magic: `MCDS` as a little-endian u32.
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"MCDS");

/// Bump whenever the snapshot layout changes; restores of other versions
/// are rejected, never reinterpreted.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// A workload source whose read position can be captured and restored.
///
/// Implemented by [`mcd_workloads::TraceGenerator`]; any other trace
/// source used with snapshots must serialize enough state that iteration
/// after a restore yields exactly the ops an uninterrupted run would
/// have produced.
pub trait SnapshotSource {
    /// Serializes the source's evolving read state.
    fn save_state(&self, w: &mut SnapWriter);
    /// Restores state captured by [`SnapshotSource::save_state`] into a
    /// freshly-constructed source of the same specification.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()>;
}

impl SnapshotSource for mcd_workloads::TraceGenerator {
    fn save_state(&self, w: &mut SnapWriter) {
        mcd_workloads::TraceGenerator::save_state(self, w);
    }
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        mcd_workloads::TraceGenerator::load_state(self, r)
    }
}

/// A structural fingerprint of a [`SimConfig`], stored in every snapshot
/// header so a restore into a differently-configured machine fails with a
/// named mismatch instead of corrupted state.
///
/// FNV-1a over the config's `Debug` rendering: every field participates
/// (the derive prints them all), and `f64` fields print with
/// shortest-round-trip precision, so distinct configurations hash
/// distinctly for all practical purposes.
pub fn config_hash(cfg: &SimConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_distinguishes_configs() {
        let a = SimConfig::default();
        let mut b = SimConfig::default();
        b.rob_size += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a), config_hash(&SimConfig::default()));
    }

    #[test]
    fn magic_is_ascii_mcds() {
        assert_eq!(SNAPSHOT_MAGIC.to_le_bytes(), *b"MCDS");
    }
}
