//! Shared, memoized clock-jitter sample streams.
//!
//! Every [`DomainClock`](crate::clock::DomainClock) perturbs its edges with
//! Box–Muller normal samples drawn from a seeded RNG. The standard normal
//! variate `z` depends only on the RNG seed — the clock's σ enters
//! afterwards, as `(z * σ).clamp(±3σ)` — and a sweep re-runs the same four
//! clock seeds hundreds of times, so the `z` sequences are identical across
//! every run in the process. This module computes each seed's sequence once
//! and shares it: a clock edge costs an array read instead of two RNG draws,
//! a `ln`, a `sqrt`, and a `cos`.
//!
//! Bit-identicality: the cached values are produced by *exactly* the
//! per-call computation the clock used to perform (same RNG, same draw
//! order, same expression), so consuming the stream yields the same f64s in
//! the same order as sampling inline. Clocks with σ = 0 never consume the
//! RNG at all — callers must keep that check in front of the cursor, which
//! is why [`JitterCursor::new`] is only invoked for jittered clocks.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal values per lazily-generated chunk.
const CHUNK: usize = 4096;

/// One seed's memoized standard-normal sequence, extended on demand.
struct Stream {
    inner: Mutex<StreamInner>,
}

struct StreamInner {
    /// RNG positioned immediately after the last generated chunk.
    rng: StdRng,
    chunks: Vec<Arc<[f64]>>,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Stream {
            inner: Mutex::new(StreamInner {
                rng: StdRng::seed_from_u64(seed),
                chunks: Vec::new(),
            }),
        }
    }

    /// The `idx`-th chunk, generating forward as needed.
    fn chunk(&self, idx: usize) -> Arc<[f64]> {
        let mut g = self.inner.lock().expect("jitter stream poisoned");
        while g.chunks.len() <= idx {
            let mut buf = Vec::with_capacity(CHUNK);
            for _ in 0..CHUNK {
                // The exact Box–Muller expression the clock used to inline.
                let u1: f64 = g.rng.gen::<f64>().max(1e-12);
                let u2: f64 = g.rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                buf.push(z);
            }
            g.chunks.push(buf.into());
        }
        g.chunks[idx].clone()
    }
}

/// Process-wide stream registry, keyed by RNG seed.
fn stream_for(seed: u64) -> Arc<Stream> {
    static STREAMS: OnceLock<Mutex<HashMap<u64, Arc<Stream>>>> = OnceLock::new();
    let map = STREAMS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = map.lock().expect("jitter registry poisoned");
    g.entry(seed)
        .or_insert_with(|| Arc::new(Stream::new(seed)))
        .clone()
}

/// A clock's private read position in a shared seed stream.
///
/// `Clone` replays from the same position, matching the semantics of
/// cloning the RNG it replaces.
#[derive(Clone)]
pub(crate) struct JitterCursor {
    stream: Arc<Stream>,
    chunk: Arc<[f64]>,
    chunk_idx: usize,
    pos: usize,
}

impl std::fmt::Debug for JitterCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitterCursor")
            .field("chunk_idx", &self.chunk_idx)
            .field("pos", &self.pos)
            .finish()
    }
}

impl JitterCursor {
    /// A cursor at the start of `seed`'s stream.
    pub(crate) fn new(seed: u64) -> Self {
        let stream = stream_for(seed);
        let chunk = stream.chunk(0);
        JitterCursor {
            stream,
            chunk,
            chunk_idx: 0,
            pos: 0,
        }
    }

    /// The cursor's read position as `(chunk_idx, pos)` for snapshots.
    pub(crate) fn position(&self) -> (u64, u64) {
        (self.chunk_idx as u64, self.pos as u64)
    }

    /// Repositions the cursor (chunks regenerate forward on demand, so any
    /// position is reachable from a fresh cursor). `pos == CHUNK` is legal:
    /// it is the transient state right before a refill.
    pub(crate) fn seek(&mut self, chunk_idx: u64, pos: u64) -> mcd_snap::SnapResult<()> {
        let (chunk_idx, pos) = (chunk_idx as usize, pos as usize);
        if pos > CHUNK {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "jitter cursor pos {pos} exceeds chunk size {CHUNK}"
            )));
        }
        self.chunk = self.stream.chunk(chunk_idx);
        self.chunk_idx = chunk_idx;
        self.pos = pos;
        Ok(())
    }

    /// The next standard-normal value in the stream.
    #[inline]
    pub(crate) fn next_z(&mut self) -> f64 {
        if self.pos == CHUNK {
            self.chunk_idx += 1;
            self.chunk = self.stream.chunk(self.chunk_idx);
            self.pos = 0;
        }
        let z = self.chunk[self.pos];
        self.pos += 1;
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference inline computation the stream replaces.
    fn inline_z(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn stream_matches_inline_box_muller_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut cursor = JitterCursor::new(0x5eed);
        // Cross two chunk boundaries to cover the refill path.
        for i in 0..(2 * CHUNK + 17) {
            let expect = inline_z(&mut rng);
            let got = cursor.next_z();
            assert_eq!(expect.to_bits(), got.to_bits(), "draw {i}");
        }
    }

    #[test]
    fn independent_cursors_share_one_stream() {
        let mut a = JitterCursor::new(0x1234_5678);
        let mut b = JitterCursor::new(0x1234_5678);
        for _ in 0..100 {
            assert_eq!(a.next_z().to_bits(), b.next_z().to_bits());
        }
        assert!(Arc::ptr_eq(&a.stream, &b.stream));
    }

    #[test]
    fn seek_restores_an_arbitrary_position() {
        let mut a = JitterCursor::new(0xabcd);
        for _ in 0..(CHUNK + 37) {
            a.next_z();
        }
        let (ci, p) = a.position();
        let mut b = JitterCursor::new(0xabcd);
        b.seek(ci, p).unwrap();
        for i in 0..200 {
            assert_eq!(a.next_z().to_bits(), b.next_z().to_bits(), "draw {i}");
        }
        assert!(b.seek(0, CHUNK as u64 + 1).is_err());
    }

    #[test]
    fn distinct_seeds_get_distinct_sequences() {
        let mut a = JitterCursor::new(1);
        let mut b = JitterCursor::new(2);
        let same = (0..32).filter(|_| a.next_z() == b.next_z()).count();
        assert!(same < 32, "different seeds should diverge");
    }
}
