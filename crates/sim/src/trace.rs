//! Controller observability: structured decision events and trace sinks.
//!
//! The paper's contribution is controller *dynamics* — deviation windows
//! entered and left, time-delay relays armed, fired and reset, frequency
//! steps taken per domain — none of which is visible in a final
//! energy/performance report. This module defines the event taxonomy and
//! the sink interface the simulator emits those events through.
//!
//! The design is zero-cost when disabled: [`Machine::run`] drives a
//! [`NullSink`] whose [`TraceSink::enabled`] is a constant `false`, so
//! every event-construction site is guarded by a branch the optimizer
//! deletes. Always-on *counters* (relay firings, frequency steps,
//! reaction times, sync-interface stalls — see [`crate::metrics::Metrics`])
//! are accumulated independently of the sink, because the harness reports
//! them even when nobody asked for a full event trace.
//!
//! [`Machine::run`]: crate::engine::Machine::run

use mcd_power::{OpIndex, TimePs};

use crate::config::DomainId;

/// Which controller queue signal an event refers to (the paper's two
/// inputs: relative occupancy `q − q_ref` and the difference `Δq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// The relative-occupancy signal `q − q_ref`.
    Occupancy,
    /// The occupancy-difference signal `q_i − q_{i−1}`.
    Delta,
}

impl SignalKind {
    /// Dense index (0 = occupancy, 1 = delta) for counter arrays.
    pub fn index(self) -> usize {
        match self {
            SignalKind::Occupancy => 0,
            SignalKind::Delta => 1,
        }
    }

    fn label(self) -> &'static str {
        match self {
            SignalKind::Occupancy => "occupancy",
            SignalKind::Delta => "delta",
        }
    }
}

/// Direction of a pending or executed frequency action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepDir {
    /// Toward higher frequency/voltage.
    Up,
    /// Toward lower frequency/voltage.
    Down,
}

impl StepDir {
    fn label(self) -> &'static str {
        match self {
            StepDir::Up => "up",
            StepDir::Down => "down",
        }
    }
}

/// Why a time-delay relay returned to idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetReason {
    /// The signal fell back inside its deviation window before the delay
    /// expired (the resettable-relay noise filter working as designed).
    BackInside,
    /// The signal crossed to the other side of the window; counting
    /// restarts in the new direction.
    SideFlip,
    /// Both relays fired in opposite directions in the same sample and
    /// the scheduler cancelled them.
    Cancelled,
    /// The fired trigger was confirmed into an action; the relay is held
    /// for the switching time `T_s`.
    Acted,
}

impl ResetReason {
    fn label(self) -> &'static str {
        match self {
            ResetReason::BackInside => "back-inside",
            ResetReason::SideFlip => "side-flip",
            ResetReason::Cancelled => "cancelled",
            ResetReason::Acted => "acted",
        }
    }
}

/// A controller-internal decision event.
///
/// Controllers record these without knowing which domain they drive; the
/// machine wraps them into [`TraceEvent::Controller`] with the domain
/// attached when it drains them each sampling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CtrlEvent {
    /// A queue signal left its deviation window (deviation onset).
    WindowEnter {
        /// Sample time.
        at: TimePs,
        /// Which signal left its window.
        signal: SignalKind,
        /// The signal value that triggered the exit from the window.
        value: f64,
        /// Raw queue occupancy at that sample.
        occupancy: u32,
        /// Side of the window the signal is on.
        dir: StepDir,
    },
    /// A queue signal came back inside its deviation window.
    WindowExit {
        /// Sample time.
        at: TimePs,
        /// Which signal returned inside its window.
        signal: SignalKind,
        /// The signal value now inside the window.
        value: f64,
        /// Raw queue occupancy at that sample.
        occupancy: u32,
    },
    /// The time-delay relay started counting toward an action.
    RelayArm {
        /// Sample time.
        at: TimePs,
        /// Which signal's relay armed.
        signal: SignalKind,
        /// Direction the relay counts toward.
        dir: StepDir,
        /// Delay still to accumulate before firing, in basic-delay units
        /// (sampling periods at unit signal).
        remaining: f64,
    },
    /// The relay's delay expired: an action in `dir` is proposed to the
    /// scheduler.
    RelayFire {
        /// Sample time.
        at: TimePs,
        /// Which signal's relay fired.
        signal: SignalKind,
        /// Proposed action direction.
        dir: StepDir,
    },
    /// The relay returned to idle.
    RelayReset {
        /// Sample time.
        at: TimePs,
        /// Which signal's relay reset.
        signal: SignalKind,
        /// Why it reset.
        why: ResetReason,
    },
}

impl CtrlEvent {
    /// The sample time the event was recorded at.
    pub fn at(&self) -> TimePs {
        match *self {
            CtrlEvent::WindowEnter { at, .. }
            | CtrlEvent::WindowExit { at, .. }
            | CtrlEvent::RelayArm { at, .. }
            | CtrlEvent::RelayFire { at, .. }
            | CtrlEvent::RelayReset { at, .. } => at,
        }
    }

    fn json_body(&self) -> String {
        match *self {
            CtrlEvent::WindowEnter {
                at,
                signal,
                value,
                occupancy,
                dir,
            } => format!(
                "\"t_ps\":{},\"kind\":\"window_enter\",\"signal\":\"{}\",\"value\":{},\
                 \"occupancy\":{},\"dir\":\"{}\"",
                at.as_ps(),
                signal.label(),
                json_f64(value),
                occupancy,
                dir.label()
            ),
            CtrlEvent::WindowExit {
                at,
                signal,
                value,
                occupancy,
            } => format!(
                "\"t_ps\":{},\"kind\":\"window_exit\",\"signal\":\"{}\",\"value\":{},\
                 \"occupancy\":{}",
                at.as_ps(),
                signal.label(),
                json_f64(value),
                occupancy
            ),
            CtrlEvent::RelayArm {
                at,
                signal,
                dir,
                remaining,
            } => format!(
                "\"t_ps\":{},\"kind\":\"relay_arm\",\"signal\":\"{}\",\"dir\":\"{}\",\
                 \"remaining\":{}",
                at.as_ps(),
                signal.label(),
                dir.label(),
                json_f64(remaining)
            ),
            CtrlEvent::RelayFire { at, signal, dir } => format!(
                "\"t_ps\":{},\"kind\":\"relay_fire\",\"signal\":\"{}\",\"dir\":\"{}\"",
                at.as_ps(),
                signal.label(),
                dir.label()
            ),
            CtrlEvent::RelayReset { at, signal, why } => format!(
                "\"t_ps\":{},\"kind\":\"relay_reset\",\"signal\":\"{}\",\"why\":\"{}\"",
                at.as_ps(),
                signal.label(),
                why.label()
            ),
        }
    }
}

/// A machine-level trace event: a controller decision in some domain, a
/// frequency/voltage step, or a periodic queue-occupancy histogram.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A controller decision in `domain`.
    Controller {
        /// The domain whose controller recorded the event.
        domain: DomainId,
        /// The decision event.
        event: CtrlEvent,
    },
    /// A frequency/voltage retarget was issued to `domain`'s regulator.
    FreqStep {
        /// Sample time the retarget was requested.
        at: TimePs,
        /// The retargeted domain.
        domain: DomainId,
        /// Operating point before the step.
        from: OpIndex,
        /// Operating point being slewed toward.
        to: OpIndex,
        /// Frequency before the step, MHz.
        from_mhz: f64,
        /// Target frequency, MHz.
        to_mhz: f64,
        /// Supply voltage before the step, mV.
        from_mv: f64,
        /// Target supply voltage, mV.
        to_mv: f64,
    },
    /// Cumulative queue-occupancy histogram snapshot for `domain`
    /// (emitted periodically and once at the end of a run; `counts[i]` is
    /// the number of samples that observed occupancy `i`).
    QueueHistogram {
        /// Sample time of the snapshot.
        at: TimePs,
        /// The observed domain.
        domain: DomainId,
        /// Sampling periods elapsed so far.
        samples: u64,
        /// Occupancy counts, indexed by occupancy (length = capacity + 1).
        counts: Vec<u64>,
    },
}

impl TraceEvent {
    /// Direction of a frequency step (`None` for other event kinds).
    pub fn step_dir(&self) -> Option<StepDir> {
        match self {
            TraceEvent::FreqStep { from, to, .. } => Some(if to.0 > from.0 {
                StepDir::Up
            } else {
                StepDir::Down
            }),
            _ => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::Controller { domain, event } => {
                format!("{{\"domain\":\"{domain}\",{}}}", event.json_body())
            }
            TraceEvent::FreqStep {
                at,
                domain,
                from,
                to,
                from_mhz,
                to_mhz,
                from_mv,
                to_mv,
            } => format!(
                "{{\"domain\":\"{domain}\",\"t_ps\":{},\"kind\":\"freq_step\",\
                 \"dir\":\"{}\",\"from_idx\":{},\"to_idx\":{},\"from_mhz\":{},\
                 \"to_mhz\":{},\"from_mv\":{},\"to_mv\":{}}}",
                at.as_ps(),
                self.step_dir().expect("freq step has a direction").label(),
                from.0,
                to.0,
                json_f64(*from_mhz),
                json_f64(*to_mhz),
                json_f64(*from_mv),
                json_f64(*to_mv)
            ),
            TraceEvent::QueueHistogram {
                at,
                domain,
                samples,
                counts,
            } => {
                let body: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "{{\"domain\":\"{domain}\",\"t_ps\":{},\"kind\":\"queue_histogram\",\
                     \"samples\":{},\"counts\":[{}]}}",
                    at.as_ps(),
                    samples,
                    body.join(",")
                )
            }
        }
    }
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; the simulator
/// never produces them in events, but clamp defensively).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// The machine checks [`TraceSink::enabled`] before building an event, so
/// a sink that statically returns `false` (the [`NullSink`]) costs
/// nothing: the optimizer removes the entire construction site.
pub trait TraceSink {
    /// Whether this sink wants events at all. Checked before events are
    /// built; defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Observes a resumable state snapshot taken between events (the
    /// sharded runner drops one at every shard boundary). `retired` is
    /// the machine's retired-instruction count at the snapshot point.
    /// Sinks that don't build a seekable record ignore these; the
    /// default is a no-op, so snapshots never perturb event streams.
    fn record_anchor(&mut self, _retired: u64, _snapshot: &[u8]) {}
}

/// The disabled sink: records nothing, and reports itself disabled so
/// event construction is compiled out of the sampling path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory — the building block for tests and for the
/// harness's JSON-lines writer.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        assert!(s.enabled());
        let a = TraceEvent::Controller {
            domain: DomainId::Int,
            event: CtrlEvent::RelayFire {
                at: TimePs::from_ns(4),
                signal: SignalKind::Occupancy,
                dir: StepDir::Down,
            },
        };
        let b = TraceEvent::QueueHistogram {
            at: TimePs::from_ns(8),
            domain: DomainId::Fp,
            samples: 2,
            counts: vec![1, 1, 0],
        };
        s.record(&a);
        s.record(&b);
        assert_eq!(s.events(), &[a.clone(), b.clone()]);
        assert_eq!(s.into_events(), vec![a, b]);
    }

    #[test]
    fn step_dir_derives_from_indices() {
        let up = TraceEvent::FreqStep {
            at: TimePs::ZERO,
            domain: DomainId::Int,
            from: OpIndex(3),
            to: OpIndex(4),
            from_mhz: 255.0,
            to_mhz: 257.5,
            from_mv: 650.0,
            to_mv: 652.0,
        };
        assert_eq!(up.step_dir(), Some(StepDir::Up));
        let hist = TraceEvent::QueueHistogram {
            at: TimePs::ZERO,
            domain: DomainId::Int,
            samples: 0,
            counts: vec![],
        };
        assert_eq!(hist.step_dir(), None);
    }

    #[test]
    fn json_lines_are_wellformed_objects() {
        let events = [
            TraceEvent::Controller {
                domain: DomainId::Ls,
                event: CtrlEvent::WindowEnter {
                    at: TimePs::from_ns(12),
                    signal: SignalKind::Occupancy,
                    value: -4.0,
                    occupancy: 0,
                    dir: StepDir::Down,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Ls,
                event: CtrlEvent::RelayReset {
                    at: TimePs::from_ns(16),
                    signal: SignalKind::Delta,
                    why: ResetReason::BackInside,
                },
            },
            TraceEvent::QueueHistogram {
                at: TimePs::from_ns(20),
                domain: DomainId::Fp,
                samples: 5,
                counts: vec![3, 2],
            },
        ];
        for e in &events {
            let j = e.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains("\"domain\":\"LS\"") || j.contains("\"domain\":\"FP\""));
            assert!(j.contains("\"kind\":\""), "{j}");
        }
        assert!(events[0].to_json().contains("\"value\":-4"));
        assert!(events[2].to_json().contains("\"counts\":[3,2]"));
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
