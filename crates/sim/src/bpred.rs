//! Combined branch predictor (Table 1: bimodal + 2-level, chooser, BTB).

/// A saturating 2-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Counter2(u8);

impl Counter2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The combined predictor of Table 1: a 1024-entry bimodal table, a
/// 2-level gshare-style predictor (10-bit global history into a 1024-entry
/// pattern table), a 4096-entry chooser, and a 4096-set 2-way BTB
/// (modeled for capacity/energy accounting only; targets are implicit in
/// trace-driven mode).
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<Counter2>,
    pattern: Vec<Counter2>,
    chooser: Vec<Counter2>,
    history: u16,
    history_bits: u32,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Builds the Table 1 configuration.
    pub fn table1() -> Self {
        BranchPredictor::new(1024, 1024, 10, 4096)
    }

    /// Builds a predictor with the given table sizes (all powers of two)
    /// and global-history length.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two or the history is
    /// longer than 16 bits.
    pub fn new(bimodal: usize, pattern: usize, history_bits: u32, chooser: usize) -> Self {
        assert!(
            bimodal.is_power_of_two(),
            "bimodal size must be a power of two"
        );
        assert!(
            pattern.is_power_of_two(),
            "pattern size must be a power of two"
        );
        assert!(
            chooser.is_power_of_two(),
            "chooser size must be a power of two"
        );
        assert!(history_bits <= 16, "history too long");
        BranchPredictor {
            // Weakly-taken initialization: most branches are loop branches,
            // so a cold predictor starting at "taken" mispredicts far less.
            bimodal: vec![Counter2(2); bimodal],
            pattern: vec![Counter2(2); pattern],
            chooser: vec![Counter2(2); chooser],
            history: 0,
            history_bits,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn bimodal_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bimodal.len() - 1)
    }

    fn pattern_idx(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history as u64) as usize) & (self.pattern.len() - 1)
    }

    fn chooser_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        let b = self.bimodal[self.bimodal_idx(pc)].predict();
        let p = self.pattern[self.pattern_idx(pc)].predict();
        if self.chooser[self.chooser_idx(pc)].predict() {
            p
        } else {
            b
        }
    }

    /// Commits the actual outcome, training all tables. Returns whether
    /// the prior prediction for this lookup was correct.
    pub fn update(&mut self, pc: u64, predicted: bool, taken: bool) -> bool {
        let b_idx = self.bimodal_idx(pc);
        let p_idx = self.pattern_idx(pc);
        let c_idx = self.chooser_idx(pc);
        let b_correct = self.bimodal[b_idx].predict() == taken;
        let p_correct = self.pattern[p_idx].predict() == taken;
        self.bimodal[b_idx].update(taken);
        self.pattern[p_idx].update(taken);
        // Chooser trains toward whichever component was right (ties ignored).
        if p_correct != b_correct {
            self.chooser[c_idx].update(p_correct);
        }
        let mask = (1u32 << self.history_bits) - 1;
        self.history = (((self.history as u32) << 1 | taken as u32) & mask) as u16;
        if predicted != taken {
            self.mispredicts += 1;
        }
        predicted == taken
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions committed.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction ratio so far (0 when no lookups).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Serializes all counter tables, the global history, and the stat
    /// counters (table geometry comes from construction).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        for table in [&self.bimodal, &self.pattern, &self.chooser] {
            w.put_seq(table, |w, c| w.put_u8(c.0));
        }
        w.put_u16(self.history);
        w.put_u64(self.lookups);
        w.put_u64(self.mispredicts);
    }

    /// Restores state captured by [`BranchPredictor::save_state`] into a
    /// predictor of the same geometry.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        for (name, table) in [
            ("bimodal", &mut self.bimodal),
            ("pattern", &mut self.pattern),
            ("chooser", &mut self.chooser),
        ] {
            let counters: Vec<u8> = r.take_seq(|r| r.take_u8())?;
            if counters.len() != table.len() {
                return Err(mcd_snap::SnapError::Mismatch(format!(
                    "{name} table holds {} counters, predictor has {}",
                    counters.len(),
                    table.len()
                )));
            }
            for (slot, v) in table.iter_mut().zip(counters) {
                if v > 3 {
                    return Err(mcd_snap::SnapError::Mismatch(format!(
                        "{name} counter value {v} exceeds saturation"
                    )));
                }
                *slot = Counter2(v);
            }
        }
        self.history = r.take_u16()?;
        self.lookups = r.take_u64()?;
        self.mispredicts = r.take_u64()?;
        Ok(())
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2(0);
        for _ in 0..5 {
            c.update(true);
        }
        assert_eq!(c.0, 3);
        for _ in 0..5 {
            c.update(false);
        }
        assert_eq!(c.0, 0);
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = BranchPredictor::table1();
        let pc = 0x400100;
        for _ in 0..8 {
            let p = bp.predict(pc);
            bp.update(pc, p, true);
        }
        assert!(bp.predict(pc), "should have learned taken");
    }

    #[test]
    fn learns_loop_pattern_via_history() {
        // Pattern TTTN repeating: gshare should learn it near-perfectly.
        let mut bp = BranchPredictor::table1();
        let pc = 0x400200;
        let pattern = [true, true, true, false];
        // Train.
        for i in 0..400 {
            let t = pattern[i % 4];
            let p = bp.predict(pc);
            bp.update(pc, p, t);
        }
        // Measure.
        let mut correct = 0;
        for i in 0..400 {
            let t = pattern[i % 4];
            let p = bp.predict(pc);
            if bp.update(pc, p, t) {
                correct += 1;
            }
        }
        assert!(
            correct > 360,
            "only {correct}/400 correct on a loop pattern"
        );
    }

    #[test]
    fn random_branch_mispredicts_substantially() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut bp = BranchPredictor::table1();
        let mut rng = StdRng::seed_from_u64(1);
        let pc = 0x400300;
        for _ in 0..2000 {
            let t = rng.gen::<bool>();
            let p = bp.predict(pc);
            bp.update(pc, p, t);
        }
        assert!(bp.mispredict_rate() > 0.3, "rate {}", bp.mispredict_rate());
        assert!(bp.mispredict_rate() < 0.7);
    }

    #[test]
    fn counts_track_calls() {
        let mut bp = BranchPredictor::table1();
        assert_eq!(bp.mispredict_rate(), 0.0);
        let p = bp.predict(0x10);
        bp.update(0x10, p, !p);
        assert_eq!(bp.lookups(), 1);
        assert_eq!(bp.mispredicts(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let _ = BranchPredictor::new(1000, 1024, 10, 4096);
    }
}
