//! Simulation results and cross-run comparison helpers.

use mcd_power::{Energy, EnergyBreakdown, TimePs};

use crate::config::DomainId;
use crate::metrics::Metrics;

/// Per-domain outcome of a run.
#[derive(Debug, Clone)]
pub struct DomainResult {
    /// Which domain.
    pub domain: DomainId,
    /// Local clock cycles elapsed.
    pub cycles: u64,
    /// Energy consumed, by category.
    pub energy: EnergyBreakdown,
    /// Mean relative frequency over the run (cycle-weighted).
    pub mean_rel_freq: f64,
    /// Voltage/frequency transitions started.
    pub transitions: u64,
}

/// Complete outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Total simulated time.
    pub sim_time: TimePs,
    /// Per-domain results, indexed by [`DomainId::index`].
    pub domains: Vec<DomainResult>,
    /// Voltage-regulator switching energy (all domains).
    pub regulator_energy: Energy,
    /// Optional traces and sampling statistics.
    pub metrics: Metrics,
    /// Peak occupancy reached by each back-end interface queue
    /// (INT, FP, LS) — exact, tracked at every enqueue.
    pub queue_peaks: [usize; 3],
    /// L1 D-cache miss rate observed.
    pub l1d_miss_rate: f64,
    /// L2 miss rate observed (of L2 accesses).
    pub l2_miss_rate: f64,
    /// Branch misprediction rate observed.
    pub mispredict_rate: f64,
}

impl SimResult {
    /// Total energy: all domains plus regulator switching energy.
    pub fn total_energy(&self) -> Energy {
        self.domains
            .iter()
            .map(|d| d.energy.total())
            .sum::<Energy>()
            + self.regulator_energy
    }

    /// Instructions per front-end cycle.
    pub fn ipc(&self) -> f64 {
        let fe = self.domains[DomainId::FrontEnd.index()].cycles;
        if fe == 0 {
            0.0
        } else {
            self.instructions as f64 / fe as f64
        }
    }

    /// The per-domain result for `d`.
    pub fn domain(&self, d: DomainId) -> &DomainResult {
        &self.domains[d.index()]
    }

    /// Energy–delay product (joule·seconds).
    pub fn edp(&self) -> f64 {
        self.total_energy().as_joules() * self.sim_time.as_secs()
    }

    /// Fractional energy saving versus `baseline` (positive = saved).
    pub fn energy_savings_vs(&self, baseline: &SimResult) -> f64 {
        1.0 - self.total_energy() / baseline.total_energy()
    }

    /// Fractional slowdown versus `baseline` (positive = slower).
    pub fn perf_degradation_vs(&self, baseline: &SimResult) -> f64 {
        self.sim_time.as_secs() / baseline.sim_time.as_secs() - 1.0
    }

    /// Fractional energy-delay-product improvement versus `baseline`
    /// (positive = better).
    pub fn edp_improvement_vs(&self, baseline: &SimResult) -> f64 {
        1.0 - self.edp() / baseline.edp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::EnergyBreakdown;

    fn result(energy_j: f64, time_us: u64, insts: u64, fe_cycles: u64) -> SimResult {
        let mut domains: Vec<DomainResult> = DomainId::ALL
            .iter()
            .map(|&d| DomainResult {
                domain: d,
                cycles: 0,
                energy: EnergyBreakdown::default(),
                mean_rel_freq: 1.0,
                transitions: 0,
            })
            .collect();
        domains[0].cycles = fe_cycles;
        domains[0].energy.add(
            mcd_power::EnergyCategory::Clock,
            Energy::from_joules(energy_j),
        );
        SimResult {
            instructions: insts,
            sim_time: TimePs::from_us(time_us),
            domains,
            regulator_energy: Energy::ZERO,
            metrics: Metrics::default(),
            queue_peaks: [0; 3],
            l1d_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            mispredict_rate: 0.0,
        }
    }

    #[test]
    fn ipc_divides_by_frontend_cycles() {
        let r = result(1.0, 100, 2000, 1000);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        let r0 = result(1.0, 100, 2000, 0);
        assert_eq!(r0.ipc(), 0.0);
    }

    #[test]
    fn comparison_helpers() {
        let base = result(1.0, 100, 1000, 500);
        let dvfs = result(0.8, 110, 1000, 550);
        assert!((dvfs.energy_savings_vs(&base) - 0.2).abs() < 1e-9);
        assert!((dvfs.perf_degradation_vs(&base) - 0.1).abs() < 1e-9);
        // EDP: 0.8*110 vs 1.0*100 → improvement = 1 - 0.88 = 0.12.
        assert!((dvfs.edp_improvement_vs(&base) - 0.12).abs() < 1e-9);
    }

    #[test]
    fn total_energy_includes_regulator() {
        let mut r = result(1.0, 100, 1000, 500);
        r.regulator_energy = Energy::from_joules(0.5);
        assert!((r.total_energy().as_joules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn domain_accessor_matches_index() {
        let r = result(1.0, 1, 1, 1);
        assert_eq!(r.domain(DomainId::Fp).domain, DomainId::Fp);
    }
}
