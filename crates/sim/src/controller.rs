//! The DVFS-controller interface.
//!
//! A controller is attached to one back-end domain and is invoked once per
//! queue-signal sampling period (250 MHz in the paper). It sees only its
//! own domain's interface-queue occupancy — the *decentralized* control
//! assumption of Section 3 — and may request a frequency change.

use mcd_power::{OpIndex, TimePs, VfCurve};

use crate::config::DomainId;
use crate::trace::CtrlEvent;

/// One occupancy observation of a domain's interface queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Entries currently in the queue.
    pub occupancy: u32,
    /// Queue capacity.
    pub capacity: u32,
}

impl QueueSample {
    /// Occupancy as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        self.occupancy as f64 / self.capacity as f64
    }
}

/// Read-only context handed to a controller at each sample.
#[derive(Debug, Clone, Copy)]
pub struct ControllerCtx<'a> {
    /// Current simulated time.
    pub now: TimePs,
    /// The domain this controller drives.
    pub domain: DomainId,
    /// The regulator's current target operating point.
    pub current: OpIndex,
    /// The operating-point curve.
    pub curve: &'a VfCurve,
    /// Whether a voltage/frequency transition is still in flight.
    pub in_transition: bool,
    /// Time one single-step transition takes (the paper's `T_s`).
    pub single_step_time: TimePs,
    /// The sampling period (basis of all controller time units).
    pub sample_period: TimePs,
    /// Instructions retired so far (lets fixed-interval schemes frame
    /// intervals in instructions instead of samples).
    pub retired: u64,
}

impl ControllerCtx<'_> {
    /// Relative frequency `f̂ = f/f_max` of the current target point.
    pub fn relative_frequency(&self) -> f64 {
        self.curve
            .point(self.current)
            .frequency
            .relative_to(self.curve.max().frequency)
    }
}

/// A frequency-change request returned by a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvfsAction {
    /// Step the operating point by a signed number of curve steps
    /// (the adaptive scheme's ±1 or ±2).
    Step(i32),
    /// Jump to an absolute operating point (fixed-interval schemes compute
    /// a new setting per interval).
    Set(OpIndex),
}

impl DvfsAction {
    /// Resolves this action to a target index given the current point.
    pub fn resolve(self, current: OpIndex, curve: &VfCurve) -> OpIndex {
        match self {
            DvfsAction::Step(delta) => current.stepped(delta, curve.max_index()),
            DvfsAction::Set(idx) => OpIndex(idx.0.min(curve.max_index().0)),
        }
    }
}

/// An online DVFS control policy for one clock domain.
///
/// Implementations live in `mcd-adaptive` (the paper's contribution) and
/// `mcd-baselines` (attack/decay, PID). A domain with no controller runs
/// at the maximum operating point, which is also the study's baseline.
///
/// `Send` is required so a machine (which owns its controllers) can
/// migrate between worker threads at run-granularity work-steal and
/// shard boundaries; controllers are still driven from exactly one
/// thread at a time.
pub trait DvfsController: std::fmt::Debug + Send {
    /// Called once per sampling period with the domain's queue sample.
    /// Returns a frequency-change request, or `None` to leave the clock
    /// alone.
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction>;

    /// Short scheme name for reports (e.g. `"adaptive"`, `"pid"`).
    fn name(&self) -> &'static str;

    /// Moves any decision events recorded since the last drain into
    /// `out`. Controllers without internal structure worth tracing (the
    /// fixed-interval baselines) keep the default no-op.
    fn drain_events(&mut self, _out: &mut Vec<CtrlEvent>) {}

    /// Serializes the controller's evolving decision state into a machine
    /// snapshot. Stateless controllers keep the default no-op; stateful
    /// ones must override both this and [`DvfsController::load_state`] so
    /// a restored run replays the same decisions.
    fn save_state(&self, _w: &mut mcd_snap::SnapWriter) {}

    /// Restores state captured by [`DvfsController::save_state`] into a
    /// freshly-constructed controller of the same configuration.
    fn load_state(&mut self, _r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::VfCurve;

    #[test]
    fn utilization_is_fractional() {
        let s = QueueSample {
            occupancy: 5,
            capacity: 20,
        };
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn step_action_clamps_at_curve_ends() {
        let curve = VfCurve::mcd_default();
        let max = curve.max_index();
        assert_eq!(DvfsAction::Step(-5).resolve(OpIndex(2), &curve), OpIndex(0));
        assert_eq!(DvfsAction::Step(5).resolve(max, &curve), max);
        assert_eq!(
            DvfsAction::Step(1).resolve(OpIndex(10), &curve),
            OpIndex(11)
        );
    }

    #[test]
    fn set_action_clamps_to_max() {
        let curve = VfCurve::mcd_default();
        assert_eq!(
            DvfsAction::Set(OpIndex(9999)).resolve(OpIndex(0), &curve),
            curve.max_index()
        );
        assert_eq!(
            DvfsAction::Set(OpIndex(7)).resolve(OpIndex(100), &curve),
            OpIndex(7)
        );
    }

    /// A controller usable as a trait object (object safety check) that
    /// always requests one step down.
    #[derive(Debug)]
    struct AlwaysDown;

    impl DvfsController for AlwaysDown {
        fn on_sample(&mut self, _: &ControllerCtx<'_>, _: QueueSample) -> Option<DvfsAction> {
            Some(DvfsAction::Step(-1))
        }
        fn name(&self) -> &'static str {
            "always-down"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let curve = VfCurve::mcd_default();
        let mut c: Box<dyn DvfsController> = Box::new(AlwaysDown);
        let ctx = ControllerCtx {
            now: TimePs::ZERO,
            domain: DomainId::Int,
            current: curve.max_index(),
            curve: &curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired: 0,
        };
        assert!((ctx.relative_frequency() - 1.0).abs() < 1e-12);
        let a = c.on_sample(
            &ctx,
            QueueSample {
                occupancy: 0,
                capacity: 20,
            },
        );
        assert_eq!(a, Some(DvfsAction::Step(-1)));
        assert_eq!(c.name(), "always-down");
    }
}
