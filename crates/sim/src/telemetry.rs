//! Distribution telemetry over the trace-event stream.
//!
//! The always-on [`Metrics`](crate::metrics::Metrics) counters surface
//! only per-domain *means* (e.g. `mean_reaction_time_ns`). This module
//! adds distributions without touching the engine's hot path: a
//! [`TelemetrySink`] sits behind the existing [`TraceSink`] seam,
//! replays the engine's deviation-onset bookkeeping from the events it
//! already emits, and folds every reaction time and queue-occupancy
//! sample into lock-free [`Histogram`]s shared with the caller.
//!
//! Because it is just another sink, the zero-cost story is unchanged:
//! runs driven with [`NullSink`](crate::trace::NullSink) still compile
//! event construction out entirely, and headline report bytes cannot
//! depend on whether telemetry was attached (see the bench crate's
//! `trace_noninterference` suite).

use mcd_power::TimePs;
use mcd_telemetry::Histogram;

use crate::trace::{CtrlEvent, TraceEvent, TraceSink};

/// Shared per-domain distribution accumulators (backend-domain order:
/// INT, FP, LS). All histograms are lock-free; share via `Arc` across
/// worker threads and snapshot at any time.
#[derive(Debug, Default)]
pub struct SimTelemetry {
    /// Reaction time per frequency step, picoseconds, per backend
    /// domain — the distribution behind the counters' mean.
    pub reaction_ps: [Histogram; 3],
    /// Queue occupancy at each controller sample, per backend domain.
    pub occupancy: [Histogram; 3],
}

impl SimTelemetry {
    /// Empty accumulators.
    pub fn new() -> SimTelemetry {
        SimTelemetry::default()
    }
}

/// A [`TraceSink`] that derives reaction-time and occupancy
/// distributions from the event stream and forwards every event to an
/// inner sink (use [`NullSink`](crate::trace::NullSink) when only the
/// histograms are wanted).
///
/// Reaction times are reconstructed with exactly the engine's rule
/// (`observe_ctrl_event` / `note_freq_step`): a domain's onset is the
/// first `window_enter` per signal while none is pending, `window_exit`
/// clears that signal's onset, and a `freq_step` closes the episode at
/// the earliest pending onset across both signals.
#[derive(Debug)]
pub struct TelemetrySink<'a, S> {
    telemetry: &'a SimTelemetry,
    inner: S,
    onsets: [[Option<TimePs>; 2]; 3],
    /// Last cumulative occupancy-histogram snapshot seen per domain;
    /// `queue_histogram` events carry running totals, so each event
    /// contributes its delta.
    seen_occupancy: [Vec<u64>; 3],
}

impl<'a, S: TraceSink> TelemetrySink<'a, S> {
    /// Wraps `inner`, folding distributions into `telemetry`.
    pub fn new(telemetry: &'a SimTelemetry, inner: S) -> Self {
        TelemetrySink {
            telemetry,
            inner,
            onsets: [[None; 2]; 3],
            seen_occupancy: [Vec::new(), Vec::new(), Vec::new()],
        }
    }

    /// Returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for TelemetrySink<'_, S> {
    fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Controller { domain, event } => {
                let bi = domain.backend_index();
                match *event {
                    CtrlEvent::WindowEnter { at, signal, .. } => {
                        let slot = &mut self.onsets[bi][signal.index()];
                        if slot.is_none() {
                            *slot = Some(at);
                        }
                    }
                    CtrlEvent::WindowExit { signal, .. } => {
                        self.onsets[bi][signal.index()] = None;
                    }
                    _ => {}
                }
            }
            TraceEvent::FreqStep { at, domain, .. } => {
                let bi = domain.backend_index();
                let onset = match (self.onsets[bi][0], self.onsets[bi][1]) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(on) = onset {
                    self.telemetry.reaction_ps[bi].record((*at - on).as_ps());
                    self.onsets[bi] = [None, None];
                }
            }
            TraceEvent::QueueHistogram { domain, counts, .. } => {
                let bi = domain.backend_index();
                let seen = &mut self.seen_occupancy[bi];
                seen.resize(counts.len().max(seen.len()), 0);
                for (occupancy, (&now, prev)) in counts.iter().zip(seen.iter_mut()).enumerate() {
                    let delta = now.saturating_sub(*prev);
                    if delta > 0 {
                        self.telemetry.occupancy[bi].record_n(occupancy as u64, delta);
                    }
                    *prev = now;
                }
            }
        }
        if self.inner.enabled() {
            self.inner.record(event);
        }
    }

    fn record_anchor(&mut self, retired: u64, snapshot: &[u8]) {
        // Anchors carry no distribution signal; pass them straight
        // through so a recording sink behind telemetry still sees them.
        self.inner.record_anchor(retired, snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DomainId;
    use crate::trace::{NullSink, SignalKind, StepDir, VecSink};
    use mcd_power::OpIndex;

    fn enter(domain: DomainId, at_ns: u64, signal: SignalKind) -> TraceEvent {
        TraceEvent::Controller {
            domain,
            event: CtrlEvent::WindowEnter {
                at: TimePs::from_ns(at_ns),
                signal,
                value: 2.0,
                occupancy: 12,
                dir: StepDir::Up,
            },
        }
    }

    fn exit(domain: DomainId, at_ns: u64, signal: SignalKind) -> TraceEvent {
        TraceEvent::Controller {
            domain,
            event: CtrlEvent::WindowExit {
                at: TimePs::from_ns(at_ns),
                signal,
                value: 0.0,
                occupancy: 8,
            },
        }
    }

    fn step(domain: DomainId, at_ns: u64) -> TraceEvent {
        TraceEvent::FreqStep {
            at: TimePs::from_ns(at_ns),
            domain,
            from: OpIndex(3),
            to: OpIndex(4),
            from_mhz: 255.0,
            to_mhz: 257.5,
            from_mv: 650.0,
            to_mv: 652.0,
        }
    }

    #[test]
    fn reaction_time_matches_engine_rule() {
        let telemetry = SimTelemetry::new();
        let mut sink = TelemetrySink::new(&telemetry, NullSink);
        // Occupancy deviates at 10ns, delta at 20ns; the step at 50ns
        // reacts to the *earliest* pending onset: 40ns.
        sink.record(&enter(DomainId::Int, 10, SignalKind::Occupancy));
        sink.record(&enter(DomainId::Int, 20, SignalKind::Delta));
        sink.record(&step(DomainId::Int, 50));
        // A second enter after the step opens a fresh episode; the exit
        // cancels it, so the next step has no onset and records nothing.
        sink.record(&enter(DomainId::Int, 60, SignalKind::Occupancy));
        sink.record(&exit(DomainId::Int, 70, SignalKind::Occupancy));
        sink.record(&step(DomainId::Int, 80));
        let snap = telemetry.reaction_ps[0].snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), TimePs::from_ns(40).as_ps());
        assert!(telemetry.reaction_ps[1].snapshot().is_empty());
    }

    #[test]
    fn repeated_window_enters_keep_the_first_onset() {
        let telemetry = SimTelemetry::new();
        let mut sink = TelemetrySink::new(&telemetry, NullSink);
        sink.record(&enter(DomainId::Fp, 10, SignalKind::Occupancy));
        sink.record(&enter(DomainId::Fp, 30, SignalKind::Occupancy));
        sink.record(&step(DomainId::Fp, 100));
        assert_eq!(
            telemetry.reaction_ps[1].snapshot().sum(),
            TimePs::from_ns(90).as_ps()
        );
    }

    #[test]
    fn occupancy_diffs_cumulative_snapshots() {
        let telemetry = SimTelemetry::new();
        let mut sink = TelemetrySink::new(&telemetry, NullSink);
        let hist = |samples, counts: Vec<u64>| TraceEvent::QueueHistogram {
            at: TimePs::from_ns(samples),
            domain: DomainId::Ls,
            samples,
            counts,
        };
        sink.record(&hist(3, vec![1, 2]));
        sink.record(&hist(7, vec![2, 4, 1]));
        let snap = telemetry.occupancy[2].snapshot();
        assert_eq!(snap.count(), 7, "total samples, not double-counted");
        // occupancy 0 seen 2x, 1 seen 4x, 2 seen 1x.
        assert_eq!(snap.sum(), 4 + 2);
        assert_eq!(snap.max(), 2);
    }

    #[test]
    fn forwards_to_an_enabled_inner_sink() {
        let telemetry = SimTelemetry::new();
        let mut sink = TelemetrySink::new(&telemetry, VecSink::new());
        sink.record(&step(DomainId::Int, 10));
        assert_eq!(sink.into_inner().into_events().len(), 1);
    }
}
