//! Per-domain clock generation with jitter and DVFS-driven periods.

use mcd_power::{DvfsStyle, Frequency, OpIndex, Regulator, TimePs, VfCurve, Voltage};

use crate::jitter::JitterCursor;

/// An independently-generated domain clock.
///
/// Each edge is one local cycle. The period follows the domain's
/// [`Regulator`] (so it shifts continuously during an XScale-style
/// transition), and each edge is perturbed by normally-distributed jitter
/// clamped to ±3σ — the paper's "±10 ps, normally distributed".
#[derive(Debug, Clone)]
pub struct DomainClock {
    regulator: Regulator,
    next_edge: TimePs,
    /// Carries the sub-picosecond part of the period between edges so long
    /// runs do not accumulate rounding drift.
    frac_carry: f64,
    sigma_ps: f64,
    /// Cursor into the process-wide memoized normal stream for this
    /// clock's seed; `None` for jitterless clocks, which never draw
    /// (σ = 0 must not consume random numbers).
    jitter: Option<JitterCursor>,
    edges: u64,
    /// Frequency/voltage/period snapshot, valid while no transition is in
    /// flight. Domains sit at a steady operating point for almost every
    /// edge, so this spares the regulator interpolation and unit
    /// conversions on the simulator's hottest path. Holds exactly the
    /// values the per-call computation returns (never recomputed through a
    /// different formula), and is dropped whenever the regulator could be
    /// retargeted ([`DomainClock::regulator_mut`]).
    steady: Option<Steady>,
}

/// Cached steady-state (non-transitioning) clock properties.
#[derive(Debug, Clone, Copy)]
struct Steady {
    freq: Frequency,
    voltage: Voltage,
    period_ps: f64,
    one_cycle: TimePs,
}

impl DomainClock {
    /// Creates a clock starting at operating point `initial`, first edge at
    /// one period past time zero.
    pub fn new(
        curve: VfCurve,
        style: DvfsStyle,
        initial: OpIndex,
        sigma_ps: f64,
        seed: u64,
    ) -> Self {
        let regulator = Regulator::new(curve, style, initial);
        let period = regulator.frequency_at(TimePs::ZERO).period_ps();
        DomainClock {
            regulator,
            next_edge: TimePs::ZERO.advance_f64(period),
            frac_carry: 0.0,
            sigma_ps,
            jitter: (sigma_ps != 0.0).then(|| JitterCursor::new(seed)),
            edges: 0,
            steady: None,
        }
    }

    /// The cached steady-state snapshot, if valid at `now`; refreshes the
    /// cache when the regulator has settled.
    fn steady_at(&mut self, now: TimePs) -> Option<Steady> {
        if self.regulator.is_transitioning(now) {
            return None;
        }
        if let Some(s) = self.steady {
            return Some(s);
        }
        let freq = self.regulator.frequency_at(now);
        let period_ps = freq.period_ps();
        let s = Steady {
            freq,
            voltage: self.regulator.voltage_at(now),
            period_ps,
            one_cycle: TimePs::ZERO.advance_f64(period_ps),
        };
        self.steady = Some(s);
        Some(s)
    }

    /// Read-only variant of [`DomainClock::steady_at`] for `&self`
    /// accessors: uses the cache only if [`DomainClock::tick`] already
    /// filled it.
    fn steady_ro(&self, now: TimePs) -> Option<Steady> {
        match self.steady {
            Some(s) if !self.regulator.is_transitioning(now) => Some(s),
            _ => None,
        }
    }

    /// The next clock edge.
    pub fn next_edge(&self) -> TimePs {
        self.next_edge
    }

    /// Total edges generated so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// The regulator driving this clock.
    pub fn regulator(&self) -> &Regulator {
        &self.regulator
    }

    /// Mutable access to the regulator (for DVFS retargeting). Drops the
    /// steady-state cache, since the caller may start a transition.
    pub fn regulator_mut(&mut self) -> &mut Regulator {
        self.steady = None;
        &mut self.regulator
    }

    /// Effective frequency at `now`.
    pub fn frequency_at(&self, now: TimePs) -> Frequency {
        match self.steady_ro(now) {
            Some(s) => s.freq,
            None => self.regulator.frequency_at(now),
        }
    }

    /// Supply voltage at `now`.
    pub fn voltage_at(&self, now: TimePs) -> Voltage {
        match self.steady_ro(now) {
            Some(s) => s.voltage,
            None => self.regulator.voltage_at(now),
        }
    }

    /// Consumes the pending edge and schedules the next one.
    ///
    /// Returns the time of the edge that just fired.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called before the pending edge's time has been
    /// reached by the caller's event loop.
    pub fn tick(&mut self) -> TimePs {
        let edge = self.next_edge;
        self.edges += 1;
        let nominal = match self.steady_at(edge) {
            Some(s) => s.period_ps,
            None => self.regulator.frequency_at(edge).period_ps(),
        };
        let period = nominal + self.frac_carry;
        let whole = period.floor();
        self.frac_carry = period - whole;
        let jitter = self.sample_jitter();
        // Jitter perturbs the edge position but never reorders edges.
        let step = (whole + jitter).max(1.0);
        self.next_edge = edge.advance_f64(step);
        edge
    }

    /// Local cycles that elapse per `duration` at the current frequency
    /// (used to convert latency-in-cycles to absolute times).
    pub fn cycles_to_time(&self, cycles: u32, now: TimePs) -> TimePs {
        match self.steady_ro(now) {
            // `period * 1.0 == period`, so the cached one-cycle time is
            // exactly what the computation below rounds to.
            Some(s) if cycles == 1 => s.one_cycle,
            Some(s) => TimePs::ZERO.advance_f64(s.period_ps * cycles as f64),
            None => {
                let period = self.regulator.frequency_at(now).period_ps();
                TimePs::ZERO.advance_f64(period * cycles as f64)
            }
        }
    }

    /// Serializes the clock's evolving state. The VF curve, DVFS style, σ
    /// and jitter seed come from construction; the steady-state cache is a
    /// pure function of the regulator and is rebuilt lazily after restore.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.regulator.save_state(w);
        w.put_u64(self.next_edge.as_ps());
        w.put_f64(self.frac_carry);
        w.put_u64(self.edges);
        match &self.jitter {
            None => w.put_bool(false),
            Some(cursor) => {
                w.put_bool(true);
                let (chunk_idx, pos) = cursor.position();
                w.put_u64(chunk_idx);
                w.put_u64(pos);
            }
        }
    }

    /// Restores state captured by [`DomainClock::save_state`] into a clock
    /// built with the same construction parameters.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.regulator.load_state(r)?;
        self.next_edge = TimePs::new(r.take_u64()?);
        self.frac_carry = r.take_f64()?;
        self.edges = r.take_u64()?;
        let has_jitter = r.take_bool()?;
        if has_jitter != self.jitter.is_some() {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "jitter cursor presence mismatch: snapshot {has_jitter}, clock {}",
                self.jitter.is_some()
            )));
        }
        if let Some(cursor) = self.jitter.as_mut() {
            let chunk_idx = r.take_u64()?;
            let pos = r.take_u64()?;
            cursor.seek(chunk_idx, pos)?;
        }
        self.steady = None;
        Ok(())
    }

    /// Box–Muller normal sample, clamped to ±3σ.
    ///
    /// The standard-normal variate comes from the shared per-seed stream
    /// (see [`crate::jitter`]); only the σ scaling is per-clock. This is
    /// the same value, bit for bit, that drawing and transforming inline
    /// used to produce.
    fn sample_jitter(&mut self) -> f64 {
        match self.jitter.as_mut() {
            None => 0.0,
            Some(cursor) => {
                let z = cursor.next_z();
                (z * self.sigma_ps).clamp(-3.0 * self.sigma_ps, 3.0 * self.sigma_ps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(sigma: f64) -> DomainClock {
        let curve = VfCurve::mcd_default();
        let max = curve.max_index();
        DomainClock::new(curve, DvfsStyle::XScale, max, sigma, 42)
    }

    #[test]
    fn jitterless_clock_ticks_at_exact_period() {
        let mut c = clock(0.0);
        let mut last = TimePs::ZERO;
        for i in 1..=100 {
            let edge = c.tick();
            assert_eq!(edge.as_ps(), i * 1000, "edge {i}");
            assert!(edge > last);
            last = edge;
        }
        assert_eq!(c.edges(), 100);
    }

    #[test]
    fn jitter_stays_within_bounds_and_preserves_order() {
        let mut c = clock(10.0 / 3.0);
        let mut last = TimePs::ZERO;
        for i in 1..=10_000u64 {
            let edge = c.tick();
            assert!(edge > last, "edges must be monotone");
            // Cumulative drift stays near nominal: each edge within ±10ps of
            // its neighbours' spacing.
            let spacing = (edge - last).as_ps() as i64;
            assert!((spacing - 1000).abs() <= 11, "edge {i}: spacing {spacing}");
            last = edge;
        }
    }

    #[test]
    fn frequency_change_lengthens_period() {
        let mut c = clock(0.0);
        // Warm up a few edges at 1 GHz.
        for _ in 0..5 {
            c.tick();
        }
        let now = c.next_edge();
        c.regulator_mut().request(OpIndex(0), now);
        // Drain the transition (~55 us) by ticking until past its end.
        let end = c.regulator().transition_end().expect("transition started");
        let mut edge = TimePs::ZERO;
        while edge < end {
            edge = c.tick();
        }
        let e1 = c.tick();
        let e2 = c.tick();
        // At 250 MHz the period is 4000 ps.
        assert_eq!((e2 - e1).as_ps(), 4000);
    }

    #[test]
    fn cycles_to_time_scales_with_frequency() {
        let c = clock(0.0);
        assert_eq!(c.cycles_to_time(12, TimePs::ZERO).as_ps(), 12_000);
        let curve = VfCurve::mcd_default();
        let slow = DomainClock::new(curve, DvfsStyle::XScale, OpIndex(0), 0.0, 1);
        assert_eq!(slow.cycles_to_time(12, TimePs::ZERO).as_ps(), 48_000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = clock(3.0);
        let mut b = clock(3.0);
        for _ in 0..1000 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn long_run_has_no_systematic_drift() {
        let mut c = clock(10.0 / 3.0);
        let mut edge = TimePs::ZERO;
        let n = 100_000u64;
        for _ in 0..n {
            edge = c.tick();
        }
        // Mean period should be 1000 ps within a tiny tolerance.
        let mean = edge.as_ps() as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 0.5, "mean period {mean}");
    }
}
