//! Cycle-level multiple-clock-domain (MCD) processor simulator.
//!
//! This crate is the reproduction's substitute for the paper's
//! SimpleScalar + Wattch + MCD-extension stack (DESIGN.md, S2). It models
//! the 4-domain GALS processor of Semeraro et al. (paper Figure 1):
//!
//! * **Front end** — fetch (L1 I-cache + combined branch predictor),
//!   decode/rename/dispatch, ROB and in-order retirement; runs at the
//!   fixed maximum frequency, as in the paper's experiments.
//! * **INT** — integer issue queue and ALUs.
//! * **FP** — floating-point issue queue and ALUs.
//! * **LS** — load/store queue, L1 D-cache, L2 cache, and the interface to
//!   the external, frequency-independent main memory.
//!
//! Each domain has an independently-generated clock with ±10 ps
//! normally-distributed jitter; inter-domain queue traffic is subject to a
//! 300 ps synchronization window (data arriving too close to a consumer
//! clock edge is not visible until the next edge). The INT/FP/LS domains
//! can each be driven by a [`controller::DvfsController`] — the paper's
//! adaptive controller lives in the `mcd-adaptive` crate, the
//! fixed-interval baselines in `mcd-baselines`.
//!
//! # Example
//!
//! ```
//! use mcd_sim::{Machine, SimConfig};
//! use mcd_workloads::{registry, TraceGenerator};
//!
//! let cfg = SimConfig::default();
//! let spec = registry::by_name("adpcm_encode").expect("known benchmark");
//! let trace = TraceGenerator::new(&spec, 20_000, 1);
//! let result = Machine::new(cfg, trace).run();
//! assert_eq!(result.instructions, 20_000);
//! assert!(result.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod clock;
pub mod config;
pub mod controller;
pub mod engine;
pub mod error;
mod jitter;
pub mod memory;
pub mod metrics;
pub mod queue;
pub mod regfile;
pub mod result;
pub mod rob;
pub mod scheduler;
pub mod scoreboard;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use clock::DomainClock;
pub use config::{DomainId, SimConfig, SyncModel};
pub use controller::{ControllerCtx, DvfsAction, DvfsController, QueueSample};
pub use engine::Machine;
pub use error::SimError;
pub use metrics::{FreqTracePoint, Metrics};
pub use result::{DomainResult, SimResult};
pub use snapshot::{SnapshotSource, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
pub use telemetry::{SimTelemetry, TelemetrySink};
pub use trace::{
    CtrlEvent, NullSink, ResetReason, SignalKind, StepDir, TraceEvent, TraceSink, VecSink,
};
