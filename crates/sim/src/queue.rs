//! Combined issue/interface queues.
//!
//! In the MCD design the synchronization interface between the front end
//! and each back-end domain is folded into that domain's issue queue
//! (Section 2 of the paper): the front end writes entries across the clock
//! boundary, and an entry becomes *visible* to the consumer domain only
//! after the synchronization window has passed. The occupancy of these
//! queues is the signal every DVFS controller in this study observes.

use mcd_power::TimePs;
use mcd_workloads::MicroOp;

/// One queue entry: a micro-op plus its synchronization and memory-order
/// bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqEntry {
    /// The micro-op itself.
    pub op: MicroOp,
    /// First instant a consumer-domain clock edge may observe this entry
    /// (dispatch time + synchronization window).
    pub visible_at: TimePs,
    /// For loads: sequence number of the youngest older store to the same
    /// address, which must complete first.
    pub mem_dep: Option<u64>,
    /// Cached exact readiness instant, filled by the issue scan once every
    /// producer's completion time is known. Producers' completion times
    /// and the synchronization penalty never change after they are
    /// recorded, so the cached value stays exact for the entry's lifetime
    /// — later scans compare one timestamp instead of re-walking sources.
    pub ready_hint: Option<TimePs>,
}

/// A bounded issue/interface queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
    peak: usize,
}

impl IssueQueue {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Inserts an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — callers must check [`IssueQueue::is_full`].
    pub fn push(&mut self, entry: IqEntry) {
        assert!(!self.is_full(), "push into full issue queue");
        self.entries.push(entry);
        self.peak = self.peak.max(self.entries.len());
    }

    /// Iterates entries in age order (oldest first).
    pub fn iter(&self) -> std::slice::Iter<'_, IqEntry> {
        self.entries.iter()
    }

    /// Mutable iteration in age order — the issue scan uses this to fill
    /// each entry's [`IqEntry::ready_hint`] cache in place.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, IqEntry> {
        self.entries.iter_mut()
    }

    /// Removes the entries at the given **sorted ascending** indices
    /// (as produced by an age-ordered select pass).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the indices are not strictly ascending or out of
    /// range.
    pub fn remove_issued(&mut self, sorted_indices: &[usize]) {
        debug_assert!(sorted_indices.windows(2).all(|w| w[0] < w[1]));
        for &idx in sorted_indices.iter().rev() {
            self.entries.remove(idx);
        }
    }

    /// Serializes the queue's entries and peak (capacity comes from
    /// construction).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            e.save_state(w);
        }
        w.put_u64(self.peak as u64);
    }

    /// Restores state captured by [`IssueQueue::save_state`] into a queue
    /// of the same capacity.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let len = r.take_usize()?;
        if len > self.capacity {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "issue queue length {len} exceeds capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..len {
            self.entries.push(IqEntry::load_state(r)?);
        }
        self.peak = r.take_usize()?;
        Ok(())
    }
}

impl IqEntry {
    /// Serializes the entry for a state snapshot.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.op.save_state(w);
        w.put_u64(self.visible_at.as_ps());
        w.put_opt_u64(self.mem_dep);
        w.put_opt_u64(self.ready_hint.map(TimePs::as_ps));
    }

    /// Decodes an entry written by [`IqEntry::save_state`].
    pub fn load_state(r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<IqEntry> {
        Ok(IqEntry {
            op: MicroOp::load_state(r)?,
            visible_at: TimePs::new(r.take_u64()?),
            mem_dep: r.take_opt_u64()?,
            ready_hint: r.take_opt_u64()?.map(TimePs::new),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_workloads::OpClass;

    fn entry(seq: u64) -> IqEntry {
        IqEntry {
            op: MicroOp::compute(seq, OpClass::IntAlu, 0x400, None, None),
            visible_at: TimePs::ZERO,
            mem_dep: None,
            ready_hint: None,
        }
    }

    #[test]
    fn push_and_capacity_limits() {
        let mut q = IssueQueue::new(2);
        assert!(q.is_empty());
        q.push(entry(0));
        q.push(entry(1));
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "full issue queue")]
    fn overfull_push_panics() {
        let mut q = IssueQueue::new(1);
        q.push(entry(0));
        q.push(entry(1));
    }

    #[test]
    fn remove_issued_preserves_age_order() {
        let mut q = IssueQueue::new(8);
        for i in 0..5 {
            q.push(entry(i));
        }
        q.remove_issued(&[1, 3]);
        let seqs: Vec<u64> = q.iter().map(|e| e.op.seq).collect();
        assert_eq!(seqs, vec![0, 2, 4]);
        assert_eq!(q.peak(), 5, "peak survives removals");
    }

    #[test]
    fn remove_nothing_is_noop() {
        let mut q = IssueQueue::new(4);
        q.push(entry(7));
        q.remove_issued(&[]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = IssueQueue::new(0);
    }
}
