//! Property-based tests for the simulator's components.

use mcd_power::{DvfsStyle, OpIndex, TimePs, VfCurve};
use mcd_sim::bpred::BranchPredictor;
use mcd_sim::cache::Cache;
use mcd_sim::clock::DomainClock;
use mcd_sim::memory::MainMemory;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clock edges are strictly monotone for any jitter level and any
    /// sequence of frequency retargets.
    #[test]
    fn clock_edges_strictly_monotone(
        sigma in 0.0f64..5.0,
        seed in 0u64..1000,
        retargets in proptest::collection::vec((0u16..=320, 1u64..200), 0..8),
    ) {
        let curve = VfCurve::mcd_default();
        let max = curve.max_index();
        let mut clock = DomainClock::new(curve, DvfsStyle::XScale, max, sigma, seed);
        let mut last = TimePs::ZERO;
        let mut plan = retargets.into_iter();
        let mut next_retarget = plan.next();
        for i in 0..2_000u64 {
            if let Some((idx, at_tick)) = next_retarget {
                if i == at_tick {
                    let now = clock.next_edge();
                    clock.regulator_mut().request(OpIndex(idx), now);
                    next_retarget = plan.next();
                }
            }
            let edge = clock.tick();
            prop_assert!(edge > last, "edge {} not after {}", edge, last);
            last = edge;
        }
    }

    /// Cache miss counts never exceed accesses, and a second pass over a
    /// cache-resident working set never misses.
    #[test]
    fn cache_conservation_and_residency(lines in 1u64..64, assoc in proptest::sample::select(vec![1usize, 2, 4])) {
        let mut cache = Cache::new(64 * 1024, assoc, 64);
        // Working set of `lines` distinct lines fits easily in 64 KB.
        for pass in 0..2 {
            for l in 0..lines {
                let hit = cache.access(l * 64);
                if pass == 1 {
                    prop_assert!(hit, "resident line {l} missed on pass 2");
                }
            }
        }
        prop_assert!(cache.misses() <= cache.accesses());
        prop_assert_eq!(cache.misses(), lines);
    }

    /// The predictor's mispredict count is consistent with its rate and it
    /// eventually learns any constant-direction branch.
    #[test]
    fn predictor_learns_constant_branches(pc in 0u64..1_000_000, taken in any::<bool>()) {
        let mut bp = BranchPredictor::table1();
        for _ in 0..16 {
            let p = bp.predict(pc);
            bp.update(pc, p, taken);
        }
        prop_assert_eq!(bp.predict(pc), taken);
        prop_assert!(bp.mispredicts() <= bp.lookups());
    }

    /// Memory latency is an affine function of chunk parameters and is
    /// frequency independent by construction.
    #[test]
    fn memory_latency_is_affine(first in 1u64..200, inter in 0u64..20, chunks in 1u32..16) {
        let m = MainMemory::new(TimePs::from_ns(first), TimePs::from_ns(inter), chunks);
        let expect = first * 1000 + inter * 1000 * (chunks as u64 - 1);
        prop_assert_eq!(m.line_latency().as_ps(), expect);
    }
}
