//! Event-driven scheduler ≡ per-cycle stepping.
//!
//! The event core (sleep/replay + sample batching, `scheduler.rs`) is a
//! pure wall-clock optimization: it must reproduce the stepping core's
//! history *bit for bit*. These properties run the same simulation twice
//! — event-driven (the default) and with [`SimConfig::cycle_stepping`]
//! forcing every clock edge through the per-event path — and require:
//!
//! * an identical result fingerprint (instructions, simulated time,
//!   per-domain cycle counts and energy breakdowns down to the f64 bit
//!   pattern, stall/sync/relay counters, occupancy statistics), and
//! * an identical trace-event stream when a sink is attached.
//!
//! The only quantities allowed to differ are the scheduler's own
//! bookkeeping (`events_processed` / `cycles_skipped`): the event core
//! dispatches fewer events precisely because it absorbs provably
//! uneventful cycles into replays, while their *sum* stays the total
//! scheduler work either way.

use mcd_baselines::{FeedbackDvsController, IntegralGainController};
use mcd_power::OpIndex;
use mcd_sim::{
    ControllerCtx, DomainId, DvfsAction, DvfsController, Machine, QueueSample, SimConfig,
    SimResult, SyncModel, VecSink,
};
use mcd_workloads::{registry, TraceGenerator};
use proptest::prelude::*;

/// A deliberately twitchy bang-bang controller: retargets the regulator
/// whenever occupancy crosses half capacity, so runs are full of
/// transitions, wakes and relay-free frequency changes — the paths where
/// the event core must re-join the stepping core exactly.
#[derive(Debug)]
struct BangBang;

impl DvfsController for BangBang {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let want = if 2 * sample.occupancy >= sample.capacity {
            OpIndex(320)
        } else {
            OpIndex(64)
        };
        (ctx.current != want).then_some(DvfsAction::Set(want))
    }
    fn name(&self) -> &'static str {
        "bang-bang"
    }
}

/// Exact bit-level fingerprint of everything a report can observe.
fn fingerprint(r: &SimResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let f = |x: f64| x.to_bits();
    writeln!(
        s,
        "instructions={} sim_time={}",
        r.instructions,
        r.sim_time.as_ps()
    )
    .unwrap();
    writeln!(s, "regulator_energy={}", f(r.regulator_energy.as_joules())).unwrap();
    writeln!(
        s,
        "peaks={:?} l1d={} l2={} bpred={}",
        r.queue_peaks,
        f(r.l1d_miss_rate),
        f(r.l2_miss_rate),
        f(r.mispredict_rate)
    )
    .unwrap();
    for d in &r.domains {
        writeln!(
            s,
            "{} cycles={} clk={} cmp={} mem={} pipe={} leak={} freq={} trans={}",
            d.domain,
            d.cycles,
            f(d.energy.clock.as_joules()),
            f(d.energy.compute.as_joules()),
            f(d.energy.memory.as_joules()),
            f(d.energy.pipeline.as_joules()),
            f(d.energy.leakage.as_joules()),
            f(d.mean_rel_freq),
            d.transitions
        )
        .unwrap();
    }
    let m = &r.metrics;
    writeln!(
        s,
        "samples={} occ_sum={:?} stalls={:?} sync={:?} fmin={:?} fmax={:?} slew={:?}",
        m.samples,
        m.occupancy_sum,
        m.dispatch_stalls,
        m.sync_enqueues,
        m.fmin_cycles,
        m.fmax_cycles,
        m.transition_time_ps
    )
    .unwrap();
    writeln!(
        s,
        "dvfs={:?} up={:?} down={:?} arms={:?} fires={:?} resets={:?} rsum={:?} rcnt={:?}",
        m.dvfs_actions,
        m.freq_steps_up,
        m.freq_steps_down,
        m.relay_arms,
        m.relay_fires,
        m.relay_resets,
        m.reaction_sum_ps,
        m.reaction_count
    )
    .unwrap();
    writeln!(s, "hist={:?}", m.occupancy_hist).unwrap();
    writeln!(s, "occ={:?} retired={:?}", m.occupancy, m.retired_trace).unwrap();
    for bi in 0..3 {
        for p in &m.frequency[bi] {
            writeln!(s, "f[{bi}] {} {}", p.time.as_ps(), f(p.rel_freq)).unwrap();
        }
    }
    s
}

#[derive(Debug, Clone)]
struct Case {
    name: &'static str,
    ops: u64,
    seed: u64,
    jitter: bool,
    sync: SyncModel,
    traces: bool,
    /// Which backend controller drives the run: 0 = uncontrolled,
    /// 1 = the test-local [`BangBang`], 2 = the shipped integral-gain
    /// regulator, 3 = the shipped feedback-DVS scheme. The shipped
    /// controllers must re-join the stepping core exactly too.
    controller: u8,
}

fn cases() -> impl Strategy<Value = Case> {
    (
        proptest::sample::select(vec![
            "adpcm_encode",
            "adpcm_decode",
            "gzip",
            "mcf",
            "swim",
            "epic_decode",
        ]),
        2_000u64..12_000,
        0u64..64,
        any::<bool>(),
        proptest::sample::select(vec![SyncModel::Arbitration, SyncModel::TokenRing]),
        any::<bool>(),
        0u8..4,
    )
        .prop_map(|(name, ops, seed, jitter, sync, traces, controller)| Case {
            name,
            ops,
            seed,
            jitter,
            sync,
            traces,
            controller,
        })
}

fn build(case: &Case, stepping: bool) -> Machine<TraceGenerator> {
    let spec = registry::by_name(case.name).expect("registered benchmark");
    let mut cfg = SimConfig {
        cycle_stepping: stepping,
        sync_model: case.sync,
        ..SimConfig::default()
    };
    if !case.jitter {
        cfg.jitter_sigma_ps = 0.0;
    }
    if case.traces {
        cfg = cfg.with_traces();
    }
    let mut m = Machine::new(cfg, TraceGenerator::new(&spec, case.ops, case.seed));
    for &d in &DomainId::BACKEND {
        m = match case.controller {
            0 => return m,
            1 => m.with_controller(d, Box::new(BangBang)),
            2 => m.with_controller(d, Box::new(IntegralGainController::for_domain(d))),
            3 => m.with_controller(d, Box::new(FeedbackDvsController::for_domain(d))),
            other => panic!("unknown controller selector {other}"),
        };
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Untraced runs (the fast path, with sample batching live) produce
    /// bit-identical observable results under both cores.
    #[test]
    fn event_core_matches_stepping_untraced(case in cases()) {
        let event = build(&case, false).run();
        let stepped = build(&case, true).run();
        prop_assert_eq!(fingerprint(&event), fingerprint(&stepped), "case {:?}", case);
        // The stepping core never batches or replays...
        prop_assert_eq!(stepped.metrics.cycles_skipped, 0u64);
        // ...and the two cores agree on the total scheduler work: every
        // edge/sample the event core skipped, stepping dispatched, minus
        // one dispatched Wake event per replay the event core ran.
        prop_assert!(
            event.metrics.events_processed + event.metrics.cycles_skipped
                >= stepped.metrics.events_processed,
            "event {} + skipped {} < stepped {}",
            event.metrics.events_processed,
            event.metrics.cycles_skipped,
            stepped.metrics.events_processed
        );
    }

    /// Traced runs stream the identical event sequence: same events, same
    /// payloads, same order.
    #[test]
    fn event_core_matches_stepping_traced(case in cases()) {
        let mut sink_event = VecSink::new();
        let mut sink_stepped = VecSink::new();
        let event = build(&case, false).run_traced(&mut sink_event);
        let stepped = build(&case, true).run_traced(&mut sink_stepped);
        prop_assert_eq!(fingerprint(&event), fingerprint(&stepped), "case {:?}", case);
        let a: Vec<String> = sink_event.into_events().iter().map(|e| e.to_json()).collect();
        let b: Vec<String> = sink_stepped.into_events().iter().map(|e| e.to_json()).collect();
        prop_assert_eq!(a, b, "trace streams diverged for {:?}", case);
    }
}
