//! Snapshot/restore ≡ uninterrupted execution.
//!
//! A machine paused at a shard boundary, serialized with
//! [`Machine::snapshot`], restored into a *freshly built* machine, and
//! run to completion must be indistinguishable from one uninterrupted
//! run — the shard-equivalence invariant the bench harness's sharded
//! sweeps and warm starts stand on. These properties segment the same
//! simulation at arbitrary boundaries (including degenerate and
//! back-to-back ones) and require:
//!
//! * an identical result fingerprint (instructions, simulated time,
//!   per-domain cycle counts and energy breakdowns down to the f64 bit
//!   pattern, stall/sync/relay counters, occupancy statistics), and
//! * an identical trace-event stream when a sink is attached, with
//!   segments stitched into one stream across restores.
//!
//! The suite also pins the *rejection* half of the contract: a snapshot
//! whose magic, format version, or config hash does not match the
//! restoring machine — or whose bytes were truncated — must fail with a
//! structural error, never restore into silently wrong state.

use mcd_baselines::{FeedbackDvsController, IntegralGainController};
use mcd_power::OpIndex;
use mcd_sim::{
    ControllerCtx, DomainId, DvfsAction, DvfsController, Machine, QueueSample, SimConfig,
    SimResult, SyncModel, TraceSink, VecSink,
};
use mcd_workloads::{registry, TraceGenerator};
use proptest::prelude::*;

/// A deliberately *stateful* controller: an occupancy-error integrator
/// whose every decision depends on the entire sample history. If
/// snapshot/restore dropped or mangled controller state, the restored
/// run's decisions — and with them frequencies, energies and sync
/// behavior — would diverge almost immediately.
#[derive(Debug)]
struct Integrator {
    acc: i64,
}

impl DvfsController for Integrator {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        self.acc += sample.occupancy as i64 - (sample.capacity / 2) as i64;
        let want = if self.acc > 0 {
            OpIndex(300)
        } else {
            OpIndex(80)
        };
        (ctx.current != want).then_some(DvfsAction::Set(want))
    }
    fn name(&self) -> &'static str {
        "integrator"
    }
    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.acc as u64);
    }
    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.acc = r.take_u64()? as i64;
        Ok(())
    }
}

/// Exact bit-level fingerprint of everything a report can observe
/// (kept in lockstep with `sched_equiv.rs`).
fn fingerprint(r: &SimResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let f = |x: f64| x.to_bits();
    writeln!(
        s,
        "instructions={} sim_time={}",
        r.instructions,
        r.sim_time.as_ps()
    )
    .unwrap();
    writeln!(s, "regulator_energy={}", f(r.regulator_energy.as_joules())).unwrap();
    writeln!(
        s,
        "peaks={:?} l1d={} l2={} bpred={}",
        r.queue_peaks,
        f(r.l1d_miss_rate),
        f(r.l2_miss_rate),
        f(r.mispredict_rate)
    )
    .unwrap();
    for d in &r.domains {
        writeln!(
            s,
            "{} cycles={} clk={} cmp={} mem={} pipe={} leak={} freq={} trans={}",
            d.domain,
            d.cycles,
            f(d.energy.clock.as_joules()),
            f(d.energy.compute.as_joules()),
            f(d.energy.memory.as_joules()),
            f(d.energy.pipeline.as_joules()),
            f(d.energy.leakage.as_joules()),
            f(d.mean_rel_freq),
            d.transitions
        )
        .unwrap();
    }
    let m = &r.metrics;
    writeln!(
        s,
        "samples={} events={} skipped={} occ_sum={:?} stalls={:?} sync={:?} fmin={:?} fmax={:?} slew={:?}",
        m.samples,
        m.events_processed,
        m.cycles_skipped,
        m.occupancy_sum,
        m.dispatch_stalls,
        m.sync_enqueues,
        m.fmin_cycles,
        m.fmax_cycles,
        m.transition_time_ps
    )
    .unwrap();
    writeln!(
        s,
        "dvfs={:?} up={:?} down={:?} arms={:?} fires={:?} resets={:?} rsum={:?} rcnt={:?}",
        m.dvfs_actions,
        m.freq_steps_up,
        m.freq_steps_down,
        m.relay_arms,
        m.relay_fires,
        m.relay_resets,
        m.reaction_sum_ps,
        m.reaction_count
    )
    .unwrap();
    writeln!(s, "hist={:?}", m.occupancy_hist).unwrap();
    writeln!(s, "occ={:?} retired={:?}", m.occupancy, m.retired_trace).unwrap();
    for bi in 0..3 {
        for p in &m.frequency[bi] {
            writeln!(s, "f[{bi}] {} {}", p.time.as_ps(), f(p.rel_freq)).unwrap();
        }
    }
    s
}

#[derive(Debug, Clone)]
struct Case {
    name: &'static str,
    ops: u64,
    seed: u64,
    jitter: bool,
    sync: SyncModel,
    traces: bool,
    /// Which backend controller drives the run: 0 = uncontrolled,
    /// 1 = the test-local [`Integrator`], 2 = the shipped integral-gain
    /// regulator, 3 = the shipped feedback-DVS scheme. Shipped
    /// controllers ride the same equivalence properties as the
    /// adversarially stateful one.
    controller: u8,
}

fn attach_controllers(mut m: Machine<TraceGenerator>, controller: u8) -> Machine<TraceGenerator> {
    for &d in &DomainId::BACKEND {
        m = match controller {
            0 => return m,
            1 => m.with_controller(d, Box::new(Integrator { acc: 0 })),
            2 => m.with_controller(d, Box::new(IntegralGainController::for_domain(d))),
            3 => m.with_controller(d, Box::new(FeedbackDvsController::for_domain(d))),
            other => panic!("unknown controller selector {other}"),
        };
    }
    m
}

fn cases() -> impl Strategy<Value = Case> {
    (
        proptest::sample::select(vec![
            "adpcm_encode",
            "adpcm_decode",
            "gzip",
            "mcf",
            "swim",
            "epic_decode",
        ]),
        2_000u64..12_000,
        0u64..64,
        any::<bool>(),
        proptest::sample::select(vec![SyncModel::Arbitration, SyncModel::TokenRing]),
        any::<bool>(),
        0u8..4,
    )
        .prop_map(|(name, ops, seed, jitter, sync, traces, controller)| Case {
            name,
            ops,
            seed,
            jitter,
            sync,
            traces,
            controller,
        })
}

fn build(case: &Case) -> Machine<TraceGenerator> {
    let spec = registry::by_name(case.name).expect("registered benchmark");
    let mut cfg = SimConfig {
        sync_model: case.sync,
        ..SimConfig::default()
    };
    if !case.jitter {
        cfg.jitter_sigma_ps = 0.0;
    }
    if case.traces {
        cfg = cfg.with_traces();
    }
    let m = Machine::new(cfg, TraceGenerator::new(&spec, case.ops, case.seed));
    attach_controllers(m, case.controller)
}

/// Runs `case` segmented at `boundaries` (retired-instruction counts, in
/// ascending order): at each boundary the machine is serialized, thrown
/// away, and the snapshot restored into a freshly built machine — the
/// exact lifecycle of a sharded sweep run. All segments stream into the
/// same `sink`.
fn run_segmented(case: &Case, boundaries: &[u64], sink: &mut dyn TraceSink) -> SimResult {
    let mut machine = build(case);
    for &b in boundaries {
        match machine.try_advance_traced(b, sink).expect("no divergence") {
            true => return machine.finish_traced(sink),
            false => {
                let snapshot = machine.snapshot();
                machine = build(case);
                machine.restore(&snapshot).expect("round-trip restores");
            }
        }
    }
    let done = machine
        .try_advance_traced(u64::MAX, sink)
        .expect("no divergence");
    assert!(done, "no boundary can precede u64::MAX retirements");
    machine.finish_traced(sink)
}

/// Ascending, possibly-duplicated boundaries inside the run (duplicates
/// exercise zero-progress segments: back-to-back snapshot/restore).
fn boundaries(ops: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..2 * ops, 1..5).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Untraced runs segmented at arbitrary snapshot boundaries produce
    /// bit-identical observable results.
    #[test]
    fn segmented_run_matches_whole_run_untraced(
        case in cases(),
        cuts in proptest::collection::vec(1u64..24_000, 1..5),
    ) {
        let mut cuts = cuts;
        cuts.sort_unstable();
        let whole = build(&case).run();
        let segmented = run_segmented(&case, &cuts, &mut mcd_sim::NullSink);
        prop_assert_eq!(
            fingerprint(&whole),
            fingerprint(&segmented),
            "case {:?} cuts {:?}",
            case,
            cuts
        );
    }

    /// Traced runs stitch their per-segment streams into the identical
    /// event sequence an uninterrupted run emits: same events, same
    /// payloads, same order, across every restore.
    #[test]
    fn segmented_trace_stream_stitches_byte_identically(
        case in cases(),
        cuts in boundaries(12_000),
    ) {
        let mut whole_sink = VecSink::new();
        let mut seg_sink = VecSink::new();
        let whole = build(&case).run_traced(&mut whole_sink);
        let segmented = run_segmented(&case, &cuts, &mut seg_sink);
        prop_assert_eq!(fingerprint(&whole), fingerprint(&segmented), "case {:?}", case);
        let a: Vec<String> = whole_sink.into_events().iter().map(|e| e.to_json()).collect();
        let b: Vec<String> = seg_sink.into_events().iter().map(|e| e.to_json()).collect();
        prop_assert_eq!(a, b, "trace streams diverged for {:?} cuts {:?}", case, cuts);
    }
}

fn controlled_case() -> Case {
    Case {
        name: "gzip",
        ops: 8_000,
        seed: 7,
        jitter: true,
        sync: SyncModel::Arbitration,
        traces: false,
        controller: 1,
    }
}

/// A paused machine's snapshot restores into a *fresh* controller whose
/// internal integrator is back at zero — restore must reload it, or the
/// remaining decisions (and everything downstream of them) diverge.
#[test]
fn stateful_controller_round_trips_through_a_snapshot() {
    let case = controlled_case();
    let whole = build(&case).run();
    let segmented = run_segmented(&case, &[1_000, 2_500, 2_500, 6_000], &mut mcd_sim::NullSink);
    assert_eq!(fingerprint(&whole), fingerprint(&segmented));
}

/// Grabs a mid-run snapshot of the reference case.
fn mid_run_snapshot(case: &Case) -> Vec<u8> {
    let mut machine = build(case);
    let paused = machine.try_advance_traced(2_000, &mut mcd_sim::NullSink);
    assert_eq!(paused, Ok(false), "run pauses at the boundary");
    machine.snapshot()
}

#[test]
fn stale_format_version_is_rejected() {
    let case = controlled_case();
    let mut bytes = mid_run_snapshot(&case);
    // Layout: u32 magic, u32 format version, u64 config hash.
    bytes[4] ^= 0xFF;
    let err = build(&case).restore(&bytes).expect_err("version must gate");
    assert!(
        err.to_string().contains("snapshot format version"),
        "unexpected error: {err}"
    );
}

#[test]
fn corrupted_magic_is_rejected() {
    let case = controlled_case();
    let mut bytes = mid_run_snapshot(&case);
    bytes[0] ^= 0xFF;
    let err = build(&case).restore(&bytes).expect_err("magic must gate");
    assert!(
        err.to_string().contains("snapshot magic"),
        "unexpected error: {err}"
    );
}

/// A snapshot only restores into a machine built with the *same*
/// configuration: any knob that shapes simulation (here: the sync
/// model, then jitter) flips the embedded config hash.
#[test]
fn config_hash_mismatch_is_rejected() {
    let case = controlled_case();
    let bytes = mid_run_snapshot(&case);

    let mut other_sync = case.clone();
    other_sync.sync = SyncModel::TokenRing;
    let err = build(&other_sync)
        .restore(&bytes)
        .expect_err("sync model is part of the config hash");
    assert!(err.to_string().contains("config hash"), "got: {err}");

    let mut other_jitter = case.clone();
    other_jitter.jitter = false;
    let err = build(&other_jitter)
        .restore(&bytes)
        .expect_err("jitter sigma is part of the config hash");
    assert!(err.to_string().contains("config hash"), "got: {err}");
}

#[test]
fn truncated_snapshots_are_rejected_at_every_prefix_length() {
    let case = controlled_case();
    let bytes = mid_run_snapshot(&case);
    for cut in [0, 1, 4, 8, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            build(&case).restore(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not restore"
        );
    }
}
