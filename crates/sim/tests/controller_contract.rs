//! The controller contract: trait invariants every shipped DVFS
//! controller must satisfy, pinned for the whole registry at once.
//!
//! `DvfsController` implementations come from two crates above the
//! engine (`mcd-adaptive`, `mcd-baselines`; dev-dependencies here — a
//! legal cycle, since they depend on `mcd-sim` only normally), yet the
//! engine's guarantees are per-trait, not per-implementation:
//!
//! * **Bounds** — whatever the controller returns, the resolved
//!   operating point stays on the curve, so every recorded relative
//!   frequency lies in `[f_min/f_max, 1]`.
//! * **Snapshot continuity** — pausing *mid-decision* (between a
//!   controller's interval boundaries), serializing the machine,
//!   restoring into a freshly built one and continuing is bit-identical
//!   to an uninterrupted run: same result fingerprint, same stitched
//!   trace stream. This is the sub-blob contract the sharded sweeps and
//!   warm starts stand on.
//! * **Determinism** — running the same build twice yields identical
//!   bytes (no hidden global state in any controller).
//! * **Trace non-interference** — the sink is an observer: a run
//!   streaming into a collecting sink reports exactly the bytes of a
//!   run driven through the [`NullSink`].
//!
//! A new controller only has to register a factory here to inherit the
//! whole suite; the bake-off matrix (`repro bakeoff`) assumes every
//! scheme it enumerates passes it.

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_baselines::{
    AttackDecayController, FeedbackDvsController, FixedOperatingPoint, IntegralGainController,
    PidController,
};
use mcd_power::OpIndex;
use mcd_sim::{
    DomainId, DvfsController, Machine, NullSink, SimConfig, SimResult, TraceSink, VecSink,
};
use mcd_workloads::{adversarial, registry, TraceGenerator};
use proptest::prelude::*;

type Factory = fn(DomainId) -> Box<dyn DvfsController>;

/// Every shipped controller, by display name. The fixed pin rides along
/// as the degenerate policy (never acts), which keeps the suite honest:
/// invariants must hold for controllers that do nothing as well as for
/// ones that act every interval.
fn controllers() -> Vec<(&'static str, Factory)> {
    vec![
        ("adaptive", |d| {
            Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d)))
        }),
        ("pid", |d| Box::new(PidController::for_domain(d))),
        ("attack-decay", |d| {
            Box::new(AttackDecayController::for_domain(d))
        }),
        ("integral-gain", |d| {
            Box::new(IntegralGainController::for_domain(d))
        }),
        ("feedback-dvs", |d| {
            Box::new(FeedbackDvsController::for_domain(d))
        }),
        ("fixed", |_| Box::new(FixedOperatingPoint(OpIndex(160)))),
    ]
}

/// One contract case: a controller from the registry driving a workload
/// hostile enough to exercise real decisions.
#[derive(Debug, Clone)]
struct Case {
    controller: usize,
    workload: &'static str,
    ops: u64,
    seed: u64,
    traces: bool,
}

/// The storm is generated (not registered), so spec lookup goes through
/// this helper everywhere.
fn spec_for(workload: &'static str) -> mcd_workloads::BenchmarkSpec {
    match workload {
        "storm" => adversarial::phase_storm(50.0, 8.0),
        "resonant" => adversarial::resonant_burst_default(),
        name => registry::by_name(name).expect("registered benchmark"),
    }
}

fn build(case: &Case) -> Machine<TraceGenerator> {
    let spec = spec_for(case.workload);
    let mut cfg = SimConfig::default();
    if case.traces {
        cfg = cfg.with_traces();
    }
    let (_, factory) = controllers()[case.controller];
    let mut m = Machine::new(cfg, TraceGenerator::new(&spec, case.ops, case.seed));
    for &d in &DomainId::BACKEND {
        m = m.with_controller(d, factory(d));
    }
    m
}

/// Exact bit-level fingerprint of everything a report can observe (kept
/// in lockstep with `shard_equiv.rs` / `sched_equiv.rs`).
fn fingerprint(r: &SimResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let f = |x: f64| x.to_bits();
    writeln!(
        s,
        "instructions={} sim_time={}",
        r.instructions,
        r.sim_time.as_ps()
    )
    .unwrap();
    writeln!(s, "regulator_energy={}", f(r.regulator_energy.as_joules())).unwrap();
    writeln!(
        s,
        "peaks={:?} l1d={} l2={} bpred={}",
        r.queue_peaks,
        f(r.l1d_miss_rate),
        f(r.l2_miss_rate),
        f(r.mispredict_rate)
    )
    .unwrap();
    for d in &r.domains {
        writeln!(
            s,
            "{} cycles={} clk={} cmp={} mem={} pipe={} leak={} freq={} trans={}",
            d.domain,
            d.cycles,
            f(d.energy.clock.as_joules()),
            f(d.energy.compute.as_joules()),
            f(d.energy.memory.as_joules()),
            f(d.energy.pipeline.as_joules()),
            f(d.energy.leakage.as_joules()),
            f(d.mean_rel_freq),
            d.transitions
        )
        .unwrap();
    }
    let m = &r.metrics;
    writeln!(
        s,
        "samples={} events={} skipped={} occ_sum={:?} stalls={:?} sync={:?} fmin={:?} fmax={:?} slew={:?}",
        m.samples,
        m.events_processed,
        m.cycles_skipped,
        m.occupancy_sum,
        m.dispatch_stalls,
        m.sync_enqueues,
        m.fmin_cycles,
        m.fmax_cycles,
        m.transition_time_ps
    )
    .unwrap();
    writeln!(
        s,
        "dvfs={:?} up={:?} down={:?} arms={:?} fires={:?} resets={:?} rsum={:?} rcnt={:?}",
        m.dvfs_actions,
        m.freq_steps_up,
        m.freq_steps_down,
        m.relay_arms,
        m.relay_fires,
        m.relay_resets,
        m.reaction_sum_ps,
        m.reaction_count
    )
    .unwrap();
    writeln!(s, "hist={:?}", m.occupancy_hist).unwrap();
    writeln!(s, "occ={:?} retired={:?}", m.occupancy, m.retired_trace).unwrap();
    for bi in 0..3 {
        for p in &m.frequency[bi] {
            writeln!(s, "f[{bi}] {} {}", p.time.as_ps(), f(p.rel_freq)).unwrap();
        }
    }
    s
}

/// Runs `case` segmented at `boundaries`, restoring each snapshot into a
/// freshly built machine (the shard lifecycle).
fn run_segmented(case: &Case, boundaries: &[u64], sink: &mut dyn TraceSink) -> SimResult {
    let mut machine = build(case);
    for &b in boundaries {
        match machine.try_advance_traced(b, sink).expect("no divergence") {
            true => return machine.finish_traced(sink),
            false => {
                let snapshot = machine.snapshot();
                machine = build(case);
                machine.restore(&snapshot).expect("round-trip restores");
            }
        }
    }
    let done = machine
        .try_advance_traced(u64::MAX, sink)
        .expect("no divergence");
    assert!(done, "no boundary can precede u64::MAX retirements");
    machine.finish_traced(sink)
}

fn base_case(controller: usize) -> Case {
    Case {
        controller,
        workload: "storm",
        ops: 9_000,
        seed: 5,
        traces: false,
    }
}

#[test]
fn registry_names_are_unique_and_reported() {
    let reg = controllers();
    let mut names: Vec<&str> = reg
        .iter()
        .map(|(name, factory)| {
            let built = factory(DomainId::Int);
            assert_eq!(built.name(), *name, "registry name drifted from name()");
            *name
        })
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), reg.len(), "duplicate controller names");
}

/// Every recorded relative frequency stays inside the curve's span, for
/// every controller, on the relay-hostile storm: whatever the policy
/// returns, `DvfsAction::resolve` clamps to the curve.
#[test]
fn frequencies_stay_on_the_curve() {
    let curve = mcd_power::VfCurve::mcd_default();
    let span = curve.min().frequency.as_ghz() / curve.max().frequency.as_ghz();
    for (ci, (name, _)) in controllers().iter().enumerate() {
        let mut case = base_case(ci);
        case.traces = true;
        let r = build(&case).run();
        let mut points = 0usize;
        for bi in 0..3 {
            for p in &r.metrics.frequency[bi] {
                assert!(
                    p.rel_freq >= span - 1e-12 && p.rel_freq <= 1.0 + 1e-12,
                    "{name}: rel_freq {} escaped [{span}, 1] in domain {bi}",
                    p.rel_freq
                );
                points += 1;
            }
        }
        assert!(
            points > 0,
            "{name}: traced run recorded no frequency points"
        );
    }
}

/// Mid-decision snapshot continuity for every controller: boundaries are
/// chosen away from the 10 k-instruction interval frames (and include a
/// zero-progress duplicate), so the snapshot lands while framers hold
/// partial sums and integrators carry fractions.
#[test]
fn every_controller_survives_mid_decision_snapshots() {
    for (ci, (name, _)) in controllers().iter().enumerate() {
        let case = base_case(ci);
        let whole = build(&case).run();
        let segmented = run_segmented(&case, &[1_500, 2_500, 2_500, 6_000], &mut NullSink);
        assert_eq!(
            fingerprint(&whole),
            fingerprint(&segmented),
            "{name}: segmented run diverged"
        );
    }
}

/// Trace streams stitch identically across restores, and the collected
/// stream does not perturb the result (sink non-interference), for every
/// controller.
#[test]
fn traces_stitch_and_do_not_interfere() {
    for (ci, (name, _)) in controllers().iter().enumerate() {
        let mut case = base_case(ci);
        case.traces = true;
        let mut whole_sink = VecSink::new();
        let whole = build(&case).run_traced(&mut whole_sink);
        let mut seg_sink = VecSink::new();
        let segmented = run_segmented(&case, &[2_200, 4_444, 7_001], &mut seg_sink);
        assert_eq!(
            fingerprint(&whole),
            fingerprint(&segmented),
            "{name}: traced segmented run diverged"
        );
        let a: Vec<String> = whole_sink
            .into_events()
            .iter()
            .map(|e| e.to_json())
            .collect();
        let b: Vec<String> = seg_sink.into_events().iter().map(|e| e.to_json()).collect();
        assert_eq!(a, b, "{name}: trace streams diverged across restores");

        // Non-interference: the NullSink run of the same build reports
        // the identical bytes.
        let silent = build(&case).run();
        assert_eq!(
            fingerprint(&whole),
            fingerprint(&silent),
            "{name}: collecting a trace changed the result"
        );
    }
}

/// Same build, run twice: identical bytes. Controllers must not consult
/// hidden global state (clocks, statics, thread identity).
#[test]
fn repeated_runs_are_deterministic() {
    for (ci, (name, _)) in controllers().iter().enumerate() {
        let case = base_case(ci);
        assert_eq!(
            fingerprint(&build(&case).run()),
            fingerprint(&build(&case).run()),
            "{name}: two identical builds produced different bytes"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full contract, randomized: any registered controller, on
    /// registry or adversarial workloads, segmented at arbitrary
    /// (possibly duplicate) boundaries, equals the uninterrupted run.
    #[test]
    fn contract_holds_for_random_cases(
        controller in 0usize..6,
        workload in proptest::sample::select(vec![
            "storm", "resonant", "gzip", "swim", "mcf",
        ]),
        ops in 2_000u64..10_000,
        seed in 0u64..64,
        cuts in proptest::collection::vec(1u64..20_000, 1..5),
    ) {
        let case = Case { controller, workload, ops, seed, traces: false };
        let mut cuts = cuts;
        cuts.sort_unstable();
        let whole = build(&case).run();
        let segmented = run_segmented(&case, &cuts, &mut NullSink);
        prop_assert_eq!(
            fingerprint(&whole),
            fingerprint(&segmented),
            "case {:?} cuts {:?}",
            case,
            cuts
        );
    }
}
