//! Scripted-trace observability: feeding the adaptive controller a known
//! occupancy sequence must produce the exact decision-event walk of
//! Figure 3's FSM — window entry, relay arm, relay fire — ending in the
//! frequency-step action the scheduler confirms.

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_power::{OpIndex, TimePs, VfCurve};
use mcd_sim::{
    ControllerCtx, CtrlEvent, DomainId, DvfsAction, DvfsController, QueueSample, ResetReason,
    SignalKind, StepDir,
};

/// A controller with `q_ref` = 6 whose occupancy relay needs two samples
/// of a +6 signal to fire, and whose Δq window is wide enough that the
/// delta relay never participates.
fn scripted_controller() -> AdaptiveDvfsController {
    let mut cfg = AdaptiveConfig::for_domain(DomainId::Int);
    cfg.t_m0 = 6.0; // |signal| 6 × m 0.5 = 3 per sample → fires on the 2nd
    cfg.dw_delta = 100.0; // keep the Δq relay out of the script
    AdaptiveDvfsController::new(cfg)
}

fn ctx(curve: &VfCurve, sample: u64) -> ControllerCtx<'_> {
    ControllerCtx {
        now: TimePs::from_ns(4) * sample,
        domain: DomainId::Int,
        current: OpIndex(160),
        curve,
        in_transition: false,
        single_step_time: TimePs::from_us(10),
        sample_period: TimePs::from_ns(4),
        retired: 0,
    }
}

/// Feeds `occupancies` one sample apart; returns every drained event and
/// each sample's returned action.
fn drive(occupancies: &[u32]) -> (Vec<CtrlEvent>, Vec<Option<DvfsAction>>) {
    let curve = VfCurve::mcd_default();
    let mut ctrl = scripted_controller();
    let mut events = Vec::new();
    let mut actions = Vec::new();
    for (i, &occ) in occupancies.iter().enumerate() {
        let action = ctrl.on_sample(
            &ctx(&curve, i as u64),
            QueueSample {
                occupancy: occ,
                capacity: 20,
            },
        );
        actions.push(action);
        ctrl.drain_events(&mut events);
    }
    (events, actions)
}

#[test]
fn persistent_deviation_walks_enter_arm_fire_step() {
    // Occupancy 12 against q_ref 6: the +6 error leaves the ±1 window at
    // once, arms the relay, and fires it one sample later.
    let (events, actions) = drive(&[12, 12]);
    assert_eq!(
        events,
        vec![
            CtrlEvent::WindowEnter {
                at: TimePs::ZERO,
                signal: SignalKind::Occupancy,
                value: 6.0,
                occupancy: 12,
                dir: StepDir::Up,
            },
            CtrlEvent::RelayArm {
                at: TimePs::ZERO,
                signal: SignalKind::Occupancy,
                dir: StepDir::Up,
                remaining: 3.0,
            },
            CtrlEvent::RelayFire {
                at: TimePs::from_ns(4),
                signal: SignalKind::Occupancy,
                dir: StepDir::Up,
            },
            CtrlEvent::RelayReset {
                at: TimePs::from_ns(4),
                signal: SignalKind::Occupancy,
                why: ResetReason::Acted,
            },
        ]
    );
    // The fired relay becomes a frequency step: one point up.
    assert_eq!(actions, vec![None, Some(DvfsAction::Step(1))]);
}

#[test]
fn transient_deviation_resets_without_acting() {
    // One noisy sample outside the window, then back to q_ref: the relay
    // arms and is reset by the noise filter; no action ever fires.
    let (events, actions) = drive(&[12, 6]);
    assert_eq!(
        events,
        vec![
            CtrlEvent::WindowEnter {
                at: TimePs::ZERO,
                signal: SignalKind::Occupancy,
                value: 6.0,
                occupancy: 12,
                dir: StepDir::Up,
            },
            CtrlEvent::RelayArm {
                at: TimePs::ZERO,
                signal: SignalKind::Occupancy,
                dir: StepDir::Up,
                remaining: 3.0,
            },
            CtrlEvent::WindowExit {
                at: TimePs::from_ns(4),
                signal: SignalKind::Occupancy,
                value: 0.0,
                occupancy: 6,
            },
            CtrlEvent::RelayReset {
                at: TimePs::from_ns(4),
                signal: SignalKind::Occupancy,
                why: ResetReason::BackInside,
            },
        ]
    );
    assert_eq!(actions, vec![None, None]);
}

#[test]
fn steady_samples_record_nothing() {
    // Occupancy pinned at q_ref: no window crossing, no events, ever.
    let (events, actions) = drive(&[6, 6, 6, 6]);
    assert!(events.is_empty(), "{events:?}");
    assert!(actions.iter().all(Option::is_none));
}
