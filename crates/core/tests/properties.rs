//! Property-based tests for the adaptive controller.

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_power::{OpIndex, TimePs, VfCurve};
use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};
use proptest::prelude::*;

/// Drives a controller over an arbitrary occupancy sequence, applying
/// actions, and returns the visited operating points.
fn drive(cfg: AdaptiveConfig, occupancies: &[u8]) -> Vec<OpIndex> {
    let curve = VfCurve::mcd_default();
    let mut ctrl = AdaptiveDvfsController::new(cfg);
    let mut current = curve.max_index();
    let mut now = TimePs::ZERO;
    let mut visited = vec![current];
    for (i, &occ) in occupancies.iter().enumerate() {
        now += TimePs::from_ns(4);
        let ctx = ControllerCtx {
            now,
            domain: DomainId::Fp,
            current,
            curve: &curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired: i as u64 * 2,
        };
        if let Some(action) = ctrl.on_sample(
            &ctx,
            QueueSample {
                occupancy: occ.min(16) as u32,
                capacity: 16,
            },
        ) {
            current = action.resolve(current, &curve);
            visited.push(current);
        }
    }
    visited
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the occupancy sequence, the operating point never leaves
    /// the curve and never moves more than 2·step per action.
    #[test]
    fn operating_point_stays_in_range(occupancies in proptest::collection::vec(0u8..=16, 1..4000)) {
        let cfg = AdaptiveConfig::for_domain(DomainId::Fp);
        let step = cfg.step;
        let visited = drive(cfg, &occupancies);
        let max = VfCurve::mcd_default().max_index();
        for w in visited.windows(2) {
            prop_assert!(w[1].0 <= max.0);
            let jump = (w[1].0 as i32 - w[0].0 as i32).abs();
            prop_assert!(jump <= 2 * step, "action jumped {jump} steps");
        }
    }

    /// An occupancy pinned at the reference never triggers an action.
    #[test]
    fn reference_occupancy_is_a_fixed_point(n in 1usize..5000) {
        let cfg = AdaptiveConfig::for_domain(DomainId::Fp);
        let q_ref = cfg.q_ref as u8;
        let visited = drive(cfg, &vec![q_ref; n]);
        prop_assert_eq!(visited.len(), 1, "no actions expected at q = q_ref");
    }

    /// The controller is deterministic: same samples, same actions.
    #[test]
    fn controller_is_deterministic(occupancies in proptest::collection::vec(0u8..=16, 1..2000)) {
        let a = drive(AdaptiveConfig::for_domain(DomainId::Ls), &occupancies);
        let b = drive(AdaptiveConfig::for_domain(DomainId::Ls), &occupancies);
        prop_assert_eq!(a, b);
    }

    /// Persistent emptiness monotonically walks the point down to minimum.
    #[test]
    fn emptiness_descends_monotonically(n in 150_000usize..200_000) {
        let cfg = AdaptiveConfig::for_domain(DomainId::Fp);
        let visited = drive(cfg, &vec![0u8; n]);
        for w in visited.windows(2) {
            prop_assert!(w[1] <= w[0], "descent must be monotone");
        }
        prop_assert_eq!(*visited.last().expect("nonempty"), OpIndex(0));
    }

    /// `DvfsAction::resolve` never leaves the curve for any step size.
    #[test]
    fn action_resolution_clamps(current in 0u16..=320, steps in -1000i32..1000) {
        let curve = VfCurve::mcd_default();
        let target = DvfsAction::Step(steps).resolve(OpIndex(current), &curve);
        prop_assert!(target.0 <= curve.max_index().0);
    }
}
