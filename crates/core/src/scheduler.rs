//! The Schedule state: reconciling the two signals' triggers (Section 3.1).
//!
//! When both FSMs fire in the same sampling period, identical directions
//! combine into one double-step action and opposite directions cancel each
//! other; a single firing passes through unchanged.

use crate::fsm::{Direction, TriggerState};

/// The scheduler's decision for one sampling period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// No action this period.
    None,
    /// A single action: direction and how many unit steps (1 or 2).
    Action {
        /// Which way the frequency moves.
        direction: Direction,
        /// How many unit steps to move (2 when both signals agree).
        magnitude: u32,
    },
    /// Both signals fired in opposite directions: cancel both, reset both
    /// FSMs to Wait.
    Cancelled,
}

/// Resolves the two FSMs' trigger reports.
pub fn resolve(occupancy: TriggerState, delta: TriggerState) -> Resolution {
    match (occupancy, delta) {
        (TriggerState::Idle, TriggerState::Idle) => Resolution::None,
        (TriggerState::Fired(d), TriggerState::Idle)
        | (TriggerState::Idle, TriggerState::Fired(d)) => Resolution::Action {
            direction: d,
            magnitude: 1,
        },
        (TriggerState::Fired(a), TriggerState::Fired(b)) => {
            if a == b {
                Resolution::Action {
                    direction: a,
                    magnitude: 2,
                }
            } else {
                Resolution::Cancelled
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::Direction::{Down, Up};
    use crate::fsm::TriggerState::{Fired, Idle};

    #[test]
    fn both_idle_is_none() {
        assert_eq!(resolve(Idle, Idle), Resolution::None);
    }

    #[test]
    fn single_trigger_passes_through() {
        assert_eq!(
            resolve(Fired(Up), Idle),
            Resolution::Action {
                direction: Up,
                magnitude: 1
            }
        );
        assert_eq!(
            resolve(Idle, Fired(Down)),
            Resolution::Action {
                direction: Down,
                magnitude: 1
            }
        );
    }

    #[test]
    fn identical_triggers_combine_to_double_step() {
        assert_eq!(
            resolve(Fired(Up), Fired(Up)),
            Resolution::Action {
                direction: Up,
                magnitude: 2
            }
        );
        assert_eq!(
            resolve(Fired(Down), Fired(Down)),
            Resolution::Action {
                direction: Down,
                magnitude: 2
            }
        );
    }

    #[test]
    fn opposite_triggers_cancel() {
        assert_eq!(resolve(Fired(Up), Fired(Down)), Resolution::Cancelled);
        assert_eq!(resolve(Fired(Down), Fired(Up)), Resolution::Cancelled);
    }
}
