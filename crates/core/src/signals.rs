//! The two queue signals the controller monitors (Section 3.1).

/// Computes the controller's trigger signals from raw occupancy samples.
///
/// At the i-th sampling point with occupancy `q_i`:
///
/// * `occupancy_error = q_i − q_ref` — how far the queue is from its
///   nominal operating point, and
/// * `delta = q_i − q_{i−1}` — how fast it is moving (`None` at the first
///   sample, when no previous value exists).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueueSignals {
    prev: Option<f64>,
}

/// One sampling period's worth of signal values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalValues {
    /// `q_i − q_ref`.
    pub occupancy_error: f64,
    /// `q_i − q_{i−1}` (`None` on the very first sample).
    pub delta: Option<f64>,
}

impl QueueSignals {
    /// Creates a signal tracker with no history.
    pub fn new() -> Self {
        QueueSignals::default()
    }

    /// Feeds occupancy `q` sampled against reference `q_ref`; returns both
    /// signal values.
    pub fn observe(&mut self, q: f64, q_ref: f64) -> SignalValues {
        let delta = self.prev.map(|p| q - p);
        self.prev = Some(q);
        SignalValues {
            occupancy_error: q - q_ref,
            delta,
        }
    }

    /// Clears history (used when the controller resets).
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Serializes the previous-sample history.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_bool(self.prev.is_some());
        if let Some(p) = self.prev {
            w.put_f64(p);
        }
    }

    /// Restores state captured by [`QueueSignals::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.prev = if r.take_bool()? {
            Some(r.take_f64()?)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_has_no_delta() {
        let mut s = QueueSignals::new();
        let v = s.observe(5.0, 4.0);
        assert_eq!(v.occupancy_error, 1.0);
        assert_eq!(v.delta, None);
    }

    #[test]
    fn delta_tracks_consecutive_samples() {
        let mut s = QueueSignals::new();
        s.observe(5.0, 4.0);
        let v = s.observe(8.0, 4.0);
        assert_eq!(v.occupancy_error, 4.0);
        assert_eq!(v.delta, Some(3.0));
        let v = s.observe(2.0, 4.0);
        assert_eq!(v.occupancy_error, -2.0);
        assert_eq!(v.delta, Some(-6.0));
    }

    #[test]
    fn reset_forgets_history() {
        let mut s = QueueSignals::new();
        s.observe(5.0, 4.0);
        s.reset();
        assert_eq!(s.observe(7.0, 4.0).delta, None);
    }
}
