//! The adaptive-reaction-time DVFS controller of Wu, Juang, Martonosi &
//! Clark, *"Voltage and Frequency Control With Adaptive Reaction Time in
//! Multiple-Clock-Domain Processors"* (HPCA 2005).
//!
//! Unlike fixed-interval schemes, this controller has **no predetermined
//! decision boundary**: it watches two queue signals at every sampling
//! period and reacts the moment a change has proven itself large and
//! persistent enough —
//!
//! * the *relative queue occupancy* `q_i − q_ref`, and
//! * the *queue difference* `q_i − q_{i−1}`,
//!
//! each filtered by a **deviation window** (small excursions are noise) and
//! a **resettable time-delay relay** (short excursions are noise). When a
//! signal stays outside its window long enough, a single ±step
//! frequency/voltage action fires; a scheduler reconciles the two signals'
//! FSMs (identical simultaneous actions combine, opposite ones cancel).
//! The effective delay shrinks with signal magnitude — severe changes get
//! fast reactions — and grows as `1/f̂²` for down-steps, making the
//! controller cautious about scaling an already-slow domain further down
//! (this is the `h(f) = f²` linearization choice of Section 4).
//!
//! # Example
//!
//! ```
//! use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
//! use mcd_sim::{DomainId, Machine, SimConfig};
//! use mcd_workloads::{registry, TraceGenerator};
//!
//! let spec = registry::by_name("adpcm_encode").expect("known benchmark");
//! let machine = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 10_000, 1))
//!     .with_controllers(|d| Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d))));
//! let result = machine.run();
//! assert_eq!(result.instructions, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod coordination;
pub mod delay;
pub mod deviation;
pub mod fsm;
pub mod hardware;
pub mod scheduler;
pub mod signals;

pub use config::AdaptiveConfig;
pub use controller::AdaptiveDvfsController;
pub use coordination::{coordinated_controllers, CoordinatedController};
pub use deviation::DeviationWindow;
pub use fsm::{Direction, SignalFsm, TriggerState};
pub use hardware::{HardwareCost, SchemeHardware};
pub use scheduler::{resolve, Resolution};
pub use signals::QueueSignals;
