//! The complete adaptive DVFS controller (one per controlled domain).

use mcd_power::TimePs;
use mcd_sim::{
    ControllerCtx, CtrlEvent, DvfsAction, DvfsController, QueueSample, ResetReason, SignalKind,
    StepDir,
};

use crate::config::AdaptiveConfig;
use crate::fsm::{Direction, SignalFsm, TriggerState};
use crate::scheduler::{resolve, Resolution};
use crate::signals::QueueSignals;

/// Cap on buffered decision events between drains, so a controller driven
/// without a draining machine (standalone harnesses) stays bounded.
const EVENT_CAP: usize = 65_536;

fn dir_of(d: Direction) -> StepDir {
    match d {
        Direction::Up => StepDir::Up,
        Direction::Down => StepDir::Down,
    }
}

/// One signal's observation this sample, for event derivation.
struct SignalObs {
    signal: SignalKind,
    value: f64,
    occupancy: u32,
}

/// Derives decision events for one signal's FSM step by comparing the
/// pre-step counting direction with the post-step state and trigger.
/// Events are recorded only on state *transitions*, so steady samples
/// (the overwhelming majority) record nothing.
fn trace_signal_step(
    events: &mut Vec<CtrlEvent>,
    at: TimePs,
    obs: SignalObs,
    was: Option<Direction>,
    fsm: &SignalFsm,
    trigger: TriggerState,
) {
    let arm = |events: &mut Vec<CtrlEvent>, dir: Direction| {
        events.push(CtrlEvent::WindowEnter {
            at,
            signal: obs.signal,
            value: obs.value,
            occupancy: obs.occupancy,
            dir: dir_of(dir),
        });
        events.push(CtrlEvent::RelayArm {
            at,
            signal: obs.signal,
            dir: dir_of(dir),
            remaining: fsm.remaining(),
        });
    };
    match trigger {
        TriggerState::Fired(d) => {
            if was != Some(d) {
                if was.is_some() {
                    events.push(CtrlEvent::RelayReset {
                        at,
                        signal: obs.signal,
                        why: ResetReason::SideFlip,
                    });
                }
                arm(events, d);
            }
            events.push(CtrlEvent::RelayFire {
                at,
                signal: obs.signal,
                dir: dir_of(d),
            });
        }
        TriggerState::Idle => match (was, fsm.direction()) {
            (None, Some(d)) => arm(events, d),
            (Some(d1), Some(d2)) if d1 != d2 => {
                events.push(CtrlEvent::RelayReset {
                    at,
                    signal: obs.signal,
                    why: ResetReason::SideFlip,
                });
                arm(events, d2);
            }
            (Some(_), None) => {
                events.push(CtrlEvent::WindowExit {
                    at,
                    signal: obs.signal,
                    value: obs.value,
                    occupancy: obs.occupancy,
                });
                events.push(CtrlEvent::RelayReset {
                    at,
                    signal: obs.signal,
                    why: ResetReason::BackInside,
                });
            }
            _ => {}
        },
    }
}

/// The paper's event-driven adaptive DVFS controller.
///
/// Wires together the two queue signals, their deviation-window/time-delay
/// FSMs, and the action scheduler, and exposes the result as a
/// [`DvfsController`] the simulator can drive. Every state transition of
/// either relay is recorded as a [`CtrlEvent`] and handed to the machine
/// through [`DvfsController::drain_events`].
#[derive(Debug)]
pub struct AdaptiveDvfsController {
    cfg: AdaptiveConfig,
    signals: QueueSignals,
    occupancy_fsm: SignalFsm,
    delta_fsm: SignalFsm,
    actions: u64,
    cancellations: u64,
    events: Vec<CtrlEvent>,
}

impl AdaptiveDvfsController {
    /// Builds a controller from `cfg`.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveDvfsController {
            occupancy_fsm: SignalFsm::new(cfg.dw_occupancy, cfg.t_m0),
            delta_fsm: SignalFsm::new(cfg.dw_delta, cfg.t_l0),
            signals: QueueSignals::new(),
            cfg,
            actions: 0,
            cancellations: 0,
            events: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Actions issued so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// Simultaneous opposite triggers cancelled so far.
    pub fn cancellations(&self) -> u64 {
        self.cancellations
    }

    /// Decision events recorded since the last drain.
    pub fn pending_events(&self) -> &[CtrlEvent] {
        &self.events
    }
}

impl DvfsController for AdaptiveDvfsController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let values = self
            .signals
            .observe(sample.occupancy as f64, self.cfg.q_ref);

        // Count-down increments shrink with f̂² (equivalently the delay
        // grows by 1/f̂²), making an already-slow domain cautious about
        // slowing further (Section 5.1).
        let f_hat = ctx.relative_frequency();
        let down_scale = if self.cfg.scale_down_delay_with_freq {
            f_hat * f_hat
        } else {
            1.0
        };
        let scale_for = |signal: f64, m: f64| if signal < 0.0 { m * down_scale } else { m };

        let occ = values.occupancy_error;
        let was_occ = self.occupancy_fsm.direction();
        let t_occ = self
            .occupancy_fsm
            .step(occ, scale_for(occ, self.cfg.m_occupancy), ctx.now);
        trace_signal_step(
            &mut self.events,
            ctx.now,
            SignalObs {
                signal: SignalKind::Occupancy,
                value: occ,
                occupancy: sample.occupancy,
            },
            was_occ,
            &self.occupancy_fsm,
            t_occ,
        );
        let t_delta = match values.delta {
            Some(d) => {
                let was_delta = self.delta_fsm.direction();
                let t = self
                    .delta_fsm
                    .step(d, scale_for(d, self.cfg.m_delta), ctx.now);
                trace_signal_step(
                    &mut self.events,
                    ctx.now,
                    SignalObs {
                        signal: SignalKind::Delta,
                        value: d,
                        occupancy: sample.occupancy,
                    },
                    was_delta,
                    &self.delta_fsm,
                    t,
                );
                t
            }
            None => TriggerState::Idle,
        };

        let action = match resolve(t_occ, t_delta) {
            Resolution::None => None,
            Resolution::Cancelled => {
                self.occupancy_fsm.cancel();
                self.delta_fsm.cancel();
                self.cancellations += 1;
                for signal in [SignalKind::Occupancy, SignalKind::Delta] {
                    self.events.push(CtrlEvent::RelayReset {
                        at: ctx.now,
                        signal,
                        why: ResetReason::Cancelled,
                    });
                }
                None
            }
            Resolution::Action {
                direction,
                magnitude,
            } => {
                let until = ctx.now + ctx.single_step_time;
                if matches!(t_occ, TriggerState::Fired(_)) {
                    self.occupancy_fsm.confirm(until);
                    self.events.push(CtrlEvent::RelayReset {
                        at: ctx.now,
                        signal: SignalKind::Occupancy,
                        why: ResetReason::Acted,
                    });
                }
                if matches!(t_delta, TriggerState::Fired(_)) {
                    self.delta_fsm.confirm(until);
                    self.events.push(CtrlEvent::RelayReset {
                        at: ctx.now,
                        signal: SignalKind::Delta,
                        why: ResetReason::Acted,
                    });
                }
                self.actions += 1;
                Some(DvfsAction::Step(
                    direction.sign() * self.cfg.step * magnitude as i32,
                ))
            }
        };
        self.events.truncate(EVENT_CAP);
        action
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn drain_events(&mut self, out: &mut Vec<CtrlEvent>) {
        out.append(&mut self.events);
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.signals.save_state(w);
        self.occupancy_fsm.save_state(w);
        self.delta_fsm.save_state(w);
        w.put_u64(self.actions);
        w.put_u64(self.cancellations);
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.signals.load_state(r)?;
        self.occupancy_fsm.load_state(r)?;
        self.delta_fsm.load_state(r)?;
        self.actions = r.take_u64()?;
        self.cancellations = r.take_u64()?;
        // Decision events are not part of a snapshot: a traced machine
        // drains them every sample (so they are empty between events), and
        // an untraced one never observes them.
        self.events.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{OpIndex, TimePs, VfCurve};
    use mcd_sim::DomainId;

    struct Harness {
        curve: VfCurve,
        now: TimePs,
        current: OpIndex,
        ctrl: AdaptiveDvfsController,
    }

    impl Harness {
        fn new(cfg: AdaptiveConfig) -> Self {
            let curve = VfCurve::mcd_default();
            Harness {
                current: curve.max_index(),
                curve,
                now: TimePs::ZERO,
                ctrl: AdaptiveDvfsController::new(cfg),
            }
        }

        /// Feeds one sample and applies any resulting action instantly.
        fn sample(&mut self, occupancy: u32) -> Option<DvfsAction> {
            self.now += TimePs::from_ns(4);
            let ctx = ControllerCtx {
                now: self.now,
                domain: DomainId::Fp,
                current: self.current,
                curve: &self.curve,
                in_transition: false,
                single_step_time: TimePs::from_ns(172),
                sample_period: TimePs::from_ns(4),
                retired: 0,
            };
            let action = self.ctrl.on_sample(
                &ctx,
                QueueSample {
                    occupancy,
                    capacity: 16,
                },
            );
            if let Some(a) = action {
                self.current = a.resolve(self.current, &self.curve);
            }
            action
        }
    }

    fn fp_cfg() -> AdaptiveConfig {
        AdaptiveConfig::for_domain(DomainId::Fp)
    }

    #[test]
    fn steady_queue_at_reference_never_acts() {
        let mut h = Harness::new(fp_cfg());
        for _ in 0..10_000 {
            assert_eq!(h.sample(4), None, "q == q_ref must stay inactive");
        }
        assert_eq!(h.ctrl.actions(), 0);
    }

    #[test]
    fn occupancy_inside_deviation_window_never_acts() {
        let mut h = Harness::new(fp_cfg());
        for i in 0..10_000 {
            // Oscillates between 3 and 5: |q − 4| ≤ 1 = DW... but Δq = ±1
            // is outside its zero window — alternating sides though, so the
            // delta FSM keeps restarting and never fires.
            assert_eq!(h.sample(if i % 2 == 0 { 3 } else { 5 }), None);
        }
    }

    #[test]
    fn empty_queue_scales_down_to_minimum() {
        let mut h = Harness::new(fp_cfg());
        for _ in 0..200_000 {
            h.sample(0);
            if h.current == OpIndex(0) {
                break;
            }
        }
        assert_eq!(h.current, OpIndex(0), "empty queue must reach f_min");
        assert!(h.ctrl.actions() >= 320);
    }

    #[test]
    fn full_queue_recovers_to_maximum() {
        let mut h = Harness::new(fp_cfg());
        h.current = OpIndex(0);
        for _ in 0..100_000 {
            h.sample(16);
            if h.current == h.curve.max_index() {
                break;
            }
        }
        assert_eq!(
            h.current,
            h.curve.max_index(),
            "full queue must reach f_max"
        );
    }

    #[test]
    fn severe_swings_react_faster_than_mild_ones() {
        // Mild: q = 6 (error +2); severe: q = 16 (error +12). Count samples
        // until the first action from f_min.
        let count_until_action = |occ: u32| {
            let mut h = Harness::new(fp_cfg());
            h.current = OpIndex(0);
            let mut n = 0;
            loop {
                n += 1;
                if h.sample(occ).is_some() {
                    return n;
                }
                assert!(n < 100_000, "never acted on occupancy {occ}");
            }
        };
        let severe = count_until_action(16);
        let mild = count_until_action(6);
        assert!(severe < mild, "severe {severe} !< mild {mild}");
    }

    #[test]
    fn up_steps_come_from_delta_signal_quickly() {
        // A sudden filling queue (large positive Δq) should fire the fast
        // T_l0 = 8 FSM within a handful of samples.
        let mut h = Harness::new(fp_cfg());
        h.current = OpIndex(100);
        // Stable at the reference first.
        for _ in 0..100 {
            h.sample(4);
        }
        // Burst: occupancy jumps to full and stays there.
        let mut acted_at = None;
        for i in 0..16 {
            let occ = (8 + 4 * i).min(16) as u32;
            if let Some(DvfsAction::Step(s)) = h.sample(occ) {
                assert!(s > 0, "burst must push frequency up");
                acted_at = Some(i);
                break;
            }
        }
        let at = acted_at.expect("no reaction to a severe burst within 16 samples");
        // 16 samples = 64 ns — orders of magnitude inside one fixed
        // 10k-instruction interval (~10 us).
        assert!(at <= 15, "reaction took {at} samples");
    }

    #[test]
    fn down_reaction_is_slower_at_low_frequency() {
        let steps_to_first_action = |start: OpIndex| {
            let mut h = Harness::new(fp_cfg());
            h.current = start;
            let mut n = 0;
            loop {
                n += 1;
                if h.sample(0).is_some() {
                    return n;
                }
                assert!(n < 1_000_000);
            }
        };
        let at_max = steps_to_first_action(VfCurve::mcd_default().max_index());
        let at_low = steps_to_first_action(OpIndex(40));
        assert!(
            at_low > at_max * 4,
            "low-frequency down-step ({at_low}) should be ≫ slower than at f_max ({at_max})"
        );
    }

    #[test]
    fn double_step_when_both_signals_fire_together() {
        // With equal delays and zero windows, a single jump of +4 from the
        // reference fires both FSMs in the same sample: identical
        // directions combine into one ±2·step action (Section 3.1).
        let cfg = fp_cfg()
            .with_windows(0.0, 0.0)
            .with_delays(4.0, 4.0)
            .with_conversions(1.0, 1.0);
        let mut h = Harness::new(cfg);
        h.current = OpIndex(100);
        assert_eq!(h.sample(4), None); // err = 0 (inside even a zero window)
        let a = h.sample(8); // err = +4 ≥ T_m0, Δ = +4 ≥ T_l0
        assert_eq!(a, Some(DvfsAction::Step(2)));
        assert_eq!(h.ctrl.actions(), 1);
    }

    #[test]
    fn opposite_simultaneous_triggers_cancel() {
        // Occupancy far above reference (counting up) while the queue is
        // draining fast (delta counting down): when both fire in the same
        // sample the scheduler cancels them and no action is taken.
        let cfg = fp_cfg()
            .with_q_ref(10.0)
            .with_windows(0.0, 0.0)
            .with_delays(12.0, 4.0)
            .with_conversions(1.0, 1.0);
        // Stay at f_max so the 1/f̂² down-scaling does not slow the delta FSM.
        let mut h = Harness::new(cfg);
        assert_eq!(h.sample(20), None); // err +10 (accum 10 < 12), no Δ yet
        let a = h.sample(15); // err +5 → occ fires (15 ≥ 12); Δ −5 → delta fires
        assert_eq!(a, None);
        assert_eq!(h.ctrl.cancellations(), 1);
        assert_eq!(h.ctrl.actions(), 0);
    }

    #[test]
    fn controller_reports_name() {
        let c = AdaptiveDvfsController::new(fp_cfg());
        assert_eq!(c.name(), "adaptive");
    }
}
