//! Decision-logic hardware cost model (Section 3.1, Figure 5).
//!
//! The paper argues the adaptive scheme's decision process "leads to
//! smaller and cheaper hardware" than the fixed-interval schemes, which
//! need multipliers/dividers or lookup tables to compute per-interval
//! voltage/frequency settings. This module makes that argument
//! quantitative with a simple gate-equivalent estimate of each scheme's
//! per-domain decision logic (`repro hardware` prints the comparison).

/// Inventory of one scheme's per-domain decision logic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HardwareCost {
    /// Total adder bits (ripple-carry equivalents).
    pub adder_bits: u32,
    /// Total magnitude-comparator bits.
    pub comparator_bits: u32,
    /// Total counter bits.
    pub counter_bits: u32,
    /// Plain storage register bits.
    pub register_bits: u32,
    /// Total FSM states (across all FSMs).
    pub fsm_states: u32,
    /// Bits per hardware multiplier, one entry per multiplier.
    pub multiplier_bits: Vec<u32>,
    /// Lookup-table bits.
    pub lut_bits: u32,
}

impl HardwareCost {
    /// Rough NAND2-equivalent gate count.
    ///
    /// Per-bit costs: adder 6, comparator 4, counter 8 (flop + increment),
    /// register 4; an n-bit array multiplier costs ≈ 6·n²; FSMs cost
    /// ≈ 8 gates per state plus 20 of glue; LUTs cost ≈ 1 gate per 4 bits.
    pub fn gate_estimate(&self) -> u32 {
        let mut g = 0;
        g += self.adder_bits * 6;
        g += self.comparator_bits * 4;
        g += self.counter_bits * 8;
        g += self.register_bits * 4;
        if self.fsm_states > 0 {
            g += self.fsm_states * 8 + 20;
        }
        for &n in &self.multiplier_bits {
            g += 6 * n * n;
        }
        g += self.lut_bits / 4;
        g
    }
}

/// The per-domain decision-logic inventory of each DVFS scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeHardware {
    /// This paper's adaptive controller (Figure 5).
    Adaptive,
    /// The PID-based fixed-interval controller of Wu et al. \[23\].
    Pid,
    /// The attack/decay fixed-interval controller of Semeraro et al. \[9\].
    AttackDecay,
}

impl SchemeHardware {
    /// Every scheme, for comparison tables.
    pub const ALL: [SchemeHardware; 3] = [
        SchemeHardware::Adaptive,
        SchemeHardware::Pid,
        SchemeHardware::AttackDecay,
    ];

    /// Scheme name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemeHardware::Adaptive => "adaptive (this paper)",
            SchemeHardware::Pid => "PID [23]",
            SchemeHardware::AttackDecay => "attack/decay [9]",
        }
    }

    /// The scheme's per-domain decision-logic inventory.
    pub fn cost(self) -> HardwareCost {
        match self {
            // Figure 5, doubled for the two queue signals: a 6-bit adder
            // computes the trigger signal, a 7-bit comparator checks the
            // deviation window, a 5-state FSM plus an 8-bit delay counter
            // implement the relay; one 6-bit register holds q_{i−1}; a few
            // gates of scheduler glue reconcile the two FSMs (modeled as a
            // 3-state FSM).
            SchemeHardware::Adaptive => HardwareCost {
                adder_bits: 2 * 6,
                comparator_bits: 2 * 7,
                counter_bits: 2 * 8,
                register_bits: 6,
                fsm_states: 2 * 5 + 3,
                multiplier_bits: Vec::new(),
                lut_bits: 0,
            },
            // Per interval the PID computes
            // u = Kp·e + Ki·Σe + Kd·Δe and maps it to a frequency setting:
            // three 16-bit multipliers, a 16-bit accumulator and output
            // adders, error adder, interval counter, coefficient/setting
            // registers, and a small frequency-mapping LUT.
            SchemeHardware::Pid => HardwareCost {
                adder_bits: 7 + 16 + 16 + 16,
                comparator_bits: 0,
                counter_bits: 16 + 16,
                register_bits: 3 * 16 + 16,
                fsm_states: 4,
                multiplier_bits: vec![16, 16, 16],
                lut_bits: 256 * 9,
            },
            // Attack/decay keeps per-interval utilization counters, one
            // subtractor for the change, a threshold comparator, and a
            // shift-and-add attack/decay update.
            SchemeHardware::AttackDecay => HardwareCost {
                adder_bits: 16 + 9 + 9,
                comparator_bits: 9,
                counter_bits: 16 + 16,
                register_bits: 16,
                fsm_states: 4,
                multiplier_bits: Vec::new(),
                lut_bits: 0,
            },
        }
    }

    /// Gate estimate of [`SchemeHardware::cost`].
    pub fn gates(self) -> u32 {
        self.cost().gate_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_is_much_cheaper_than_pid() {
        let a = SchemeHardware::Adaptive.gates();
        let p = SchemeHardware::Pid.gates();
        assert!(
            a * 5 < p,
            "adaptive ({a}) should be well under a fifth of PID ({p})"
        );
    }

    #[test]
    fn adaptive_is_comparable_to_attack_decay_bookkeeping() {
        let a = SchemeHardware::Adaptive.gates() as f64;
        let d = SchemeHardware::AttackDecay.gates() as f64;
        // "Roughly the same order as the book-keeping hardware" — within 3×.
        assert!(
            a / d < 3.0 && d / a < 3.0,
            "adaptive {a} vs attack/decay {d}"
        );
    }

    #[test]
    fn gate_estimate_components() {
        let c = HardwareCost {
            adder_bits: 1,
            comparator_bits: 1,
            counter_bits: 1,
            register_bits: 1,
            fsm_states: 0,
            multiplier_bits: vec![2],
            lut_bits: 8,
        };
        assert_eq!(c.gate_estimate(), 6 + 4 + 8 + 4 + 24 + 2);
    }

    #[test]
    fn empty_cost_is_zero_gates() {
        assert_eq!(HardwareCost::default().gate_estimate(), 0);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SchemeHardware::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
