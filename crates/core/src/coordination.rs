//! Centralized coordination — the paper's flagged future work.
//!
//! Section 3.1 assumes *decentralized* control ("we will only use local
//! queue/domain information") and notes that "a centralized DVFS scheme
//! which utilizes all queue/domain information may work better, but is
//! much harder to design, as it is still an open research problem."
//!
//! This module implements a minimal centralized extension: the three
//! per-domain adaptive controllers share a blackboard of current queue
//! utilizations, and a domain's *down*-step is vetoed while any other
//! domain's queue is saturated. Rationale: when one domain is the
//! bottleneck, the other queues drain — not because their demand vanished,
//! but because dispatch is stalled behind the bottleneck. Slowing them
//! down on that evidence forces an expensive re-ramp the moment the
//! bottleneck clears; the veto suppresses exactly those spurious descents.

use std::sync::{Arc, Mutex};

use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};

use crate::config::AdaptiveConfig;
use crate::controller::AdaptiveDvfsController;

/// Shared blackboard of the three domains' latest queue utilizations.
///
/// Shared via `Arc<Mutex<_>>` rather than `Rc<RefCell<_>>`: controllers
/// must be `Send` so a machine can migrate between worker threads at
/// run-granularity work-steal and shard boundaries. The three controllers
/// of one machine still only ever run on one thread at a time, so the
/// lock is uncontended.
#[derive(Debug)]
pub struct Blackboard {
    utilization: [f64; 3],
    /// A queue at or above this utilization marks its domain as the
    /// current bottleneck.
    saturation: f64,
}

impl Blackboard {
    /// Creates a blackboard with the given saturation threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `saturation` is in `(0, 1]`.
    pub fn new(saturation: f64) -> Arc<Mutex<Blackboard>> {
        assert!(
            saturation > 0.0 && saturation <= 1.0,
            "saturation out of range"
        );
        Arc::new(Mutex::new(Blackboard {
            utilization: [0.0; 3],
            saturation,
        }))
    }

    /// Whether any domain *other than* `slot` is saturated.
    pub fn other_domain_saturated(&self, slot: usize) -> bool {
        self.utilization
            .iter()
            .enumerate()
            .any(|(i, &u)| i != slot && u >= self.saturation)
    }

    /// Sets one domain slot's posted utilization (test hook).
    pub fn post(&mut self, slot: usize, utilization: f64) {
        self.utilization[slot] = utilization;
    }
}

/// A per-domain adaptive controller that consults the shared blackboard.
#[derive(Debug)]
pub struct CoordinatedController {
    inner: AdaptiveDvfsController,
    shared: Arc<Mutex<Blackboard>>,
    slot: usize,
    vetoes: u64,
}

impl CoordinatedController {
    /// Wraps an adaptive controller for `domain` around `shared`.
    pub fn new(cfg: AdaptiveConfig, domain: DomainId, shared: Arc<Mutex<Blackboard>>) -> Self {
        CoordinatedController {
            inner: AdaptiveDvfsController::new(cfg),
            shared,
            slot: domain.backend_index(),
            vetoes: 0,
        }
    }

    /// Down-steps vetoed so far.
    pub fn vetoes(&self) -> u64 {
        self.vetoes
    }
}

impl DvfsController for CoordinatedController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        self.shared.lock().expect("blackboard poisoned").utilization[self.slot] =
            sample.utilization();
        let action = self.inner.on_sample(ctx, sample)?;
        let is_down = match action {
            DvfsAction::Step(s) => s < 0,
            DvfsAction::Set(target) => target < ctx.current,
        };
        if is_down
            && self
                .shared
                .lock()
                .expect("blackboard poisoned")
                .other_domain_saturated(self.slot)
        {
            self.vetoes += 1;
            return None;
        }
        Some(action)
    }

    fn name(&self) -> &'static str {
        "adaptive-centralized"
    }
}

/// Builds the coordinated controller set: one shared blackboard, one
/// controller per back-end domain (paper defaults, saturation 0.75).
pub fn coordinated_controllers() -> impl FnMut(DomainId) -> Box<dyn DvfsController> {
    let shared = Blackboard::new(0.75);
    move |domain| {
        Box::new(CoordinatedController::new(
            AdaptiveConfig::for_domain(domain),
            domain,
            Arc::clone(&shared),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{OpIndex, TimePs, VfCurve};

    fn ctx<'a>(curve: &'a VfCurve, now: TimePs, current: OpIndex) -> ControllerCtx<'a> {
        ControllerCtx {
            now,
            domain: DomainId::Fp,
            current,
            curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired: 0,
        }
    }

    /// Drives one coordinated FP controller at empty queue while a fake
    /// INT utilization is posted to the blackboard.
    fn drive_with_int_pressure(int_util: f64, samples: u64) -> (u64, u64) {
        let shared = Blackboard::new(0.75);
        let mut fp = CoordinatedController::new(
            AdaptiveConfig::for_domain(DomainId::Fp),
            DomainId::Fp,
            Arc::clone(&shared),
        );
        shared
            .lock()
            .unwrap()
            .post(DomainId::Int.backend_index(), int_util);
        let curve = VfCurve::mcd_default();
        let mut now = TimePs::ZERO;
        let mut actions = 0;
        for _ in 0..samples {
            now += TimePs::from_ns(4);
            let c = ctx(&curve, now, curve.max_index());
            if fp
                .on_sample(
                    &c,
                    QueueSample {
                        occupancy: 0,
                        capacity: 16,
                    },
                )
                .is_some()
            {
                actions += 1;
            }
            // Keep the INT pressure posted (the FP sample overwrote only
            // its own slot).
            shared
                .lock()
                .unwrap()
                .post(DomainId::Int.backend_index(), int_util);
        }
        (actions, fp.vetoes())
    }

    #[test]
    fn down_steps_vetoed_under_foreign_saturation() {
        let (actions, vetoes) = drive_with_int_pressure(0.9, 2_000);
        assert_eq!(actions, 0, "all down-steps should be vetoed");
        assert!(vetoes > 0);
    }

    #[test]
    fn down_steps_allowed_when_no_domain_saturated() {
        let (actions, vetoes) = drive_with_int_pressure(0.3, 2_000);
        assert!(actions > 0, "descent should proceed normally");
        assert_eq!(vetoes, 0);
    }

    #[test]
    fn up_steps_never_vetoed() {
        let shared = Blackboard::new(0.75);
        shared.lock().unwrap().post(0, 1.0);
        let mut fp = CoordinatedController::new(
            AdaptiveConfig::for_domain(DomainId::Fp)
                .with_windows(0.0, 0.0)
                .with_delays(4.0, 4.0)
                .with_conversions(1.0, 1.0),
            DomainId::Fp,
            shared,
        );
        let curve = VfCurve::mcd_default();
        let c0 = ctx(&curve, TimePs::from_ns(4), OpIndex(100));
        assert_eq!(
            fp.on_sample(
                &c0,
                QueueSample {
                    occupancy: 4,
                    capacity: 16
                }
            ),
            None
        );
        let c1 = ctx(&curve, TimePs::from_ns(8), OpIndex(100));
        let a = fp.on_sample(
            &c1,
            QueueSample {
                occupancy: 8,
                capacity: 16,
            },
        );
        assert_eq!(a, Some(DvfsAction::Step(2)), "up-step must pass the veto");
    }

    #[test]
    fn blackboard_saturation_logic() {
        let b = Blackboard::new(0.75);
        b.lock().unwrap().utilization = [0.8, 0.1, 0.1];
        assert!(b.lock().unwrap().other_domain_saturated(1));
        assert!(b.lock().unwrap().other_domain_saturated(2));
        assert!(!b.lock().unwrap().other_domain_saturated(0));
    }

    #[test]
    fn factory_builds_distinct_controllers_sharing_state() {
        let mut factory = coordinated_controllers();
        let a = factory(DomainId::Int);
        let b = factory(DomainId::Fp);
        assert_eq!(a.name(), "adaptive-centralized");
        assert_eq!(b.name(), "adaptive-centralized");
    }

    #[test]
    #[should_panic(expected = "saturation out of range")]
    fn zero_saturation_panics() {
        let _ = Blackboard::new(0.0);
    }
}
