//! The resettable time-delay relay (Section 3).
//!
//! A signal must stay outside its deviation window for an *effective* delay
//! before an action triggers. The paper makes the delay adaptive two ways
//! (Section 5.1):
//!
//! * **signal scaling** — "larger time-counter increments for larger signal
//!   values": the counter advances by `|signal|` per sample, so the
//!   effective delay is `T_d0 / |signal|`;
//! * **frequency scaling** — the count-*down* delay is scaled by `1/f̂²`
//!   (equivalently, the increment by `f̂²`), so an already-slow domain is
//!   more cautious about scaling down further.

/// A resettable accumulating counter with threshold `t_d0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayCounter {
    t_d0: f64,
    accum: f64,
}

impl DelayCounter {
    /// Creates a counter with basic delay `t_d0` (in sampling periods).
    ///
    /// # Panics
    ///
    /// Panics unless `t_d0` is positive.
    pub fn new(t_d0: f64) -> Self {
        assert!(t_d0 > 0.0, "basic time delay must be positive");
        DelayCounter { t_d0, accum: 0.0 }
    }

    /// The configured basic delay.
    pub fn t_d0(&self) -> f64 {
        self.t_d0
    }

    /// The current accumulated count.
    pub fn accum(&self) -> f64 {
        self.accum
    }

    /// Advances the counter by `increment` (≥ 0); returns `true` when the
    /// threshold is reached (the relay fires).
    ///
    /// Negative or NaN increments are clamped to zero: the relay only
    /// accumulates evidence, it never un-accumulates it (going *back*
    /// inside the deviation window is what [`Self::reset`] is for). The
    /// clamp holds in release builds too; debug builds additionally flag
    /// the caller bug.
    pub fn advance(&mut self, increment: f64) -> bool {
        debug_assert!(increment >= 0.0, "counter increments are non-negative");
        if increment > 0.0 {
            self.accum += increment;
        }
        self.accum >= self.t_d0
    }

    /// Delay still to accumulate before the threshold (never negative).
    pub fn remaining(&self) -> f64 {
        (self.t_d0 - self.accum).max(0.0)
    }

    /// Resets the accumulated count to zero.
    pub fn reset(&mut self) {
        self.accum = 0.0;
    }

    /// Serializes the accumulated count (the threshold is configuration).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_f64(self.accum);
    }

    /// Restores state captured by [`DelayCounter::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.accum = r.take_f64()?;
        Ok(())
    }

    /// Effective number of samples until firing at a constant `increment`.
    pub fn samples_to_fire(&self, increment: f64) -> f64 {
        if increment <= 0.0 {
            f64::INFINITY
        } else {
            (self.t_d0 - self.accum).max(0.0) / increment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_t_d0_unit_increments() {
        let mut c = DelayCounter::new(3.0);
        assert!(!c.advance(1.0));
        assert!(!c.advance(1.0));
        assert!(c.advance(1.0));
    }

    #[test]
    fn larger_signals_fire_sooner() {
        let mut slow = DelayCounter::new(50.0);
        let mut fast = DelayCounter::new(50.0);
        let mut slow_n = 0;
        while !slow.advance(1.0) {
            slow_n += 1;
        }
        let mut fast_n = 0;
        while !fast.advance(10.0) {
            fast_n += 1;
        }
        assert!(fast_n < slow_n, "fast {fast_n} !< slow {slow_n}");
        assert_eq!(fast_n, 4); // fires on the 5th advance: 50/10 = 5 steps
    }

    #[test]
    fn reset_clears_progress() {
        let mut c = DelayCounter::new(2.0);
        c.advance(1.5);
        c.reset();
        assert_eq!(c.accum(), 0.0);
        assert!(!c.advance(1.5));
    }

    #[test]
    fn remaining_tracks_progress_and_clamps() {
        let mut c = DelayCounter::new(3.0);
        assert_eq!(c.remaining(), 3.0);
        c.advance(1.0);
        assert_eq!(c.remaining(), 2.0);
        c.advance(5.0);
        assert_eq!(c.remaining(), 0.0);
    }

    #[test]
    fn samples_to_fire_estimates() {
        let c = DelayCounter::new(50.0);
        assert_eq!(c.samples_to_fire(5.0), 10.0);
        assert_eq!(c.samples_to_fire(0.0), f64::INFINITY);
        let mut c = c;
        c.advance(40.0);
        assert_eq!(c.samples_to_fire(5.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_delay_panics() {
        let _ = DelayCounter::new(0.0);
    }

    /// Release builds compile out the `debug_assert`, so the clamp is the
    /// only thing standing between a buggy negative increment and a relay
    /// that silently *retreats* from firing. This test carries the
    /// `debug_assertions` guard inverted on purpose: under `cargo test`
    /// (debug) the assert catches the bug loudly, and under
    /// `cargo test --release` the clamp must hold.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-negative"))]
    fn negative_increments_never_roll_the_counter_back() {
        let mut c = DelayCounter::new(3.0);
        c.advance(2.5);
        c.advance(-10.0);
        assert_eq!(c.accum(), 2.5, "negative increment must be ignored");
        assert!(c.advance(0.5), "progress made before the bad call stands");

        let mut n = DelayCounter::new(3.0);
        n.advance(f64::NAN);
        assert_eq!(n.accum(), 0.0, "NaN must not poison the accumulator");
    }
}
