//! Deviation windows: the controller's magnitude filter (Section 3).

/// A symmetric interval `[−DW, +DW]` around the origin. Signals inside the
/// window are treated as noise and never start (and always reset) the
/// time-delay counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationWindow {
    half_width: f64,
}

impl DeviationWindow {
    /// Creates a window of half-width `dw`.
    ///
    /// # Panics
    ///
    /// Panics if `dw` is negative or non-finite.
    pub fn new(dw: f64) -> Self {
        assert!(dw.is_finite() && dw >= 0.0, "invalid deviation window {dw}");
        DeviationWindow { half_width: dw }
    }

    /// The window half-width.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Whether `signal` lies inside the window (inclusive).
    pub fn contains(&self, signal: f64) -> bool {
        signal.abs() <= self.half_width
    }

    /// The side of the window `signal` falls on, if outside.
    pub fn side(&self, signal: f64) -> Option<crate::fsm::Direction> {
        if self.contains(signal) {
            None
        } else if signal > 0.0 {
            Some(crate::fsm::Direction::Up)
        } else {
            Some(crate::fsm::Direction::Down)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::Direction;

    #[test]
    fn window_boundaries_are_inclusive() {
        let w = DeviationWindow::new(1.0);
        assert!(w.contains(0.0));
        assert!(w.contains(1.0));
        assert!(w.contains(-1.0));
        assert!(!w.contains(1.0001));
        assert!(!w.contains(-2.0));
    }

    #[test]
    fn zero_window_passes_any_nonzero_signal() {
        let w = DeviationWindow::new(0.0);
        assert!(w.contains(0.0));
        assert_eq!(w.side(0.5), Some(Direction::Up));
        assert_eq!(w.side(-0.5), Some(Direction::Down));
    }

    #[test]
    fn side_reports_direction() {
        let w = DeviationWindow::new(1.0);
        assert_eq!(w.side(0.5), None);
        assert_eq!(w.side(3.0), Some(Direction::Up));
        assert_eq!(w.side(-3.0), Some(Direction::Down));
    }

    #[test]
    #[should_panic(expected = "invalid deviation window")]
    fn negative_window_panics() {
        let _ = DeviationWindow::new(-1.0);
    }
}
