//! Adaptive-controller configuration (the paper's Section 5.1 settings).

use mcd_sim::DomainId;

/// Tunable parameters of one domain's adaptive DVFS controller.
///
/// Defaults reproduce the paper's experimental setup: `T_m0 = 50` and
/// `T_l0 = 8` sampling periods (inside the 2–8× ratio band required by
/// Remark 3), deviation windows of ±1 for `q − q_ref` and 0 for `Δq`, a
/// single-step action size, reference occupancies of 6 (INT) and 4 (FP,
/// LS), and `1/f̂²` scaling of the count-down delay.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Reference (target) queue occupancy `q_ref`.
    pub q_ref: f64,
    /// Deviation window around zero for the `q − q_ref` signal.
    pub dw_occupancy: f64,
    /// Deviation window around zero for the `q_i − q_{i−1}` signal.
    pub dw_delta: f64,
    /// Basic time delay `T_m0` for the `q − q_ref` signal, in sampling
    /// periods.
    pub t_m0: f64,
    /// Basic time delay `T_l0` for the `Δq` signal, in sampling periods.
    pub t_l0: f64,
    /// Operating-point steps per triggered action (1 for XScale-style
    /// fine-grained control; larger for Transmeta-style).
    pub step: i32,
    /// Whether the count-down delay is scaled by `1/f̂²` (Section 5.1).
    pub scale_down_delay_with_freq: bool,
    /// The paper's unit-conversion constant `m` for the `q − q_ref`
    /// signal: counter increments are `m·|signal|`, so the effective delay
    /// is `T_m0 / (m·|signal|)`. The paper leaves `m` unspecified; 0.5 was
    /// calibrated against the evaluation workloads (see EXPERIMENTS.md).
    pub m_occupancy: f64,
    /// The conversion constant `l` for the `q_i − q_{i−1}` signal.
    pub m_delta: f64,
}

impl AdaptiveConfig {
    /// The paper's configuration for a given back-end domain
    /// (`q_ref` = 6 for INT — about a third of its 20-entry queue — and 4
    /// for the FP and LS domains, a quarter of theirs).
    ///
    /// # Panics
    ///
    /// Panics if `domain` is the front end, which is not DVFS-controlled.
    pub fn for_domain(domain: DomainId) -> Self {
        let q_ref = match domain {
            DomainId::Int => 6.0,
            DomainId::Fp | DomainId::Ls => 4.0,
            DomainId::FrontEnd => panic!("the front end is not DVFS-controlled"),
        };
        AdaptiveConfig {
            q_ref,
            dw_occupancy: 1.0,
            dw_delta: 0.0,
            t_m0: 50.0,
            t_l0: 8.0,
            step: 1,
            scale_down_delay_with_freq: true,
            m_occupancy: 0.5,
            m_delta: 0.5,
        }
    }

    /// Overrides the unit-conversion constants `m` and `l`.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive.
    pub fn with_conversions(mut self, m_occupancy: f64, m_delta: f64) -> Self {
        assert!(
            m_occupancy > 0.0 && m_delta > 0.0,
            "conversion constants must be positive"
        );
        self.m_occupancy = m_occupancy;
        self.m_delta = m_delta;
        self
    }

    /// Overrides the reference occupancy (the paper's energy/performance
    /// trade-off knob: higher `q_ref` is more aggressive about energy).
    pub fn with_q_ref(mut self, q_ref: f64) -> Self {
        assert!(q_ref >= 0.0, "q_ref must be non-negative");
        self.q_ref = q_ref;
        self
    }

    /// Overrides both basic time delays.
    ///
    /// # Panics
    ///
    /// Panics unless both delays are positive.
    pub fn with_delays(mut self, t_m0: f64, t_l0: f64) -> Self {
        assert!(t_m0 > 0.0 && t_l0 > 0.0, "time delays must be positive");
        self.t_m0 = t_m0;
        self.t_l0 = t_l0;
        self
    }

    /// Overrides the per-action step size (Transmeta-style coarse control).
    ///
    /// # Panics
    ///
    /// Panics unless `step` is positive.
    pub fn with_step(mut self, step: i32) -> Self {
        assert!(step > 0, "step must be positive");
        self.step = step;
        self
    }

    /// Overrides the deviation windows.
    pub fn with_windows(mut self, dw_occupancy: f64, dw_delta: f64) -> Self {
        assert!(
            dw_occupancy >= 0.0 && dw_delta >= 0.0,
            "windows must be non-negative"
        );
        self.dw_occupancy = dw_occupancy;
        self.dw_delta = dw_delta;
        self
    }

    /// The delay ratio `T_m0 / T_l0` that Remark 3 constrains to 2–8.
    pub fn delay_ratio(&self) -> f64 {
        self.t_m0 / self.t_l0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_per_domain() {
        let int = AdaptiveConfig::for_domain(DomainId::Int);
        assert_eq!(int.q_ref, 6.0);
        let fp = AdaptiveConfig::for_domain(DomainId::Fp);
        assert_eq!(fp.q_ref, 4.0);
        assert_eq!(AdaptiveConfig::for_domain(DomainId::Ls).q_ref, 4.0);
        assert_eq!(fp.t_m0, 50.0);
        assert_eq!(fp.t_l0, 8.0);
        assert_eq!(fp.step, 1);
    }

    #[test]
    fn delay_ratio_is_inside_remark3_band() {
        let c = AdaptiveConfig::for_domain(DomainId::Int);
        assert!(c.delay_ratio() >= 2.0 && c.delay_ratio() <= 8.0);
    }

    #[test]
    fn builders_override() {
        let c = AdaptiveConfig::for_domain(DomainId::Fp)
            .with_q_ref(8.0)
            .with_delays(100.0, 20.0)
            .with_step(16)
            .with_windows(2.0, 1.0);
        assert_eq!(c.q_ref, 8.0);
        assert_eq!(c.delay_ratio(), 5.0);
        assert_eq!(c.step, 16);
        assert_eq!(c.dw_occupancy, 2.0);
    }

    #[test]
    #[should_panic(expected = "not DVFS-controlled")]
    fn front_end_config_panics() {
        let _ = AdaptiveConfig::for_domain(DomainId::FrontEnd);
    }

    #[test]
    #[should_panic(expected = "delays must be positive")]
    fn zero_delay_panics() {
        let _ = AdaptiveConfig::for_domain(DomainId::Int).with_delays(0.0, 8.0);
    }
}
