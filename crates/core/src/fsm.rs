//! The per-signal finite state machine (Figures 3 and 4).
//!
//! Each queue signal drives its own FSM through the paper's states:
//! **Wait** (signal inside the deviation window), **Count-Up/Count-Down**
//! (signal persistently outside; resettable delay counter running),
//! **Start-Up/Start-Down** (delay expired; action handed to the scheduler)
//! and **Act** (waiting out the physical switching time `T_s`). The
//! Start states are represented by the [`TriggerState::Fired`] report to
//! the scheduler, which either confirms the action (→ Act) or cancels it
//! (→ Wait).

use mcd_power::TimePs;

use crate::delay::DelayCounter;
use crate::deviation::DeviationWindow;

/// Direction of a pending or triggered frequency action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Frequency/voltage increment.
    Up,
    /// Frequency/voltage decrement.
    Down,
}

impl Direction {
    /// Signed unit step (+1 / −1).
    pub fn sign(self) -> i32 {
        match self {
            Direction::Up => 1,
            Direction::Down => -1,
        }
    }
}

/// What the FSM reports to the scheduler after one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerState {
    /// Nothing to do this sample.
    Idle,
    /// The delay expired: an action in this direction wants to start.
    Fired(Direction),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Wait,
    Counting(Direction),
    Acting { until: TimePs },
}

/// One queue signal's trigger FSM.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalFsm {
    window: DeviationWindow,
    counter: DelayCounter,
    state: State,
}

impl SignalFsm {
    /// Builds an FSM with deviation window `dw` and basic delay `t_d0`
    /// (sampling periods).
    pub fn new(dw: f64, t_d0: f64) -> Self {
        SignalFsm {
            window: DeviationWindow::new(dw),
            counter: DelayCounter::new(t_d0),
            state: State::Wait,
        }
    }

    /// Whether the FSM is in its Act state (an action is being switched).
    pub fn is_acting(&self) -> bool {
        matches!(self.state, State::Acting { .. })
    }

    /// Whether the FSM is currently counting toward a trigger.
    pub fn is_counting(&self) -> bool {
        matches!(self.state, State::Counting(_))
    }

    /// The direction being counted toward (`None` unless counting).
    pub fn direction(&self) -> Option<Direction> {
        match self.state {
            State::Counting(d) => Some(d),
            _ => None,
        }
    }

    /// Delay still to accumulate before the relay fires, in basic-delay
    /// units (sampling periods at unit signal).
    pub fn remaining(&self) -> f64 {
        self.counter.remaining()
    }

    /// Feeds one sample.
    ///
    /// * `signal` — the queue signal value;
    /// * `increment_scale` — multiplies the counter increment (1 for
    ///   up-counting; `f̂²` for down-counting when frequency scaling is on);
    /// * `now` — current time (to leave the Act state when `T_s` passes).
    ///
    /// Returns [`TriggerState::Fired`] exactly when the delay expires; the
    /// scheduler must then call [`SignalFsm::confirm`] or
    /// [`SignalFsm::cancel`].
    pub fn step(&mut self, signal: f64, increment_scale: f64, now: TimePs) -> TriggerState {
        match self.state {
            State::Acting { until } => {
                if now >= until {
                    self.state = State::Wait;
                    self.counter.reset();
                }
                TriggerState::Idle
            }
            State::Wait => {
                if let Some(dir) = self.window.side(signal) {
                    self.state = State::Counting(dir);
                    self.counter.reset();
                    self.advance(signal, increment_scale, dir)
                } else {
                    TriggerState::Idle
                }
            }
            State::Counting(dir) => match self.window.side(signal) {
                None => {
                    // Signal fell back inside the window: reset (Fig. 3).
                    self.state = State::Wait;
                    self.counter.reset();
                    TriggerState::Idle
                }
                Some(side) if side != dir => {
                    // Signal crossed to the other side: restart counting in
                    // the new direction.
                    self.state = State::Counting(side);
                    self.counter.reset();
                    self.advance(signal, increment_scale, side)
                }
                Some(_) => self.advance(signal, increment_scale, dir),
            },
        }
    }

    fn advance(&mut self, signal: f64, increment_scale: f64, dir: Direction) -> TriggerState {
        // Signal-magnitude-proportional increments emulate the
        // T_d = T_d0 / |signal| adaptive delay of Section 5.1.
        if self.counter.advance(signal.abs() * increment_scale) {
            TriggerState::Fired(dir)
        } else {
            TriggerState::Idle
        }
    }

    /// Confirms a fired trigger: the FSM enters Act until `until`
    /// (now + `T_s`).
    pub fn confirm(&mut self, until: TimePs) {
        self.state = State::Acting { until };
        self.counter.reset();
    }

    /// Cancels a fired trigger (opposite simultaneous actions): back to
    /// Wait.
    pub fn cancel(&mut self) {
        self.state = State::Wait;
        self.counter.reset();
    }

    /// Serializes the FSM's evolving state (the deviation window is
    /// configuration; the counter and the state tag evolve).
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.counter.save_state(w);
        match self.state {
            State::Wait => w.put_u8(0),
            State::Counting(dir) => {
                w.put_u8(1);
                w.put_u8(match dir {
                    Direction::Up => 0,
                    Direction::Down => 1,
                });
            }
            State::Acting { until } => {
                w.put_u8(2);
                w.put_u64(until.as_ps());
            }
        }
    }

    /// Restores state captured by [`SignalFsm::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.counter.load_state(r)?;
        self.state = match r.take_u8()? {
            0 => State::Wait,
            1 => State::Counting(match r.take_u8()? {
                0 => Direction::Up,
                1 => Direction::Down,
                d => {
                    return Err(mcd_snap::SnapError::Mismatch(format!(
                        "bad relay direction tag {d}"
                    )))
                }
            }),
            2 => State::Acting {
                until: TimePs::new(r.take_u64()?),
            },
            t => {
                return Err(mcd_snap::SnapError::Mismatch(format!(
                    "bad relay state tag {t}"
                )))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(samples: u64) -> TimePs {
        TimePs::from_ns(4) * samples
    }

    #[test]
    fn persistent_signal_fires_after_delay() {
        let mut fsm = SignalFsm::new(1.0, 5.0);
        // |signal| = 2, threshold 5 → fires on the 3rd sample (2+2+2 ≥ 5).
        assert_eq!(fsm.step(2.0, 1.0, at(0)), TriggerState::Idle);
        assert!(fsm.is_counting());
        assert_eq!(fsm.step(2.0, 1.0, at(1)), TriggerState::Idle);
        assert_eq!(
            fsm.step(2.0, 1.0, at(2)),
            TriggerState::Fired(Direction::Up)
        );
    }

    #[test]
    fn noise_inside_window_resets_counter() {
        let mut fsm = SignalFsm::new(1.0, 4.0);
        fsm.step(2.0, 1.0, at(0));
        fsm.step(0.5, 1.0, at(1)); // back inside DW → reset
        assert!(!fsm.is_counting());
        // Needs the full delay again.
        assert_eq!(fsm.step(2.0, 1.0, at(2)), TriggerState::Idle);
        assert_eq!(
            fsm.step(2.0, 1.0, at(3)),
            TriggerState::Fired(Direction::Up)
        );
    }

    #[test]
    fn side_flip_restarts_in_new_direction() {
        let mut fsm = SignalFsm::new(1.0, 4.0);
        fsm.step(3.0, 1.0, at(0)); // counting up
        let t = fsm.step(-3.0, 1.0, at(1)); // flips: restart counting down
        assert_eq!(t, TriggerState::Idle);
        assert_eq!(
            fsm.step(-3.0, 1.0, at(2)),
            TriggerState::Fired(Direction::Down)
        );
    }

    #[test]
    fn larger_signals_fire_sooner() {
        let mut small = SignalFsm::new(1.0, 50.0);
        let mut big = SignalFsm::new(1.0, 50.0);
        let mut small_n = 0;
        while small.step(2.0, 1.0, at(small_n)) == TriggerState::Idle {
            small_n += 1;
        }
        let mut big_n = 0;
        while big.step(10.0, 1.0, at(big_n)) == TriggerState::Idle {
            big_n += 1;
        }
        assert!(big_n < small_n, "big {big_n} !< small {small_n}");
    }

    #[test]
    fn down_scaling_slows_firing_at_low_frequency() {
        let mut full = SignalFsm::new(1.0, 8.0);
        let mut slow = SignalFsm::new(1.0, 8.0);
        let mut n_full = 0;
        while full.step(-2.0, 1.0, at(n_full)) == TriggerState::Idle {
            n_full += 1;
        }
        let f_hat: f64 = 0.5;
        let mut n_slow = 0;
        while slow.step(-2.0, f_hat * f_hat, at(n_slow)) == TriggerState::Idle {
            n_slow += 1;
        }
        // 1/f̂² = 4× longer delay at half frequency.
        assert_eq!(n_slow + 1, (n_full + 1) * 4);
    }

    #[test]
    fn acting_state_blocks_until_ts_passes() {
        let mut fsm = SignalFsm::new(1.0, 2.0);
        assert_eq!(
            fsm.step(5.0, 1.0, at(0)),
            TriggerState::Fired(Direction::Up)
        );
        fsm.confirm(at(10));
        assert!(fsm.is_acting());
        // While acting, signals are ignored.
        assert_eq!(fsm.step(9.0, 1.0, at(5)), TriggerState::Idle);
        assert!(fsm.is_acting());
        // At T_s the FSM returns to Wait and can trigger again.
        assert_eq!(fsm.step(9.0, 1.0, at(10)), TriggerState::Idle);
        assert!(!fsm.is_acting());
        assert_eq!(
            fsm.step(9.0, 1.0, at(11)),
            TriggerState::Fired(Direction::Up)
        );
    }

    #[test]
    fn cancel_returns_to_wait() {
        let mut fsm = SignalFsm::new(0.0, 1.0);
        assert_eq!(
            fsm.step(-1.0, 1.0, at(0)),
            TriggerState::Fired(Direction::Down)
        );
        fsm.cancel();
        assert!(!fsm.is_acting() && !fsm.is_counting());
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Up.sign(), 1);
        assert_eq!(Direction::Down.sign(), -1);
    }

    #[test]
    fn direction_and_remaining_expose_relay_progress() {
        let mut fsm = SignalFsm::new(1.0, 5.0);
        assert_eq!(fsm.direction(), None);
        assert_eq!(fsm.remaining(), 5.0);
        fsm.step(2.0, 1.0, at(0));
        assert_eq!(fsm.direction(), Some(Direction::Up));
        assert_eq!(fsm.remaining(), 3.0);
        fsm.step(0.0, 1.0, at(1)); // back inside → reset
        assert_eq!(fsm.direction(), None);
        assert_eq!(fsm.remaining(), 5.0);
    }
}
