//! The load generator against a real in-process server: a short
//! keep-alive phase and a short one-shot phase, checking the report's
//! invariants rather than machine-dependent absolute numbers.

use std::time::Duration;

use mcd_bench_http::{render_record, run_phase, LoadConfig, Mode};
use mcd_serve::{ServeConfig, Server};

#[test]
fn both_phases_complete_cleanly_against_a_live_server() {
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let cfg = LoadConfig {
        addr: server.addr(),
        rate: 150.0,
        duration: Duration::from_secs(2),
        connections: 4,
        distinct: 4,
        ops: 2000,
        seed: 9,
    };

    let keepalive = run_phase(&cfg, Mode::KeepAlive);
    let oneshot = run_phase(&cfg, Mode::OneShot);

    for phase in [&keepalive, &oneshot] {
        assert!(phase.requests > 50, "{}: too few requests", phase.mode);
        assert_eq!(phase.errors, 0, "{}: connection errors", phase.mode);
        assert_eq!(phase.resets, 0, "{}: connection resets", phase.mode);
        assert_eq!(phase.unexpected_status, 0, "{}: bad statuses", phase.mode);
        assert_eq!(
            phase.ok + phase.shed,
            phase.requests,
            "{}: every request is 200 or 503",
            phase.mode
        );
        assert!(phase.p50_us <= phase.p99_us, "{}: p50 > p99", phase.mode);
        assert!(phase.p99_us <= phase.max_us, "{}: p99 > max", phase.mode);
        assert!(phase.achieved_rps > 0.0);
    }

    // The disciplines must actually differ: pooled sockets amortize
    // far past the 5x gate, one-shot cannot exceed one per connection.
    assert!(
        keepalive.reuse_ratio >= 5.0,
        "keep-alive reuse {}x below the 5x bar",
        keepalive.reuse_ratio
    );
    assert!(
        oneshot.reuse_ratio <= 1.0 + 1e-9,
        "one-shot reuse {}x should be at most 1x",
        oneshot.reuse_ratio
    );
    assert!(
        keepalive.connections_opened < oneshot.connections_opened,
        "keep-alive must open fewer connections ({} vs {})",
        keepalive.connections_opened,
        oneshot.connections_opened
    );

    let record = render_record(&cfg, &[keepalive, oneshot]);
    assert!(record.contains("\"mode\": \"keepalive\""));
    assert!(record.contains("\"mode\": \"oneshot\""));
    server.shutdown().expect("clean shutdown");
}
