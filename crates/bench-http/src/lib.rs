//! Open-loop HTTP load generator for the `mcd-serve` service.
//!
//! The generator models *offered* load, not closed-loop request/reply
//! lockstep: arrivals follow a Poisson process at a fixed rate, each
//! arrival is stamped with its scheduled instant, and latency is
//! measured from that stamp to response completion — so queueing delay
//! inside the server (and inside the generator's own dispatch queue)
//! counts against the service, exactly as a production client would
//! experience it.
//!
//! Two phases exercise the two connection disciplines:
//!
//! * **keepalive** — a fixed pool of worker connections reuses sockets
//!   across requests (HTTP/1.1 default). The phase report's
//!   `reuse_ratio` (requests per connection opened) is the number the
//!   CI load gate holds at ≥ 5x.
//! * **oneshot** — every request opens a fresh connection and sends
//!   `Connection: close`, the pre-event-loop behavior, kept as the
//!   baseline the keep-alive discipline is measured against.
//!
//! Everything is deterministic given `--seed` except the latencies
//! themselves: arrivals come from a seeded LCG, run bodies cycle
//! through a fixed set of fingerprints, and the report is plain JSON
//! rendered with stable field order.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Connection discipline for a load phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reuse a pool of persistent connections (HTTP/1.1 default).
    KeepAlive,
    /// One connection per request, `Connection: close` on the wire.
    OneShot,
}

impl Mode {
    /// Stable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Mode::KeepAlive => "keepalive",
            Mode::OneShot => "oneshot",
        }
    }
}

/// One load phase's shape: where, how hard, for how long.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Offered load in requests per second (Poisson arrival rate).
    pub rate: f64,
    /// How long to generate arrivals for.
    pub duration: Duration,
    /// Worker (and, for keep-alive, connection-pool) size.
    pub connections: usize,
    /// Distinct run fingerprints to cycle through: the first pass
    /// through them executes, later passes replay the server's cache.
    pub distinct: u64,
    /// `ops` field of each run body.
    pub ops: u64,
    /// Arrival-process seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7979".parse().expect("literal address"),
            rate: 200.0,
            duration: Duration::from_secs(10),
            connections: 8,
            distinct: 8,
            ops: 6000,
            seed: 1,
        }
    }
}

/// What one phase measured.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The connection discipline, by [`Mode::name`].
    pub mode: &'static str,
    /// Requests completed (any HTTP status).
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (the server's load-shed path).
    pub shed: u64,
    /// Other HTTP statuses — always a gate failure.
    pub unexpected_status: u64,
    /// Requests that died on a connection error.
    pub errors: u64,
    /// Of those, connection resets (RST while reading a response — the
    /// trap the shed path's drain-then-close exists to prevent).
    pub resets: u64,
    /// Connections opened over the phase.
    pub connections_opened: u64,
    /// `requests / connections_opened`.
    pub reuse_ratio: f64,
    /// Median open-loop latency, microseconds.
    pub p50_us: u64,
    /// Tail open-loop latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Offered arrival rate (configured).
    pub offered_rps: f64,
    /// Completed requests over the measured wall time.
    pub achieved_rps: f64,
    /// `shed / requests`.
    pub shed_rate: f64,
    /// Wall time from first arrival to last completion, seconds.
    pub wall_s: f64,
}

impl PhaseReport {
    /// One stable-order JSON object per phase.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"requests\": {}, \"ok\": {}, \"shed\": {}, \
             \"unexpected_status\": {}, \"errors\": {}, \"resets\": {}, \
             \"connections_opened\": {}, \"reuse_ratio\": {:.2}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
             \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
             \"shed_rate\": {:.4}, \"wall_s\": {:.3}}}",
            self.mode,
            self.requests,
            self.ok,
            self.shed,
            self.unexpected_status,
            self.errors,
            self.resets,
            self.connections_opened,
            self.reuse_ratio,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.offered_rps,
            self.achieved_rps,
            self.shed_rate,
            self.wall_s,
        )
    }
}

/// Renders the full record the CI gate consumes: the workload shape
/// plus one [`PhaseReport`] per phase, stable field order throughout.
pub fn render_record(cfg: &LoadConfig, phases: &[PhaseReport]) -> String {
    let rendered: Vec<String> = phases
        .iter()
        .map(|p| format!("    {}", p.to_json()))
        .collect();
    format!(
        "{{\n  \"rate_rps\": {:.1},\n  \"duration_s\": {:.1},\n  \
         \"connections\": {},\n  \
         \"workload\": {{\"experiment\": \"fig8\", \"ops\": {}, \"distinct\": {}}},\n  \
         \"phases\": [\n{}\n  ]\n}}\n",
        cfg.rate,
        cfg.duration.as_secs_f64(),
        cfg.connections,
        cfg.ops,
        cfg.distinct,
        rendered.join(",\n"),
    )
}

/// Linear percentile over an unsorted latency sample (nearest-rank on
/// the sorted order). Returns 0 for an empty sample.
pub fn percentile_us(samples: &mut [u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Deterministic 64-bit LCG (same constants as the simulator's
/// workload generators) with an exponential-variate helper for
/// Poisson inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator; seed 0 is remapped to a fixed constant.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform in (0, 1] — never 0, so `ln` below is always finite.
    pub fn next_unit(&mut self) -> f64 {
        let mantissa = (self.next_u64() >> 11) as f64;
        (mantissa + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap for a Poisson process at `rate`
    /// events per second.
    pub fn next_gap(&mut self, rate: f64) -> Duration {
        let gap_s = -self.next_unit().ln() / rate.max(1e-9);
        Duration::from_secs_f64(gap_s.min(60.0))
    }
}

/// The run body for the `n`-th request: `distinct` fingerprints cycle,
/// so the steady state exercises the cache/coalesce read path while
/// the first pass through the cycle costs real simulation work.
pub fn body_for(n: u64, cfg: &LoadConfig) -> String {
    format!(
        "{{\"experiment\": \"fig8\", \"ops\": {}, \"seed\": {}}}",
        cfg.ops,
        n % cfg.distinct.max(1)
    )
}

/// How one request ended.
enum Fate {
    Status(u16, bool),
    ConnError(std::io::Error),
}

/// A minimal blocking HTTP/1.1 client over one socket, framing
/// responses by `Content-Length`.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    served: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            served: 0,
        })
    }

    /// Sends one `POST /run` and reads the reply. Returns the status
    /// and whether the server is closing the connection.
    fn exchange(&mut self, body: &str, close: bool) -> std::io::Result<(u16, bool)> {
        let connection = if close { "Connection: close\r\n" } else { "" };
        let wire = format!(
            "POST /run HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n{connection}\r\n{body}",
            body.len()
        );
        self.stream.write_all(wire.as_bytes())?;
        let head = self.read_until_blank()?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidData, format!("bad status line: {head:?}"))
            })?;
        let len: usize = header_value(&head, "content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "missing Content-Length"))?;
        self.read_exact_buffered(len)?;
        let closing =
            header_value(&head, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        self.served += 1;
        Ok((status, closing))
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 8192];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_until_blank(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head: Vec<u8> = self.buf.drain(..pos + 4).collect();
                return Ok(String::from_utf8_lossy(&head).into_owned());
            }
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
        }
    }

    fn read_exact_buffered(&mut self, n: usize) -> std::io::Result<()> {
        while self.buf.len() < n {
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        self.buf.drain(..n);
        Ok(())
    }
}

fn header_value(head: &str, wanted: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        if name.trim().eq_ignore_ascii_case(wanted) {
            Some(value.trim().to_string())
        } else {
            None
        }
    })
}

struct WorkerTally {
    latencies_us: Vec<u64>,
    ok: u64,
    shed: u64,
    unexpected: u64,
    errors: u64,
    resets: u64,
    opened: u64,
    last_done: Option<Instant>,
}

/// Runs one phase: a scheduler thread emits Poisson-stamped arrivals,
/// `cfg.connections` workers consume them over the chosen connection
/// discipline, and the merged tallies become the [`PhaseReport`].
pub fn run_phase(cfg: &LoadConfig, mode: Mode) -> PhaseReport {
    let (tx, rx) = mpsc::channel::<Instant>();
    let rx = Arc::new(Mutex::new(rx));
    let request_no = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let workers: Vec<_> = (0..cfg.connections.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let request_no = Arc::clone(&request_no);
            let cfg = cfg.clone();
            std::thread::spawn(move || worker_loop(&cfg, mode, &rx, &request_no))
        })
        .collect();

    // Scheduler: absolute deadlines keep the offered rate honest even
    // when individual sleeps overshoot.
    let mut lcg = Lcg::new(cfg.seed);
    let mut next = Instant::now();
    let phase_end = next + cfg.duration;
    while next < phase_end {
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        if tx.send(next).is_err() {
            break;
        }
        next += lcg.next_gap(cfg.rate);
    }
    drop(tx);

    let mut merged = WorkerTally {
        latencies_us: Vec::new(),
        ok: 0,
        shed: 0,
        unexpected: 0,
        errors: 0,
        resets: 0,
        opened: 0,
        last_done: None,
    };
    for w in workers {
        let t = w.join().expect("load worker panicked");
        merged.latencies_us.extend(t.latencies_us);
        merged.ok += t.ok;
        merged.shed += t.shed;
        merged.unexpected += t.unexpected;
        merged.errors += t.errors;
        merged.resets += t.resets;
        merged.opened += t.opened;
        merged.last_done = match (merged.last_done, t.last_done) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    let requests = merged.latencies_us.len() as u64;
    let wall_s = merged
        .last_done
        .map(|t| (t - started).as_secs_f64())
        .unwrap_or(0.0)
        .max(1e-9);
    let p50 = percentile_us(&mut merged.latencies_us, 50.0);
    let p99 = percentile_us(&mut merged.latencies_us, 99.0);
    let max = merged.latencies_us.last().copied().unwrap_or(0);
    PhaseReport {
        mode: mode.name(),
        requests,
        ok: merged.ok,
        shed: merged.shed,
        unexpected_status: merged.unexpected,
        errors: merged.errors,
        resets: merged.resets,
        connections_opened: merged.opened,
        reuse_ratio: requests as f64 / merged.opened.max(1) as f64,
        p50_us: p50,
        p99_us: p99,
        max_us: max,
        offered_rps: cfg.rate,
        achieved_rps: requests as f64 / wall_s,
        shed_rate: merged.shed as f64 / requests.max(1) as f64,
        wall_s,
    }
}

fn worker_loop(
    cfg: &LoadConfig,
    mode: Mode,
    rx: &Mutex<mpsc::Receiver<Instant>>,
    request_no: &AtomicU64,
) -> WorkerTally {
    let mut tally = WorkerTally {
        latencies_us: Vec::new(),
        ok: 0,
        shed: 0,
        unexpected: 0,
        errors: 0,
        resets: 0,
        opened: 0,
        last_done: None,
    };
    let mut conn: Option<Client> = None;
    loop {
        // Hold the lock only to receive; the exchange happens outside.
        let scheduled = match rx.lock().expect("receiver lock").recv() {
            Ok(t) => t,
            Err(_) => break,
        };
        let n = request_no.fetch_add(1, Ordering::Relaxed);
        let body = body_for(n, cfg);
        let close = mode == Mode::OneShot;
        match attempt(cfg, &mut conn, &mut tally.opened, &body, close) {
            Fate::Status(status, closing) => {
                let done = Instant::now();
                tally.latencies_us.push(
                    done.duration_since(scheduled)
                        .as_micros()
                        .min(u64::MAX as u128) as u64,
                );
                tally.last_done = Some(done);
                match status {
                    200 => tally.ok += 1,
                    503 => tally.shed += 1,
                    _ => tally.unexpected += 1,
                }
                if closing || close {
                    conn = None;
                }
            }
            Fate::ConnError(e) => {
                tally.errors += 1;
                if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) {
                    tally.resets += 1;
                }
                conn = None;
            }
        }
    }
    tally
}

/// One request attempt. A send on a pooled connection that the server
/// has since closed (idle deadline, earlier shed) fails fast — that is
/// the normal keep-alive stale-socket race, so it retries once on a
/// fresh connection before counting anything as an error.
fn attempt(
    cfg: &LoadConfig,
    conn: &mut Option<Client>,
    opened: &mut u64,
    body: &str,
    close: bool,
) -> Fate {
    for retry in 0..2 {
        let reused = conn.is_some();
        let client = match conn {
            Some(c) => c,
            None => match Client::connect(cfg.addr) {
                Ok(c) => {
                    *opened += 1;
                    conn.insert(c)
                }
                Err(e) => return Fate::ConnError(e),
            },
        };
        match client.exchange(body, close) {
            Ok((status, closing)) => return Fate::Status(status, closing),
            Err(e) => {
                *conn = None;
                if reused && retry == 0 {
                    continue; // stale pooled socket: one fresh retry
                }
                return Fate::ConnError(e);
            }
        }
    }
    unreachable!("attempt loop returns within two iterations")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        // round(0.5 * 99) = 50, zero-indexed into 1..=100 → 51.
        assert_eq!(percentile_us(&mut v, 50.0), 51);
        assert_eq!(percentile_us(&mut v, 99.0), 99);
        assert_eq!(percentile_us(&mut v, 100.0), 100);
        assert_eq!(percentile_us(&mut [], 99.0), 0);
        assert_eq!(percentile_us(&mut [7], 50.0), 7);
    }

    #[test]
    fn lcg_is_deterministic_and_gaps_are_positive() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..1000 {
            let u = a.next_unit();
            assert!(u > 0.0 && u <= 1.0, "unit variate out of range: {u}");
            assert_eq!(a.state, {
                b.next_unit();
                b.state
            });
        }
        let mut gaps = Lcg::new(7);
        let mean: f64 = (0..10_000)
            .map(|_| gaps.next_gap(100.0).as_secs_f64())
            .sum::<f64>()
            / 10_000.0;
        assert!(
            (mean - 0.01).abs() < 0.002,
            "mean inter-arrival at 100 rps should be ~10ms, got {mean}"
        );
    }

    #[test]
    fn bodies_cycle_through_distinct_fingerprints() {
        let cfg = LoadConfig {
            distinct: 3,
            ops: 500,
            ..LoadConfig::default()
        };
        assert_eq!(body_for(0, &cfg), body_for(3, &cfg));
        assert_ne!(body_for(0, &cfg), body_for(1, &cfg));
        assert!(body_for(2, &cfg).contains("\"ops\": 500"));
    }

    #[test]
    fn record_renders_every_gated_field() {
        let cfg = LoadConfig::default();
        let phase = PhaseReport {
            mode: "keepalive",
            requests: 10,
            ok: 9,
            shed: 1,
            unexpected_status: 0,
            errors: 0,
            resets: 0,
            connections_opened: 2,
            reuse_ratio: 5.0,
            p50_us: 1000,
            p99_us: 9000,
            max_us: 12000,
            offered_rps: 200.0,
            achieved_rps: 190.0,
            shed_rate: 0.1,
            wall_s: 1.0,
        };
        let record = render_record(&cfg, &[phase]);
        for field in [
            "\"rate_rps\"",
            "\"phases\"",
            "\"mode\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"shed_rate\"",
            "\"reuse_ratio\"",
            "\"errors\"",
            "\"resets\"",
            "\"achieved_rps\"",
        ] {
            assert!(record.contains(field), "missing {field} in {record}");
        }
    }
}
