//! `mcd-bench-http` binary: drive a running `mcd-serve` instance with
//! open-loop Poisson load and emit the JSON record the CI load gate
//! compares against `results/bench_http.json`.
//!
//! ```text
//! mcd-serve --addr 127.0.0.1:7979 &
//! mcd-bench-http --addr 127.0.0.1:7979 --rate 200 --duration 10 --out bench_http.json
//! ```

use std::time::Duration;

use mcd_bench_http::{render_record, run_phase, LoadConfig, Mode};

fn usage() -> ! {
    eprintln!(
        "usage: mcd-bench-http [options]\n\
         \n\
         --addr HOST:PORT    target server (default 127.0.0.1:7979)\n\
         --rate RPS          offered Poisson arrival rate (default 200)\n\
         --duration SECS     arrival window per phase (default 10)\n\
         --connections N     worker/connection-pool size (default 8)\n\
         --distinct N        distinct run fingerprints cycled (default 8)\n\
         --ops N             dynamic operations per run body (default 6000)\n\
         --seed N            arrival-process seed (default 1)\n\
         --phases WHICH      keepalive | oneshot | both (default both)\n\
         --out FILE          also write the JSON record to FILE"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("error: bad value {v:?} for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut cfg = LoadConfig::default();
    let mut phases = vec![Mode::KeepAlive, Mode::OneShot];
    let mut out: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => {
                let raw: String = parse(&arg, argv.next());
                cfg.addr = match raw.parse() {
                    Ok(a) => a,
                    Err(_) => {
                        eprintln!("error: bad address {raw:?}");
                        usage();
                    }
                };
            }
            "--rate" => cfg.rate = parse(&arg, argv.next()),
            "--duration" => cfg.duration = Duration::from_secs(parse(&arg, argv.next())),
            "--connections" => cfg.connections = parse(&arg, argv.next()),
            "--distinct" => cfg.distinct = parse(&arg, argv.next()),
            "--ops" => cfg.ops = parse(&arg, argv.next()),
            "--seed" => cfg.seed = parse(&arg, argv.next()),
            "--phases" => {
                phases = match parse::<String>(&arg, argv.next()).as_str() {
                    "keepalive" => vec![Mode::KeepAlive],
                    "oneshot" => vec![Mode::OneShot],
                    "both" => vec![Mode::KeepAlive, Mode::OneShot],
                    other => {
                        eprintln!("error: unknown phase set {other:?}");
                        usage();
                    }
                };
            }
            "--out" => out = Some(parse(&arg, argv.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }
    if !(cfg.rate.is_finite() && cfg.rate > 0.0) {
        eprintln!("error: --rate must be positive");
        usage();
    }

    let mut reports = Vec::new();
    for mode in phases {
        eprintln!(
            "phase {}: {:.0} rps offered for {:.0}s over {} workers",
            mode.name(),
            cfg.rate,
            cfg.duration.as_secs_f64(),
            cfg.connections
        );
        let report = run_phase(&cfg, mode);
        eprintln!(
            "phase {}: {} requests ({} ok, {} shed, {} errors), \
             p50 {:.1}ms p99 {:.1}ms, {:.1} rps achieved, reuse {:.1}x",
            report.mode,
            report.requests,
            report.ok,
            report.shed,
            report.errors,
            report.p50_us as f64 / 1000.0,
            report.p99_us as f64 / 1000.0,
            report.achieved_rps,
            report.reuse_ratio,
        );
        reports.push(report);
    }

    let record = render_record(&cfg, &reports);
    print!("{record}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &record) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    // Connection-level failures make the record unusable as a
    // reference; fail loudly rather than letting a gate compare junk.
    if reports
        .iter()
        .any(|r| r.errors > 0 || r.unexpected_status > 0)
    {
        eprintln!("error: connection errors or unexpected statuses during the run");
        std::process::exit(1);
    }
}
