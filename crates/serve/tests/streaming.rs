//! Live trace streaming: `POST /run?stream=1` and `GET
//! /watch/<fingerprint>` fan the leader's §6 trace events out as
//! chunked NDJSON, and the stream's final line is byte-for-byte the
//! plain `/run` response — streamed-equals-unstreamed is the contract.

mod util;

use std::time::Duration;

use mcd_bench::checkpoint::{str_field, CheckpointDir};
use mcd_bench::runner::RunConfig;
use mcd_serve::{ServeConfig, Server};
use util::{metric, run, KeepAlive};

/// The fan-out key a `/run` body maps to, computed the way the router
/// computes it. The final assertion in each test cross-checks this
/// against the `fingerprint` field the server actually reports, so the
/// two derivations cannot drift silently.
fn key_for(id: &str, ops: u64, seed: u64) -> String {
    let mut cfg = RunConfig::quick();
    cfg.ops = ops;
    cfg.seed = seed;
    format!("{};experiment={id}", CheckpointDir::fingerprint(&cfg))
}

/// A fresh streamed run emits event lines and ends with exactly the
/// body a plain `/run` returns; the cached replay of the same request
/// streams the identical final line again.
#[test]
fn streamed_final_line_equals_unstreamed_body() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let body = "{\"experiment\": \"fig8\", \"ops\": 60000, \"seed\": 11}";

    // Stream the *first* execution: the connection is its own flight's
    // leader, so trace events flow into the room it subscribed to.
    let mut conn = KeepAlive::connect(addr).expect("connect");
    conn.send("POST", "/run?stream=1", body.as_bytes())
        .expect("send");
    let (status, lines) = conn.read_stream().expect("stream completes");
    assert_eq!(status, 200);
    assert!(
        lines.len() > 1,
        "a fresh run streams trace events before the final line, got {lines:?}"
    );
    for event in &lines[..lines.len() - 1] {
        assert!(
            event.contains("\"label\"") && event.contains("\"event\""),
            "event lines carry a label and the trace event: {event:?}"
        );
    }
    let final_line = lines.last().expect("final line").clone();

    // The plain run replays from cache and must be the same bytes.
    let plain = run(addr, body).expect("plain run");
    assert_eq!(plain.status, 200);
    assert_eq!(
        final_line, plain.body,
        "streamed final line is the exact /run body"
    );

    // Streaming the now-cached request again still ends with those
    // bytes — a hit streams no events, just the final line.
    let mut replay = KeepAlive::connect(addr).expect("connect");
    replay
        .send("POST", "/run?stream=1", body.as_bytes())
        .expect("send");
    let (status, lines) = replay.read_stream().expect("replay stream");
    assert_eq!(status, 200);
    assert_eq!(lines.last(), Some(&plain.body), "cached replay, same bytes");

    let reported = str_field(&plain.body, "fingerprint").expect("fingerprint field");
    assert_eq!(reported, key_for("fig8", 60000, 11));
    assert!(metric(addr, "streams_opened") >= 2);
    assert!(metric(addr, "stream_events") >= 1);
    assert_eq!(
        metric(addr, "runs_executed"),
        1,
        "one execution fed both streams"
    );
    server.shutdown().expect("clean shutdown");
}

/// A watcher attaches to an in-flight run by fingerprint and tails it
/// to the end: events, then a final line equal to the runner's own
/// response body.
#[test]
fn watcher_tails_an_in_flight_run_to_the_same_final_line() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let body = "{\"experiment\": \"fig8\", \"ops\": 800000, \"seed\": 42}";
    let key = key_for("fig8", 800000, 42);

    // Launch the run but do not read its reply yet — it is in flight.
    let mut runner = KeepAlive::connect(addr).expect("runner connect");
    runner
        .send("POST", "/run", body.as_bytes())
        .expect("launch");

    // Attach by fingerprint. 404 means the flight has not opened its
    // room yet (the job may still be in the queue); keep knocking.
    let mut watcher = KeepAlive::connect(addr).expect("watcher connect");
    let mut tail = None;
    for _ in 0..4000 {
        watcher
            .send("GET", &format!("/watch/{key}"), b"")
            .expect("watch");
        let (status, lines) = watcher.read_stream().expect("watch reply");
        if status == 200 {
            tail = Some(lines);
            break;
        }
        assert_eq!(status, 404, "watch either attaches or 404s");
        std::thread::sleep(Duration::from_millis(5));
    }
    let tail = tail.expect("watcher attaches while the run is in flight");

    let reply = runner.read_reply().expect("runner reply");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        tail.last(),
        Some(&reply.body),
        "watcher's final line is the runner's exact response body"
    );
    for event in &tail[..tail.len() - 1] {
        assert!(
            event.contains("\"label\"") && event.contains("\"event\""),
            "tailed lines are labeled trace events: {event:?}"
        );
    }
    assert_eq!(
        str_field(&reply.body, "fingerprint").as_deref(),
        Some(key.as_str()),
        "the advertised fingerprint is the watchable key"
    );
    assert!(metric(addr, "streams_opened") >= 1);
    server.shutdown().expect("clean shutdown");
}

/// A subscriber that negotiates `Accept: application/x-mcdt` receives
/// the same stream as CRC'd binary frames: decodable event frames, then
/// a meta frame whose text is byte-for-byte the plain `/run` body.
#[test]
fn binary_stream_decodes_to_the_same_final_body() {
    use mcd_trace::{decode_frame, StreamFrame};

    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let body = "{\"experiment\": \"fig8\", \"ops\": 60000, \"seed\": 12}";

    let mut conn = KeepAlive::connect(addr).expect("connect");
    conn.send_accept(
        "POST",
        "/run?stream=1",
        "application/x-mcdt",
        body.as_bytes(),
    )
    .expect("send");
    let (status, wire, content_type) = conn.read_stream_raw().expect("stream completes");
    assert_eq!(status, 200);
    assert_eq!(
        content_type.as_deref(),
        Some("application/x-mcdt"),
        "binary streams advertise their media type"
    );

    // The wire is a concatenation of self-contained frames; walk it.
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < wire.len() {
        let (frame, used) = decode_frame(&wire[pos..])
            .unwrap_or_else(|e| panic!("undecodable frame at offset {pos}: {e}"));
        frames.push(frame);
        pos += used;
    }
    assert_eq!(pos, wire.len(), "no trailing garbage after the frames");
    assert!(frames.len() > 1, "a fresh run streams event frames");
    let (events, metas): (Vec<_>, Vec<_>) = frames
        .iter()
        .partition(|f| matches!(f, StreamFrame::Event { .. }));
    assert!(!events.is_empty(), "event frames precede the final meta");
    for f in &events {
        let StreamFrame::Event { label, .. } = f else {
            unreachable!()
        };
        assert!(!label.is_empty(), "event frames carry the run label");
    }
    assert_eq!(metas.len(), 1, "exactly one final meta frame");
    let StreamFrame::Meta { line } = metas[0] else {
        unreachable!()
    };

    // The meta frame's text is the exact plain /run body.
    let plain = run(addr, body).expect("plain run");
    assert_eq!(plain.status, 200);
    assert_eq!(format!("{line}\n"), plain.body, "meta frame is the body");

    assert!(metric(addr, "stream_frames") >= 1, "frame counter moved");
    assert_eq!(metric(addr, "runs_executed"), 1);
    server.shutdown().expect("clean shutdown");
}

/// Watching a fingerprint with no active flight answers 404 without
/// giving up the connection.
#[test]
fn watching_an_inactive_fingerprint_answers_404() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    conn.send("GET", "/watch/no-such-fingerprint", b"")
        .expect("watch");
    let (status, lines) = conn.read_stream().expect("404 reply");
    assert_eq!(status, 404);
    assert!(lines.concat().contains("no-active-flight"), "got {lines:?}");
    // The connection survives the miss.
    let reply = conn
        .exchange("GET", "/healthz", b"")
        .expect("reuse after 404");
    assert_eq!(reply.status, 200);
    server.shutdown().expect("clean shutdown");
}

/// A subscriber that disconnects mid-stream is unregistered by the
/// event loop's teardown: the run completes for everyone else and no
/// fan-out registration leaks.
#[test]
fn mid_stream_disconnect_leaks_no_registrations() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let body = "{\"experiment\": \"fig8\", \"ops\": 800000, \"seed\": 43}";

    // A streaming runner that walks away: send the request, give the
    // flight a moment to start, then drop the socket mid-stream.
    {
        let mut quitter = KeepAlive::connect(addr).expect("connect");
        quitter
            .send("POST", "/run?stream=1", body.as_bytes())
            .expect("launch streamed run");
        std::thread::sleep(Duration::from_millis(150));
    } // socket closed here, stream still in flight

    // The flight itself is unaffected: a plain request for the same
    // work joins it (or replays the cache) and completes normally.
    let reply = run(addr, body).expect("flight survives the disconnect");
    assert_eq!(reply.status, 200, "{}", reply.body);

    // Give the event loop a beat to process the EOF, then confirm the
    // registry gauges drained to zero.
    let mut cleaned = false;
    for _ in 0..100 {
        if metric(addr, "stream_subscribers") == 0 && metric(addr, "stream_rooms") == 0 {
            cleaned = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cleaned, "disconnected subscriber must be unregistered");
    assert_eq!(metric(addr, "runs_executed"), 1);
    server.shutdown().expect("clean shutdown");
}
