//! Soak test: sustained mixed traffic against one server instance.
//!
//! Ignored by default (CI's `serve` job runs it explicitly with
//! `-- --ignored`); `MCD_SOAK_SECS` overrides the 30 s default. The
//! invariants, held for the whole soak:
//!
//! - every response is 200 or 503 (shed) — anything else fails the run;
//! - for each distinct run configuration, every 200 body observed over
//!   the soak carries identical simulation content (coalescing, cache
//!   and deterministic simulation end to end). Only the wall-clock
//!   fields (`wall_s`, `simulated_mips`, `run_wall_p50_s`,
//!   `run_wall_p99_s`) are scrubbed before comparing: the small cache
//!   forces evicted fingerprints to re-execute, and a re-execution
//!   legitimately takes a different wall time;
//! - the server still drains cleanly afterwards.

mod util;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcd_serve::{ServeConfig, Server};
use util::request;

/// Tiny deterministic generator so client schedules are reproducible
/// without a rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Replaces the value of a flat-JSON numeric field with `_`, so bodies
/// can be compared modulo wall-clock measurements.
fn scrub(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\": ");
    let Some(start) = body.find(&pat).map(|i| i + pat.len()) else {
        return body.to_string();
    };
    let end = body[start..]
        .find([',', '}'])
        .map(|i| start + i)
        .unwrap_or(body.len());
    format!("{}_{}", &body[..start], &body[end..])
}

/// The deterministic portion of a `/run` response body.
fn canonical_body(body: &str) -> String {
    [
        "wall_s",
        "simulated_mips",
        "run_wall_p50_s",
        "run_wall_p99_s",
    ]
    .iter()
    .fold(body.to_string(), |b, key| scrub(&b, key))
}

#[test]
#[ignore = "soak: run explicitly via CI's serve job (-- --ignored)"]
fn sustained_mixed_traffic_stays_sound() {
    let secs: u64 = std::env::var("MCD_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 8,
        cache_cap: 6, // small: force eviction + re-execution during the soak
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // The run pool: enough distinct fingerprints to overflow the cache,
    // cheap enough to cycle many times in 30 s.
    let run_bodies: Vec<String> = (0..10)
        .map(|i| {
            format!(
                "{{\"experiment\": \"fig8\", \"ops\": {}, \"seed\": {i}}}",
                4000 + 500 * i
            )
        })
        .collect();
    let canonical: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
    let deadline = Instant::now() + Duration::from_secs(secs);

    let clients: Vec<_> = (0..8u64)
        .map(|c| {
            let run_bodies = run_bodies.clone();
            let canonical = Arc::clone(&canonical);
            std::thread::spawn(move || {
                let mut rng = Lcg(0x9E3779B97F4A7C15 ^ c);
                let mut sent = 0u64;
                while Instant::now() < deadline {
                    match rng.next() % 10 {
                        // Mostly runs, with observability endpoints mixed in.
                        0 => {
                            let r = request(addr, "GET", "/metrics", b"").expect("metrics");
                            assert_eq!(r.status, 200, "{}", r.body);
                        }
                        1 => {
                            let r = request(addr, "GET", "/healthz", b"").expect("healthz");
                            assert_eq!(r.status, 200, "{}", r.body);
                        }
                        2 => {
                            let r = request(addr, "GET", "/experiments", b"").expect("registry");
                            assert_eq!(r.status, 200, "{}", r.body);
                        }
                        _ => {
                            let body = &run_bodies[(rng.next() % run_bodies.len() as u64) as usize];
                            let r = request(addr, "POST", "/run", body.as_bytes()).expect("run");
                            assert!(
                                r.status == 200 || r.status == 503,
                                "soak saw status {} for {body}: {}",
                                r.status,
                                r.body
                            );
                            if r.status == 200 {
                                let content = canonical_body(&r.body);
                                let mut seen = canonical.lock().expect("canon poisoned");
                                match seen.get(body) {
                                    None => {
                                        seen.insert(body.clone(), content);
                                    }
                                    Some(first) => assert_eq!(
                                        &content, first,
                                        "response divergence for {body} after {sent} requests"
                                    ),
                                }
                            }
                        }
                    }
                    sent += 1;
                }
                sent
            })
        })
        .collect();

    let total: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("soak client survives"))
        .sum();
    assert!(total > 0, "the soak must actually exercise the server");
    println!("soak: {total} requests over {secs}s");

    server
        .shutdown()
        .expect("server drains cleanly after the soak");
}
