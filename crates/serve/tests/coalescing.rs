//! Concurrency stress suite for request coalescing and load shedding.
//!
//! The central claims of DESIGN.md §8, proven over real sockets:
//!
//! 1. N concurrent *identical* requests execute **exactly one**
//!    simulation per distinct fingerprint, and every duplicate receives
//!    **byte-identical** response bytes.
//! 2. A burst past the bounded queue sheds the excess with immediate
//!    503 + `Retry-After` — while **every accepted request still
//!    completes** with a full, valid response.

mod util;

use std::sync::{Arc, Barrier};

use mcd_serve::{ServeConfig, Server};
use util::{metric, run, Reply};

/// 32 clients — 8 distinct fig8 configurations, each requested by 4
/// threads simultaneously — must cost exactly 8 simulations, with the
/// 24 duplicates answered from a flight or the cache, byte-identically.
#[test]
fn duplicates_coalesce_to_one_run_per_fingerprint() {
    const DISTINCT: usize = 8;
    const DUPLICATES: usize = 4;

    let server = Server::start(ServeConfig {
        workers: 8,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(DISTINCT * DUPLICATES));
    let mut clients = Vec::new();
    for d in 0..DISTINCT {
        for _ in 0..DUPLICATES {
            let barrier = Arc::clone(&barrier);
            clients.push(std::thread::spawn(move || {
                let body = format!(
                    "{{\"experiment\": \"fig8\", \"ops\": 6000, \"seed\": {}}}",
                    100 + d
                );
                barrier.wait();
                (d, run(addr, &body).expect("every client gets a response"))
            }));
        }
    }
    let mut by_config: Vec<Vec<Reply>> = vec![Vec::new(); DISTINCT];
    for c in clients {
        let (d, reply) = c.join().expect("client thread survives");
        by_config[d].push(reply);
    }

    for (d, replies) in by_config.iter().enumerate() {
        for r in replies {
            assert_eq!(r.status, 200, "config {d} must succeed: {}", r.body);
        }
        let first = &replies[0].body;
        for r in &replies[1..] {
            assert_eq!(
                &r.body, first,
                "duplicates of config {d} must be byte-identical"
            );
        }
        assert!(
            first.contains("\"experiment\": \"fig8\""),
            "run response carries the experiment id: {first}"
        );
    }
    // Distinct seeds land in the fingerprint, so configs must not share
    // responses.
    for d in 1..DISTINCT {
        assert_ne!(
            by_config[0][0].body, by_config[d][0].body,
            "distinct configs must not coalesce"
        );
    }

    // Exactly one execution per fingerprint; every duplicate was either
    // a follower on the flight or a cache hit — never a re-run.
    assert_eq!(metric(addr, "runs_executed"), DISTINCT as u64);
    assert_eq!(
        metric(addr, "cache_hits") + metric(addr, "coalesced"),
        (DISTINCT * (DUPLICATES - 1)) as u64
    );
    assert_eq!(metric(addr, "run_failures"), 0);
    assert_eq!(
        metric(addr, "shed"),
        0,
        "queue was large enough: nothing shed"
    );

    server.shutdown().expect("clean shutdown");
}

/// One worker, a queue of two, and a 32-connection burst: the excess is
/// shed with 503 + `Retry-After`, nothing hangs, nothing is dropped
/// without an answer, and every accepted request completes with the
/// same 200 bytes.
#[test]
fn full_queue_burst_sheds_while_accepted_requests_complete() {
    const CLIENTS: usize = 32;

    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        retry_after_s: 7,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // One shared fingerprint: a deliberately heavy run so the
                // single worker is still busy when the burst lands.
                run(
                    addr,
                    "{\"experiment\": \"fig8\", \"ops\": 400000, \"seed\": 41}",
                )
                .expect("every connection is answered, shed or not")
            })
        })
        .collect();
    let replies: Vec<Reply> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread survives"))
        .collect();

    let ok: Vec<&Reply> = replies.iter().filter(|r| r.status == 200).collect();
    let shed: Vec<&Reply> = replies.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok.len() + shed.len(),
        CLIENTS,
        "only 200 or 503 may appear in a healthy overload: {replies:?}"
    );
    assert!(!ok.is_empty(), "the leader's run must complete");
    assert!(
        !shed.is_empty(),
        "a 32-burst against one worker and a 2-deep queue must shed"
    );
    for r in &shed {
        assert_eq!(
            r.retry_after,
            Some(7),
            "shed responses advertise Retry-After"
        );
        assert!(r.body.contains("\"error\": \"overloaded\""), "{}", r.body);
    }
    let first = &ok[0].body;
    for r in &ok[1..] {
        assert_eq!(&r.body, first, "accepted duplicates stay byte-identical");
    }

    assert_eq!(metric(addr, "shed"), shed.len() as u64);
    assert_eq!(metric(addr, "run_failures"), 0);
    assert!(
        metric(addr, "runs_executed") >= 1,
        "at least the leader executed"
    );

    server.shutdown().expect("clean shutdown");
}
