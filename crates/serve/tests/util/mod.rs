//! Shared HTTP client helpers for the integration suites: a one-shot
//! raw `TcpStream` client (`Connection: close`), a keep-alive client
//! that reads responses by `Content-Length` and can decode chunked
//! trace streams, plus small metric readers.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Status code from the status line.
    pub status: u16,
    /// Body bytes (after the blank line), as a string.
    pub body: String,
    /// `Content-Type` header, when present.
    pub content_type: Option<String>,
    /// `Retry-After` header, when present.
    pub retry_after: Option<u64>,
    /// Whether the server answered `Connection: close`.
    pub closing: bool,
}

/// Sends one request and reads the full response. Errors are connection
/// errors; any complete HTTP exchange yields `Ok`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    // Runs can take a while; the read deadline only guards against a
    // genuinely hung server.
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((headers, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("no header/body split in {text:?}"),
        ));
    };
    let status: u16 = headers
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line in {headers:?}"),
            )
        })?;
    let header = |wanted: &str| {
        headers.lines().find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.trim().eq_ignore_ascii_case(wanted) {
                Some(value.trim().to_string())
            } else {
                None
            }
        })
    };
    let retry_after = header("retry-after").and_then(|v| v.parse().ok());
    let content_type = header("content-type");
    let closing = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    Ok(Reply {
        status,
        body: body.to_string(),
        content_type,
        retry_after,
        closing,
    })
}

/// A persistent (keep-alive) HTTP/1.1 client over one raw socket.
/// Responses are framed by `Content-Length`, so many exchanges — or
/// several pipelined ones — ride the same connection. Also decodes the
/// server's chunked NDJSON trace streams.
pub struct KeepAlive {
    stream: TcpStream,
    /// Read-ahead buffer: bytes received but not yet consumed (the tail
    /// of a pipelined batch, for instance).
    buf: Vec<u8>,
}

impl KeepAlive {
    /// Connects with generous deadlines (runs can take a while).
    pub fn connect(addr: SocketAddr) -> std::io::Result<KeepAlive> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(KeepAlive {
            stream,
            buf: Vec::new(),
        })
    }

    /// The underlying socket (for half-close / abort tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Writes raw bytes (for pipelining and partial-write tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Sends one request *without* `Connection: close`.
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body);
        self.send_raw(&wire)
    }

    /// Like [`KeepAlive::send`] but with an `Accept` header, for
    /// negotiating the binary `.mcdt` stream format.
    pub fn send_accept(
        &mut self,
        method: &str,
        path: &str,
        accept: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nAccept: {accept}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body);
        self.send_raw(&wire)
    }

    /// One full exchange: send, then read the reply.
    pub fn exchange(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Reply> {
        self.send(method, path, body)?;
        self.read_reply()
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 8192];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Consumes bytes from the buffer until `needle` has been seen,
    /// returning everything up to and including it.
    fn read_until(&mut self, needle: &[u8]) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.windows(needle.len()).position(|w| w == needle) {
                let mut head: Vec<u8> = self.buf.drain(..pos + needle.len()).collect();
                head.truncate(pos + needle.len());
                return Ok(head);
            }
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed before {needle:?}"),
                ));
            }
        }
    }

    /// Consumes exactly `n` bytes.
    fn read_exact_buf(&mut self, n: usize) -> std::io::Result<Vec<u8>> {
        while self.buf.len() < n {
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        Ok(self.buf.drain(..n).collect())
    }

    /// Reads one `Content-Length`-framed reply, leaving any pipelined
    /// successor bytes buffered.
    pub fn read_reply(&mut self) -> std::io::Result<Reply> {
        let (status, headers) = self.read_head()?;
        let header = |wanted: &str| find_header(&headers, wanted);
        let len: usize = header("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("keep-alive reply without Content-Length: {headers:?}"),
                )
            })?;
        let body = self.read_exact_buf(len)?;
        Ok(Reply {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
            content_type: header("content-type"),
            retry_after: header("retry-after").and_then(|v| v.parse().ok()),
            closing: header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")),
        })
    }

    fn read_head(&mut self) -> std::io::Result<(u16, String)> {
        let head = self.read_until(b"\r\n\r\n")?;
        let headers = String::from_utf8_lossy(&head).into_owned();
        let status: u16 = headers
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line in {headers:?}"),
                )
            })?;
        Ok((status, headers))
    }

    /// Reads a chunked NDJSON stream to its terminating chunk: the
    /// response head must advertise `Transfer-Encoding: chunked`.
    /// Returns the status and the decoded body split into lines.
    pub fn read_stream(&mut self) -> std::io::Result<(u16, Vec<String>)> {
        let (status, body, _) = self.read_stream_raw()?;
        let text = String::from_utf8_lossy(&body);
        Ok((status, text.lines().map(|l| format!("{l}\n")).collect()))
    }

    /// Reads a chunked stream to its terminating chunk without decoding
    /// the payload as text: status, concatenated chunk bytes, and the
    /// `Content-Type` header (for binary `.mcdt` streams).
    pub fn read_stream_raw(&mut self) -> std::io::Result<(u16, Vec<u8>, Option<String>)> {
        let (status, headers) = self.read_head()?;
        let content_type = find_header(&headers, "content-type");
        if !find_header(&headers, "transfer-encoding").is_some_and(|v| v.contains("chunked")) {
            // Not a stream after all (e.g. a 4xx): frame by length.
            let len: usize = find_header(&headers, "content-length")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let body = self.read_exact_buf(len)?;
            return Ok((status, body, content_type));
        }
        let mut decoded = Vec::new();
        loop {
            let size_line = self.read_until(b"\r\n")?;
            let size_text = String::from_utf8_lossy(&size_line);
            let size = usize::from_str_radix(size_text.trim(), 16).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad chunk size {size_text:?}"),
                )
            })?;
            if size == 0 {
                let _ = self.read_until(b"\r\n")?; // trailing CRLF
                break;
            }
            decoded.extend_from_slice(&self.read_exact_buf(size)?);
            let _ = self.read_exact_buf(2)?; // chunk CRLF
        }
        Ok((status, decoded, content_type))
    }
}

fn find_header(headers: &str, wanted: &str) -> Option<String> {
    headers.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        if name.trim().eq_ignore_ascii_case(wanted) {
            Some(value.trim().to_string())
        } else {
            None
        }
    })
}

/// POSTs a `/run` body.
pub fn run(addr: SocketAddr, body: &str) -> std::io::Result<Reply> {
    request(addr, "POST", "/run", body.as_bytes())
}

/// Reads one unsigned counter out of `GET /metrics?format=json` (the
/// bare endpoint serves Prometheus text).
pub fn metric(addr: SocketAddr, field: &str) -> u64 {
    let reply =
        request(addr, "GET", "/metrics?format=json", b"").expect("metrics endpoint answers");
    assert_eq!(reply.status, 200, "metrics must be 200: {}", reply.body);
    mcd_bench::checkpoint::u64_field(&reply.body, field)
        .unwrap_or_else(|| panic!("no field {field} in {}", reply.body))
}
