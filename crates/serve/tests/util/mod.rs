//! Shared HTTP client helper for the integration suites: a raw
//! `TcpStream` client (one request per connection, mirroring the
//! server's `Connection: close` contract) plus small metric readers.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Status code from the status line.
    pub status: u16,
    /// Body bytes (after the blank line), as a string.
    pub body: String,
    /// `Content-Type` header, when present.
    pub content_type: Option<String>,
    /// `Retry-After` header, when present.
    pub retry_after: Option<u64>,
}

/// Sends one request and reads the full response. Errors are connection
/// errors; any complete HTTP exchange yields `Ok`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    // Runs can take a while; the read deadline only guards against a
    // genuinely hung server.
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((headers, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("no header/body split in {text:?}"),
        ));
    };
    let status: u16 = headers
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line in {headers:?}"),
            )
        })?;
    let header = |wanted: &str| {
        headers.lines().find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.trim().eq_ignore_ascii_case(wanted) {
                Some(value.trim().to_string())
            } else {
                None
            }
        })
    };
    let retry_after = header("retry-after").and_then(|v| v.parse().ok());
    let content_type = header("content-type");
    Ok(Reply {
        status,
        body: body.to_string(),
        content_type,
        retry_after,
    })
}

/// POSTs a `/run` body.
pub fn run(addr: SocketAddr, body: &str) -> std::io::Result<Reply> {
    request(addr, "POST", "/run", body.as_bytes())
}

/// Reads one unsigned counter out of `GET /metrics?format=json` (the
/// bare endpoint serves Prometheus text).
pub fn metric(addr: SocketAddr, field: &str) -> u64 {
    let reply =
        request(addr, "GET", "/metrics?format=json", b"").expect("metrics endpoint answers");
    assert_eq!(reply.status, 200, "metrics must be 200: {}", reply.body);
    mcd_bench::checkpoint::u64_field(&reply.body, field)
        .unwrap_or_else(|| panic!("no field {field} in {}", reply.body))
}
