//! Fault-injection suite (`--features fault-inject`): drives the
//! harness's deterministic MCD_FAULTS hook through the full service
//! stack and checks that failures are typed, shared across a coalesced
//! flight, never cached, and never poison the server.

#![cfg(feature = "fault-inject")]

mod util;

use std::sync::{Arc, Barrier};
use std::time::Duration;

use mcd_serve::{ServeConfig, Server};
use util::{metric, request, run};

/// One test function: MCD_FAULTS is process-global, so sequencing within
/// a single `#[test]` (this file is its own test binary) keeps the
/// environment deterministic.
#[test]
fn injected_timeouts_surface_as_504_and_the_server_recovers() {
    // A 500 ms injected delay against a 100 ms budget: both the attempt
    // and its retry time out, so the leader answers 504.
    std::env::set_var("MCD_FAULTS", "fig8=delay:500");

    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 16,
        run_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    const CLIENTS: usize = 3;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                run(
                    addr,
                    "{\"experiment\": \"fig8\", \"ops\": 4000, \"seed\": 11}",
                )
                .expect("answered even under injected faults")
            })
        })
        .collect();
    let replies: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client survives"))
        .collect();

    for r in &replies {
        assert_eq!(r.status, 504, "injected delay must map to 504: {}", r.body);
        assert!(r.body.contains("\"error\": \"timeout\""), "{}", r.body);
        assert_eq!(
            r.body, replies[0].body,
            "a coalesced flight shares one failure body"
        );
    }
    let failures = metric(addr, "run_failures");
    assert_eq!(
        metric(addr, "runs_executed"),
        failures,
        "every execution under the fault failed"
    );
    assert!(failures >= 1, "at least the leader executed and failed");
    assert_eq!(metric(addr, "cache_hits"), 0, "failures are never cached");

    // The server itself stays healthy while the experiment is faulty.
    let health = request(addr, "GET", "/healthz", b"").expect("healthz answers");
    assert_eq!(health.status, 200);

    // Lift the fault: the same request now re-executes (no poisoned
    // cache entry, no stuck flight) and succeeds.
    std::env::remove_var("MCD_FAULTS");
    let recovered = run(
        addr,
        "{\"experiment\": \"fig8\", \"ops\": 4000, \"seed\": 11}",
    )
    .expect("answered after recovery");
    assert_eq!(
        recovered.status, 200,
        "the fingerprint must not be poisoned by earlier failures: {}",
        recovered.body
    );
    assert_eq!(metric(addr, "run_failures"), failures, "no new failures");

    server.shutdown().expect("clean shutdown");
}
