//! Connection-path suite for the readiness-based event loop
//! (DESIGN.md §11): keep-alive reuse, pipelining, partial reads,
//! header bounds, deadlines, and the shed-under-keep-alive contract.

mod util;

use std::io::Read;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mcd_serve::{ServeConfig, Server};
use util::{metric, KeepAlive};

/// One connection, many requests: HTTP/1.1 defaults to keep-alive, the
/// server honors it, and the reuse counter proves the requests really
/// shared the socket. 10 requests over 1 connection is a 10x reuse
/// ratio — well past the 5x the load gate demands.
#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    for i in 0..10 {
        let reply = conn
            .exchange("GET", "/healthz", b"")
            .unwrap_or_else(|e| panic!("request {i} on a reused connection: {e}"));
        assert_eq!(reply.status, 200);
        assert!(!reply.closing, "keep-alive responses must not close");
        assert!(reply.body.contains("\"status\": \"ok\""));
    }
    // A second endpoint on the same socket, for good measure.
    let reply = conn.exchange("GET", "/experiments", b"").expect("reused");
    assert_eq!(reply.status, 200);

    // The scrape connection counts itself, so 10 requests cost 2
    // accepts total: this keep-alive socket plus the metrics probe.
    assert_eq!(
        metric(addr, "accepted"),
        2,
        "one connection besides the scrape"
    );
    assert!(
        metric(addr, "keepalive_reuses") >= 10,
        "reuse counter tracks second-and-later requests"
    );

    // An explicit Connection: close is honored: response says close,
    // then the socket drains to EOF.
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    )
    .expect("send");
    let last = conn.read_reply().expect("final reply");
    assert!(last.closing, "Connection: close must be echoed");
    let mut rest = Vec::new();
    conn.stream()
        .try_clone()
        .unwrap()
        .read_to_end(&mut rest)
        .expect("EOF");
    assert!(rest.is_empty(), "no bytes after the closing response");

    server.shutdown().expect("clean shutdown");
}

/// Several requests written in one TCP segment come back as several
/// responses, in order — pipelining over the single read buffer.
#[test]
fn pipelined_requests_in_one_segment_answer_in_order() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    let one = b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n";
    let two = b"GET /experiments HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n";
    let run_body = "{\"experiment\": \"table1\", \"ops\": 9}";
    let run = format!(
        "POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{run_body}",
        run_body.len()
    );
    let mut wire = Vec::new();
    wire.extend_from_slice(one);
    wire.extend_from_slice(run.as_bytes());
    wire.extend_from_slice(two);
    conn.send_raw(&wire).expect("pipelined write");

    let first = conn.read_reply().expect("healthz");
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"status\": \"ok\""), "{}", first.body);
    let second = conn.read_reply().expect("run");
    assert_eq!(second.status, 200, "{}", second.body);
    assert!(
        second.body.contains("\"experiment\": \"table1\""),
        "pipelined run answers in position two: {}",
        second.body
    );
    let third = conn.read_reply().expect("experiments");
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"kind\""), "{}", third.body);

    // This socket plus the metrics scrape itself.
    assert_eq!(metric(addr, "accepted"), 2);
    server.shutdown().expect("clean shutdown");
}

/// A request trickled in byte-sized writes across many readiness events
/// still parses into exactly one request with one response.
#[test]
fn partial_reads_across_readiness_events_reassemble() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    let wire =
        b"POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: 24\r\n\r\n{\"experiment\": \"table1\"}";
    for piece in wire.chunks(7) {
        conn.send_raw(piece).expect("trickled write");
        std::thread::sleep(Duration::from_millis(5));
    }
    let reply = conn.read_reply().expect("reassembled request answers");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"experiment\": \"table1\""));
    assert_eq!(
        metric(addr, "run_requests"),
        1,
        "one request, not one per fragment"
    );
    server.shutdown().expect("clean shutdown");
}

/// A header section past the bound answers 431 and closes; the
/// connection is not left parsing garbage.
#[test]
fn oversized_headers_answer_431_and_close() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    let mut wire = b"GET /healthz HTTP/1.1\r\nHost: t\r\n".to_vec();
    // One colossal header line blows the per-line bound.
    wire.extend_from_slice(b"X-Padding: ");
    wire.extend(std::iter::repeat_n(b'a', 64 * 1024));
    wire.extend_from_slice(b"\r\n\r\n");
    conn.send_raw(&wire).expect("oversized send");
    let reply = conn.read_reply().expect("431 still arrives");
    assert_eq!(reply.status, 431, "{}", reply.body);
    assert!(reply.closing, "parse errors close the connection");
    server.shutdown().expect("clean shutdown");
}

/// An idle keep-alive connection is closed by the idle deadline, and the
/// close is silent (no response bytes — there was no request).
#[test]
fn idle_deadline_closes_quiet_connections() {
    let server = Server::start(ServeConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    // Prove the connection works, then go quiet.
    let reply = conn
        .exchange("GET", "/healthz", b"")
        .expect("first request");
    assert_eq!(reply.status, 200);

    let mut rest = Vec::new();
    conn.stream()
        .try_clone()
        .unwrap()
        .read_to_end(&mut rest)
        .expect("server closes the idle connection");
    assert!(
        rest.is_empty(),
        "idle close is silent, got {:?}",
        String::from_utf8_lossy(&rest)
    );
    assert!(metric(addr, "deadline_closes") >= 1);
    server.shutdown().expect("clean shutdown");
}

/// A request that stalls mid-headers hits the read deadline and is
/// answered 408 — the slow-loris defense pays a buffer and a timer,
/// never a thread.
#[test]
fn stalled_request_answers_408_on_the_read_deadline() {
    let server = Server::start(ServeConfig {
        read_timeout: Duration::from_millis(150),
        idle_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut conn = KeepAlive::connect(addr).expect("connect");
    conn.send_raw(b"GET /healthz HTTP/1.1\r\nHost: t\r\n")
        .expect("partial request");
    let reply = conn.read_reply().expect("408 arrives despite the stall");
    assert_eq!(reply.status, 408, "{}", reply.body);
    assert!(reply.closing);
    assert!(metric(addr, "deadline_closes") >= 1);
    server.shutdown().expect("clean shutdown");
}

/// The PR 4 regression, on the nonblocking path: a shed (503) issued on
/// a keep-alive connection must advertise `Connection: close`, the full
/// response must survive (no RST eating it), and the connection must
/// actually close afterwards.
#[test]
fn shed_under_keep_alive_closes_and_the_503_survives() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_s: 3,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // The keep-alive client first proves its connection is reusable.
    let mut conn = KeepAlive::connect(addr).expect("connect");
    let probe = conn.exchange("GET", "/healthz", b"").expect("probe");
    assert_eq!(probe.status, 200);
    assert!(!probe.closing, "connection starts out reusable");

    // A flood of one identical heavy run saturates the server: the
    // single worker leads the flight for its whole (long) execution,
    // one follower occupies the only queue slot, and everything else
    // is refused — so the queue stays full for the entire run.
    let barrier = Arc::new(Barrier::new(17));
    let busy: Vec<_> = (0..16)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                util::run(
                    addr,
                    "{\"experiment\": \"fig8\", \"ops\": 2000000, \"seed\": 41}",
                )
                .expect("flood run answered")
            })
        })
        .collect();
    barrier.wait();
    // Give the flood a head start so the worker and queue slot are
    // taken before the probe arrives.
    std::thread::sleep(Duration::from_millis(50));

    // The keep-alive client now gets shed — over a connection it
    // expected to reuse. (A retry loop with distinct seeds covers a
    // tardy flood; during the leader's run every attempt must shed.)
    let mut shed = None;
    for i in 0..20 {
        let reply = conn
            .exchange(
                "POST",
                "/run",
                format!(
                    "{{\"experiment\": \"fig8\", \"ops\": 6000, \"seed\": {}}}",
                    100 + i
                )
                .as_bytes(),
            )
            .expect("shed response must arrive intact — the RST trap");
        if reply.status == 503 {
            shed = Some(reply);
            break;
        }
        assert_eq!(reply.status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    let shed = shed.expect("a saturated 1-deep queue must shed the probe");
    assert_eq!(shed.retry_after, Some(3), "Retry-After advertised");
    assert!(
        shed.body.contains("\"error\": \"overloaded\""),
        "{}",
        shed.body
    );
    assert!(
        shed.closing,
        "shed on a keep-alive connection must answer Connection: close"
    );
    // And the close is real: the socket drains to EOF, no further
    // requests are served on it.
    let mut rest = Vec::new();
    conn.stream()
        .try_clone()
        .unwrap()
        .read_to_end(&mut rest)
        .expect("socket closes after shed");
    assert!(rest.is_empty(), "nothing after the 503");

    let mut ok = 0;
    for b in busy {
        let reply = b.join().expect("flood thread");
        match reply.status {
            200 => ok += 1,
            503 => assert_eq!(reply.retry_after, Some(3), "{}", reply.body),
            other => panic!("flood reply {other}: {}", reply.body),
        }
    }
    assert!(ok >= 1, "the admitted flight completes for its clients");
    assert!(metric(addr, "shed") >= 1);
    server.shutdown().expect("clean shutdown");
}
