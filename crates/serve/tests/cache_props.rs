//! Property tests for the bounded result cache: under arbitrary
//! interleavings of put/get/overwrite/evict, the cache never serves
//! bytes that do not belong to the requested fingerprint, never exceeds
//! its capacity, and always returns the *latest* value stored for a key.

use std::collections::HashMap;

use mcd_bench::checkpoint::CompletedRun;
use mcd_serve::cache::{CachedRun, ResultCache};
use proptest::prelude::*;
use proptest::{collection, sample};

/// A distinguishable entry: the report encodes both the key and a
/// version stamp, so any cross-key or stale-version mixup is visible in
/// the served bytes.
fn entry(key: &str, version: u64) -> CachedRun {
    CachedRun {
        id: "fig8".to_string(),
        key: key.to_string(),
        run: CompletedRun {
            report: format!("body for {key} v{version}\n"),
            kind: "simulation".to_string(),
            wall_s: version as f64 / 1000.0,
            runs: version,
            instructions: 10 * version,
            baseline_requests: 0,
            events_processed: 4 * version,
            cycles_skipped: 16 * version,
            run_wall_p50_s: version as f64 / 1000.0,
            run_wall_p99_s: version as f64 / 500.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_interleaves_never_serve_wrong_bytes(
        cap in 1usize..6,
        ops in collection::vec((0u8..2, 0u8..12), 1..250),
    ) {
        let cache = ResultCache::new(cap);
        // Model: the last version written per key. The cache may forget
        // (eviction is allowed); it may never lie.
        let mut model: HashMap<String, u64> = HashMap::new();
        let mut version = 0u64;

        for (op, k) in ops {
            let key = format!("key-{k}");
            match op {
                0 => {
                    version += 1;
                    cache.put(&key, entry(&key, version));
                    model.insert(key.clone(), version);
                }
                _ => {
                    if let Some(served) = cache.get(&key) {
                        let expected = model.get(&key).copied().unwrap_or_else(|| {
                            panic!("cache served a key that was never put: {key}")
                        });
                        prop_assert_eq!(&served.key, &key, "wrong-key entry served");
                        prop_assert_eq!(
                            &served.run.report,
                            &format!("body for {key} v{expected}\n"),
                            "stale or foreign bytes served for {}", key
                        );
                    }
                }
            }
            prop_assert!(cache.len() <= cap, "occupancy {} over cap {}", cache.len(), cap);
        }
    }

    #[test]
    fn a_full_cache_still_serves_the_hot_key(
        cap in 2usize..6,
        churn in collection::vec(0u8..40, 20..120),
        hot in sample::select(vec!["hot-a", "hot-b"]),
    ) {
        // Re-touch one key between churn inserts: LRU must keep it
        // resident through arbitrary eviction pressure.
        let cache = ResultCache::new(cap);
        cache.put(hot, entry(hot, 1));
        for (i, k) in churn.iter().enumerate() {
            let got = cache.get(hot).unwrap_or_else(|| panic!("hot key evicted at step {i}"));
            prop_assert_eq!(&got.run.report, &format!("body for {hot} v1\n"));
            cache.put(&format!("churn-{k}-{i}"), entry(&format!("churn-{k}-{i}"), 2));
        }
        prop_assert!(cache.get(hot).is_some(), "hot key survives the whole churn");
    }
}
