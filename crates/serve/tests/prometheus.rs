//! The telemetry surface end to end: `GET /metrics` serves a
//! lint-clean Prometheus page by default, `?format=json` preserves the
//! JSON schema, and `GET /healthz` reports uptime, the code
//! fingerprint, and worker-pool load.

mod util;

use mcd_bench::checkpoint::{code_fingerprint, f64_field, str_field, u64_field};
use mcd_serve::{ServeConfig, Server};
use mcd_telemetry::prometheus::{lint, CONTENT_TYPE};
use util::{metric, request, run};

#[test]
fn metrics_page_is_lint_clean_prometheus_with_latency_series() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    // Generate one of each interesting outcome: a miss (leader
    // execution), a cache hit, and some plain GETs.
    let body = "{\"experiment\": \"table1\", \"seed\": 3}";
    assert_eq!(run(addr, body).expect("run").status, 200);
    assert_eq!(run(addr, body).expect("run").status, 200);
    assert_eq!(
        request(addr, "GET", "/healthz", b"").expect("ok").status,
        200
    );

    let reply = request(addr, "GET", "/metrics", b"").expect("metrics answers");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.content_type.as_deref(), Some(CONTENT_TYPE));
    lint(reply.body.as_bytes()).unwrap_or_else(|e| panic!("lint failed: {e}\n{}", reply.body));

    assert!(reply
        .body
        .contains("# TYPE mcd_serve_request_seconds histogram"));
    assert!(
        reply
            .body
            .contains("mcd_serve_request_seconds_count{endpoint=\"run\",outcome=\"miss\"} 1"),
        "one leader execution recorded:\n{}",
        reply.body
    );
    assert!(
        reply
            .body
            .contains("mcd_serve_request_seconds_count{endpoint=\"run\",outcome=\"hit\"} 1"),
        "one cache hit recorded:\n{}",
        reply.body
    );
    assert!(reply.body.contains("mcd_serve_cache_hits_total 1"));
    assert!(reply.body.contains("mcd_serve_shed_total 0"));
    assert!(reply
        .body
        .contains("mcd_ctrl_relay_arms_total{domain=\"INT\"}"));

    server.shutdown().expect("clean shutdown");
}

#[test]
fn format_json_preserves_the_json_schema() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    assert_eq!(
        run(addr, "{\"experiment\": \"table1\", \"seed\": 4}")
            .expect("run")
            .status,
        200
    );

    let reply = request(addr, "GET", "/metrics?format=json", b"").expect("metrics answers");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.content_type.as_deref(), Some("application/json"));
    for field in [
        "accepted",
        "shed",
        "requests",
        "run_requests",
        "queue_depth",
    ] {
        assert!(
            u64_field(&reply.body, field).is_some(),
            "field {field} missing from {}",
            reply.body
        );
    }
    assert!(reply.body.contains("\"service\""));
    assert!(reply.body.contains("\"simulation\""));
    assert!(reply.body.contains("\"controller_activity\""));
    // The util helper reads the same JSON view; both agree.
    assert_eq!(metric(addr, "runs_executed"), 1);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn healthz_reports_uptime_fingerprint_and_pool_load() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let reply = request(addr, "GET", "/healthz", b"").expect("healthz answers");
    assert_eq!(reply.status, 200);
    assert_eq!(str_field(&reply.body, "status").as_deref(), Some("ok"));
    assert_eq!(
        str_field(&reply.body, "code_fingerprint"),
        Some(code_fingerprint()),
        "healthz names the running binary"
    );
    let uptime = f64_field(&reply.body, "uptime_s").expect("uptime present");
    assert!(uptime >= 0.0, "uptime is non-negative: {uptime}");
    assert!(u64_field(&reply.body, "queue_depth").is_some());
    assert!(u64_field(&reply.body, "in_flight").is_some());

    server.shutdown().expect("clean shutdown");
}
