//! Graceful-shutdown suite: drain semantics, connection refusal, cache
//! flush, warm restart, and rejection of stale warm directories.

mod util;

use std::net::TcpStream;
use std::time::Duration;

use mcd_bench::checkpoint::{code_fingerprint_for, CheckpointDir, CompletedRun};
use mcd_serve::cache::WarmReport;
use mcd_serve::{ServeConfig, Server};
use util::{metric, request, run};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mcd-serve-shutdown-{tag}-{}", std::process::id()))
}

/// The full lifecycle: a populated server shuts down while a request is
/// in flight — the in-flight request completes, new connections are
/// refused, the cache flushes — and a restarted server on the same warm
/// directory answers the same request from cache, byte-identically.
#[test]
fn drain_completes_in_flight_work_and_restart_is_warm() {
    let dir = scratch_dir("lifecycle");
    std::fs::remove_dir_all(&dir).ok();

    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 16,
        warm_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    assert_eq!(
        server.warm(),
        WarmReport::default(),
        "nothing to warm-load yet"
    );

    let first = run(
        addr,
        "{\"experiment\": \"fig8\", \"ops\": 6000, \"seed\": 3}",
    )
    .expect("first run answered");
    assert_eq!(first.status, 200, "{}", first.body);

    // Put a heavier run in flight, then shut down under it.
    let in_flight = std::thread::spawn(move || {
        run(
            addr,
            "{\"experiment\": \"fig8\", \"ops\": 300000, \"seed\": 4}",
        )
        .expect("in-flight run answered")
    });
    std::thread::sleep(Duration::from_millis(200));
    let report = server.shutdown().expect("graceful shutdown");
    let in_flight = in_flight.join().expect("client thread survives");
    assert_eq!(
        in_flight.status, 200,
        "a request accepted before shutdown completes during the drain: {}",
        in_flight.body
    );
    assert!(
        report.flushed >= 2,
        "both completed runs flush to the warm dir, got {}",
        report.flushed
    );

    // The listener is gone: new connections are refused outright.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err(),
        "connections must be refused after shutdown"
    );

    // Restart on the same directory: warm, and the repeated request is
    // a cache hit with the exact bytes the first server produced.
    let restarted = Server::start(ServeConfig {
        warm_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("warm restart");
    let warm = restarted.warm();
    assert!(
        !warm.stale_rejected,
        "same binary version: nothing is stale"
    );
    assert_eq!(warm.loaded, report.flushed, "every flushed entry loads");

    let addr2 = restarted.addr();
    let replay = run(
        addr2,
        "{\"experiment\": \"fig8\", \"ops\": 6000, \"seed\": 3}",
    )
    .expect("replayed run answered");
    assert_eq!(replay.status, 200);
    assert_eq!(
        replay.body, first.body,
        "a warm cache hit reproduces the original response bytes"
    );
    assert_eq!(
        metric(addr2, "cache_hits"),
        1,
        "answered from the warm cache"
    );
    assert_eq!(metric(addr2, "runs_executed"), 0, "no re-simulation");

    restarted.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// `POST /shutdown` triggers the same graceful path over HTTP.
#[test]
fn http_shutdown_endpoint_drains_and_refuses() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    let healthy = request(addr, "GET", "/healthz", b"").expect("healthz answers");
    assert_eq!(healthy.status, 200);
    assert!(healthy.body.contains("\"ok\""), "{}", healthy.body);

    let reply = request(addr, "POST", "/shutdown", b"").expect("shutdown answers");
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("\"draining\""), "{}", reply.body);

    let report = server.finish().expect("drain completes");
    assert_eq!(report.flushed, 0, "no warm dir configured");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err(),
        "connections must be refused after shutdown"
    );
}

/// The version-flip regression, end to end: a warm directory written by
/// an older binary is discarded at startup — a stale result is a miss
/// and a fresh execution, never a hit.
#[test]
fn stale_warm_dir_from_an_older_binary_is_discarded() {
    let dir = scratch_dir("stale");
    std::fs::remove_dir_all(&dir).ok();

    // Forge an old binary's flush: the same record layout, but a
    // manifest pinned to a different code fingerprint.
    let old = CheckpointDir::open(&dir, &code_fingerprint_for("0.0.0-old")).expect("old dir");
    old.store(
        "00000000deadbeef",
        &CompletedRun {
            report: "stale report\n".to_string(),
            kind: "simulation".to_string(),
            wall_s: 0.5,
            runs: 1,
            instructions: 1000,
            baseline_requests: 0,
            events_processed: 200,
            cycles_skipped: 800,
            run_wall_p50_s: 0.5,
            run_wall_p99_s: 0.5,
        },
    )
    .expect("store stale entry");
    std::fs::write(dir.join("00000000deadbeef.key.txt"), "fig8\nforged-key\n")
        .expect("write key file");

    let server = Server::start(ServeConfig {
        warm_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("server starts despite the stale dir");
    assert_eq!(
        server.warm(),
        WarmReport {
            loaded: 0,
            stale_rejected: true
        },
        "stale entries must be rejected wholesale"
    );

    let addr = server.addr();
    let reply = run(
        addr,
        "{\"experiment\": \"fig8\", \"ops\": 6000, \"seed\": 5}",
    )
    .expect("run answered");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(metric(addr, "cache_hits"), 0, "nothing stale is served");
    assert_eq!(metric(addr, "runs_executed"), 1, "the run executed fresh");

    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(
        report.flushed, 1,
        "the fresh result flushes under the current version"
    );

    // And the re-flushed directory is valid for the *current* binary.
    let reopened = Server::start(ServeConfig {
        warm_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("restart");
    assert_eq!(
        reopened.warm(),
        WarmReport {
            loaded: 1,
            stale_rejected: false
        }
    );
    reopened.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
