//! Fixed worker pool with a bounded queue and load shedding.
//!
//! `mcd_bench::parallel` fans a *known* batch across scoped threads; a
//! server instead needs long-lived workers pulling from a queue that
//! outlives any one batch. This pool supplies that layer: a fixed set of
//! named OS threads running one shared handler, a bounded `VecDeque` of
//! work items, and a submit path that **refuses** work when the queue is
//! full rather than growing without bound. Refusal hands the item back
//! to the caller — which is what lets the accept loop write a 503 with
//! `Retry-After` onto the very connection it could not enqueue.
//!
//! Per-job isolation (panic capture, wall-clock budgets, retry) stays
//! where it already lives: the run path executes each simulation through
//! [`mcd_bench::parallel::par_try_map`].
//!
//! Shutdown is a drain, not an abort: [`Pool::close_and_drain`] stops
//! accepting, lets workers finish everything already queued (every
//! accepted request completes), and joins them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed the request (503).
    Full,
    /// The pool is draining for shutdown — reject new work.
    Closed,
}

struct Queue<T> {
    items: VecDeque<T>,
    open: bool,
    in_flight: usize,
}

struct Shared<T> {
    state: Mutex<Queue<T>>,
    wake: Condvar,
    cap: usize,
    handler: Box<dyn Fn(T) + Send + Sync>,
}

/// A cheap handle onto the pool's queue: submit work and read gauges.
/// Clonable so the accept loop and the metrics endpoint can each hold
/// one while the [`Pool`] itself retains the worker join handles.
pub struct PoolHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for PoolHandle<T> {
    fn clone(&self) -> Self {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> PoolHandle<T> {
    /// Enqueues `item`, refusing (never blocking, never growing past the
    /// bound) when the queue is full or the pool is draining. On refusal
    /// the item comes back so the caller can answer it directly.
    pub fn submit(&self, item: T) -> Result<(), (SubmitError, T)> {
        let mut q = self.shared.state.lock().expect("pool queue poisoned");
        if !q.open {
            return Err((SubmitError::Closed, item));
        }
        if q.items.len() >= self.shared.cap {
            return Err((SubmitError::Full, item));
        }
        q.items.push_back(item);
        drop(q);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Items queued but not yet claimed by a worker.
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool queue poisoned")
            .items
            .len()
    }

    /// Items currently executing on a worker.
    pub fn in_flight(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool queue poisoned")
            .in_flight
    }
}

/// The pool itself: owns the worker threads. Submission goes through
/// [`Pool::handle`].
pub struct Pool<T> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawns `workers` threads over a queue bounded at `queue_cap`,
    /// each running `handler` on the items it claims.
    pub fn new(
        workers: usize,
        queue_cap: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> Pool<T> {
        let shared = Arc::new(Shared {
            state: Mutex::new(Queue {
                items: VecDeque::new(),
                open: true,
                in_flight: 0,
            }),
            wake: Condvar::new(),
            cap: queue_cap.max(1),
            handler: Box::new(handler),
        });
        let workers = (0..workers.max(1))
            .map(|n| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mcd-serve-worker-{n}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// A submit/gauge handle sharing this pool's queue.
    pub fn handle(&self) -> PoolHandle<T> {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting work, runs everything already queued to
    /// completion, and joins the workers.
    pub fn close_and_drain(self) {
        {
            let mut q = self.shared.state.lock().expect("pool queue poisoned");
            q.open = false;
        }
        self.shared.wake.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop<T>(shared: &Shared<T>) {
    loop {
        let item = {
            let mut q = shared.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(item) = q.items.pop_front() {
                    q.in_flight += 1;
                    break Some(item);
                }
                if !q.open {
                    break None;
                }
                q = shared.wake.wait(q).expect("pool queue poisoned");
            }
        };
        let Some(item) = item else { return };
        // Connection handlers answer their own errors; the catch here
        // only keeps a worker alive if one slips a panic through.
        let _ = catch_unwind(AssertUnwindSafe(|| (shared.handler)(item)));
        let mut q = shared.state.lock().expect("pool queue poisoned");
        q.in_flight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn items_run_and_drain_on_close() {
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let pool = Pool::new(2, 16, move |n: u32| {
            c.fetch_add(n, Ordering::Relaxed);
        });
        let h = pool.handle();
        for n in 1..=10u32 {
            h.submit(n).expect("queue has room");
        }
        pool.close_and_drain();
        assert_eq!(counter.load(Ordering::Relaxed), 55, "drain runs the queue");
        assert_eq!(h.submit(99), Err((SubmitError::Closed, 99)));
    }

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let started_tx = Mutex::new(started_tx);
        let release_rx = Mutex::new(release_rx);
        let pool = Pool::new(1, 2, move |n: u32| {
            if n == 0 {
                started_tx.lock().unwrap().send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
        });
        let h = pool.handle();
        h.submit(0).expect("blocker queues");
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picked up the blocker");
        // Worker busy; the queue holds exactly `cap` more before shedding.
        assert_eq!(h.submit(1), Ok(()));
        assert_eq!(h.submit(2), Ok(()));
        assert_eq!(h.submit(3), Err((SubmitError::Full, 3)), "item handed back");
        assert_eq!(h.depth(), 2);
        assert_eq!(h.in_flight(), 1);
        release_tx.send(()).unwrap();
        pool.close_and_drain();
    }

    #[test]
    fn a_panicking_item_does_not_kill_the_worker() {
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let pool = Pool::new(1, 8, move |n: u32| {
            if n == 0 {
                panic!("job exploded");
            }
            c.fetch_add(1, Ordering::Relaxed);
        });
        let h = pool.handle();
        h.submit(0).unwrap();
        h.submit(1).unwrap();
        pool.close_and_drain();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
