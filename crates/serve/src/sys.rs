//! Thin, std-only wrapper over the three `epoll` syscalls plus
//! `eventfd` — the entire OS surface the event loop needs.
//!
//! No `libc` crate: the standard library already links the platform C
//! library on Linux, so the handful of symbols the readiness loop needs
//! are declared directly. This is the one module in the crate allowed
//! to use `unsafe`; everything it exports is a safe, owned handle
//! (`Epoll`, `EventFd`) whose file descriptor is closed on drop.
//!
//! The wrapper is deliberately level-triggered only: level-triggered
//! readiness makes the connection state machine re-entrant (a partially
//! drained socket simply reports ready again), which removes the whole
//! class of "forgot to re-arm after EAGAIN" bugs edge-triggered loops
//! are famous for.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

// Values from <sys/epoll.h> / <sys/eventfd.h> on Linux. They are ABI
// constants, stable since epoll was introduced in 2.5.44.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readiness: data available to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: socket writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, ABI-compatible with `struct epoll_event`
/// (packed on x86-64, which is why the layout is spelled out here).
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty slot for the `wait` buffer.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bits reported for this slot.
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a valid flag word is
        // the entire contract.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest bits for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // A zeroed event for portability with pre-2.6.9 kernels, per the
        // epoll_ctl man page.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for readiness, up to `timeout_ms` (`-1` = forever). Fills
    /// `events` from the front and returns how many slots are valid.
    /// EINTR is retried internally so callers never see it.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer pointer/length pair describes `events`,
            // which lives across the call.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(c_int::MAX as usize) as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this handle and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// An owned, nonblocking eventfd: the cross-thread wakeup primitive.
/// Worker threads [`EventFd::signal`] it after enqueuing a completion;
/// the loop registers it for `EPOLLIN` and [`EventFd::drain`]s on wake.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll waiting on it. Failure
    /// (counter saturated) is ignored: a saturated counter is already a
    /// pending wakeup, which is all a signal needs to guarantee.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly the 8 bytes eventfd requires, from a
        // local that outlives the call.
        unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Resets the counter to 0 (nonblocking; a clean miss is fine).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads into an 8-byte local buffer.
        unsafe { read(self.fd, buf.as_mut_ptr().cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this handle and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// SAFETY: both handles are plain file descriptors; the kernel
// synchronizes every operation on them.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_sockets_and_honors_timeouts() {
        let ep = Epoll::new().expect("epoll_create1");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).expect("add");

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing pending: a zero timeout returns immediately with 0.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"x").expect("write");
        let n = ep.wait(&mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        ep.delete(listener.as_raw_fd()).expect("del");
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "deregistered");
    }

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_resets() {
        let ep = Epoll::new().expect("epoll");
        let efd = EventFd::new().expect("eventfd");
        ep.add(efd.fd(), EPOLLIN, 42).expect("add");

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        efd.signal();
        efd.signal();
        let n = ep.wait(&mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);

        efd.drain();
        // Level-triggered: once drained, the fd stops reporting ready.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }
}
