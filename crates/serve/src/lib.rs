//! `mcd-serve`: a load-shedding simulation service over the `mcd-bench`
//! harness.
//!
//! A small std-only HTTP/1.1 server (no async runtime, no external
//! crates) that exposes the experiment registry as a service:
//!
//! | Endpoint              | Behaviour                                           |
//! |-----------------------|-----------------------------------------------------|
//! | `POST /run`           | Validate → cache → coalesce → execute an experiment |
//! | `POST /run?stream=1`  | Same, streaming live trace events over chunked NDJSON; the final line is the exact `/run` body |
//! | `GET /watch/<fp>`     | Tail an in-flight run's event stream by fingerprint |
//! | `GET /experiments`    | The registry with each experiment's kind            |
//! | `GET /metrics`        | Service + simulation counters (DESIGN.md §6)        |
//! | `GET /healthz`        | `ok` / `draining`                                   |
//! | `POST /shutdown`      | Begin graceful drain                                |
//!
//! Since the event-loop rebuild (DESIGN.md §11) all connections are
//! multiplexed on one readiness-driven loop thread (epoll,
//! level-triggered, std-only): HTTP/1.1 keep-alive and pipelining,
//! per-connection read/idle/write deadlines, and bounded buffers —
//! a slow or hostile client costs a buffer and a timer, never a
//! thread. Simulations still execute on the bounded worker pool.
//!
//! Properties the test suite proves (DESIGN.md §8, §11):
//!
//! - **Coalescing**: concurrent identical requests share one simulation
//!   and receive byte-identical responses.
//! - **Shedding**: when the bounded queue is full, excess requests get
//!   an immediate 503 with `Retry-After` on a connection that always
//!   closes (`Connection: close`), and every request that *was*
//!   admitted still completes.
//! - **Streaming equals non-streaming**: a streamed run's final line is
//!   byte-identical to the body an unstreamed run returns, and taps
//!   never perturb report bytes (trace_noninterference).
//! - **Graceful shutdown**: in-flight work and open streams drain, new
//!   connections are refused, and the result cache flushes to a
//!   checkpoint-format directory so a restarted server starts warm. A
//!   warm directory flushed by an older binary is rejected, never
//!   served.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
mod event_loop;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod stream;
mod sys;

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mcd_bench::error::RunError;
use mcd_bench::runner::RunConfig;

use cache::WarmReport;
use event_loop::LoopConfig;
use pool::Pool;
use router::{App, Job};
use stream::LoopSender;
use sys::{Epoll, EPOLLIN};

/// Everything that shapes a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing simulation runs.
    pub workers: usize,
    /// Bounded queue depth; run requests beyond it are shed with 503.
    pub queue_cap: usize,
    /// Result-cache capacity (entries, LRU-evicted).
    pub cache_cap: usize,
    /// Inner simulation parallelism per run ([`RunConfig`] fan-out).
    pub inner_jobs: usize,
    /// Wall-clock budget per run attempt (`par_try_map` retries
    /// transient failures once, so worst case is twice this).
    pub run_timeout: Duration,
    /// Base run configuration; `/run` bodies override its swept knobs.
    pub base_cfg: RunConfig,
    /// Checkpoint-format directory: warm-loaded at start, flushed on
    /// graceful shutdown. `None` disables persistence.
    pub warm_dir: Option<PathBuf>,
    /// Seconds advertised in `Retry-After` on shed responses.
    pub retry_after_s: u64,
    /// Slow-loris bound: first byte of a request → complete parse.
    pub read_timeout: Duration,
    /// Idle keep-alive connections close after this long.
    pub idle_timeout: Duration,
    /// Pending output making no progress is abandoned after this long.
    pub write_timeout: Duration,
    /// Connections held concurrently; beyond this, accepts are shed.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 32,
            cache_cap: 256,
            inner_jobs: 2,
            run_timeout: Duration::from_secs(60),
            base_cfg: RunConfig::quick(),
            warm_dir: None,
            retry_after_s: 1,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_conns: 256,
        }
    }
}

/// How a graceful shutdown went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownReport {
    /// Cache entries flushed to the warm directory (0 when disabled).
    pub flushed: usize,
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] (or [`ServerHandle::finish`] if shutdown
/// was already triggered over HTTP). Dropping the handle without calling
/// either leaks the loop and worker threads — always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    warm: WarmReport,
    warm_dir: Option<PathBuf>,
    loop_thread: Option<JoinHandle<()>>,
    pool: Option<Pool<Job>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the warm load found at startup.
    pub fn warm(&self) -> WarmReport {
        self.warm
    }

    /// Shared application state (metrics, shutdown trigger) — mainly
    /// for tests; clients should use the HTTP surface.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Triggers graceful shutdown and waits for it to complete.
    pub fn shutdown(self) -> Result<ShutdownReport, RunError> {
        self.app.trigger_shutdown();
        self.finish()
    }

    /// Waits for an already-triggered shutdown (e.g. `POST /shutdown`
    /// or a deadline inside the binary) to complete: joins the event
    /// loop (which exits once every connection has drained), drains the
    /// pool, flushes the cache.
    pub fn finish(mut self) -> Result<ShutdownReport, RunError> {
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        // The listener died inside the loop's drain, so new connections
        // are already refused; any job still executing for a connection
        // that disappeared finishes here.
        if let Some(p) = self.pool.take() {
            p.close_and_drain();
        }
        let mut flushed = 0;
        if let Some(dir) = &self.warm_dir {
            flushed = self.app.cache.flush(dir)?;
        }
        Ok(ShutdownReport { flushed })
    }
}

/// The server constructor namespace.
pub struct Server;

impl Server {
    /// Binds, warm-loads the cache, spawns the worker pool and the
    /// event-loop thread, and returns a handle.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, RunError> {
        let io_err = |path: &str, message: String| RunError::Io {
            path: path.to_string(),
            message,
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| io_err(&cfg.addr, format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err(&cfg.addr, format!("no local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(&cfg.addr, format!("nonblocking listener: {e}")))?;

        let epoll = Epoll::new().map_err(|e| io_err("epoll", e.to_string()))?;
        let loop_tx = LoopSender::new().map_err(|e| io_err("eventfd", e.to_string()))?;
        {
            use std::os::unix::io::AsRawFd;
            epoll
                .add(listener.as_raw_fd(), EPOLLIN, event_loop::LISTENER)
                .map_err(|e| io_err("epoll add listener", e.to_string()))?;
            epoll
                .add(loop_tx.wake_fd(), EPOLLIN, event_loop::WAKE)
                .map_err(|e| io_err("epoll add eventfd", e.to_string()))?;
        }

        // The pool's handler needs the App, and the App needs the
        // pool's handle for its gauges; a OnceLock slot breaks the
        // cycle — the slot is filled before any connection can arrive.
        let app_slot: Arc<std::sync::OnceLock<Arc<App>>> = Arc::new(std::sync::OnceLock::new());
        let handler_slot = Arc::clone(&app_slot);
        let pool = Pool::new(cfg.workers, cfg.queue_cap, move |job: Job| {
            if let Some(app) = handler_slot.get() {
                app.execute_job(job);
            }
        });
        // The warm dir also hosts a snapshot store: runs whose result is
        // not yet cached resume from their latest stored shard boundary
        // instead of simulating from instruction zero (see
        // `mcd_bench::snapstore`). Results stay byte-identical — the
        // shard-equivalence invariant — so this only moves wall time.
        let mut base_cfg = cfg.base_cfg.clone();
        if base_cfg.warm_dir.is_none() {
            base_cfg.warm_dir = cfg.warm_dir.as_ref().map(|d| d.join("snapshots"));
        }
        let app = Arc::new(App::new(
            cfg.cache_cap,
            base_cfg,
            cfg.run_timeout,
            cfg.inner_jobs,
            pool.handle(),
            loop_tx.clone(),
        ));
        let _ = app_slot.set(Arc::clone(&app));

        let mut warm = WarmReport::default();
        if let Some(dir) = &cfg.warm_dir {
            warm = app.cache.warm_load(dir)?;
        }

        let loop_thread = {
            let app = Arc::clone(&app);
            let loop_cfg = LoopConfig {
                read_timeout: cfg.read_timeout,
                idle_timeout: cfg.idle_timeout,
                write_timeout: cfg.write_timeout,
                max_conns: cfg.max_conns.max(1),
                retry_after_s: cfg.retry_after_s,
            };
            std::thread::Builder::new()
                .name("mcd-serve-loop".to_string())
                .spawn(move || event_loop::run(listener, epoll, app, loop_tx, loop_cfg))
                .map_err(|e| io_err("loop thread", e.to_string()))?
        };

        Ok(ServerHandle {
            addr,
            app,
            warm,
            warm_dir: cfg.warm_dir,
            loop_thread: Some(loop_thread),
            pool: Some(pool),
        })
    }
}
