//! `mcd-serve`: a load-shedding simulation service over the `mcd-bench`
//! harness.
//!
//! A small std-only HTTP/1.1 server (no async runtime, no external
//! crates) that exposes the experiment registry as a service:
//!
//! | Endpoint           | Behaviour                                           |
//! |--------------------|-----------------------------------------------------|
//! | `POST /run`        | Validate → cache → coalesce → execute an experiment |
//! | `GET /experiments` | The registry with each experiment's kind            |
//! | `GET /metrics`     | Service + simulation counters (DESIGN.md §6)        |
//! | `GET /healthz`     | `ok` / `draining`                                   |
//! | `POST /shutdown`   | Begin graceful drain                                |
//!
//! Three properties the test suite proves (DESIGN.md §8):
//!
//! - **Coalescing**: concurrent identical requests share one simulation
//!   and receive byte-identical responses.
//! - **Shedding**: when the bounded accept queue is full, excess
//!   requests get an immediate 503 with `Retry-After` — and every
//!   request that *was* accepted still completes.
//! - **Graceful shutdown**: in-flight work drains, new connections are
//!   refused, and the result cache flushes to a checkpoint-format
//!   directory so a restarted server starts warm. A warm directory
//!   flushed by an older binary is rejected, never served.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use mcd_bench::error::RunError;
use mcd_bench::runner::RunConfig;

use cache::WarmReport;
use http::{read_request, HttpError, Response};
use pool::{Pool, SubmitError};
use router::App;

/// Everything that shapes a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth; connections beyond it are shed with 503.
    pub queue_cap: usize,
    /// Result-cache capacity (entries, LRU-evicted).
    pub cache_cap: usize,
    /// Inner simulation parallelism per run ([`RunConfig`] fan-out).
    pub inner_jobs: usize,
    /// Wall-clock budget per run attempt (`par_try_map` retries
    /// transient failures once, so worst case is twice this).
    pub run_timeout: Duration,
    /// Base run configuration; `/run` bodies override its swept knobs.
    pub base_cfg: RunConfig,
    /// Checkpoint-format directory: warm-loaded at start, flushed on
    /// graceful shutdown. `None` disables persistence.
    pub warm_dir: Option<PathBuf>,
    /// Seconds advertised in `Retry-After` on shed responses.
    pub retry_after_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 32,
            cache_cap: 256,
            inner_jobs: 2,
            run_timeout: Duration::from_secs(60),
            base_cfg: RunConfig::quick(),
            warm_dir: None,
            retry_after_s: 1,
        }
    }
}

/// How a graceful shutdown went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownReport {
    /// Cache entries flushed to the warm directory (0 when disabled).
    pub flushed: usize,
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] (or [`ServerHandle::finish`] if shutdown
/// was already triggered over HTTP). Dropping the handle without calling
/// either leaks the accept and worker threads — always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    warm: WarmReport,
    warm_dir: Option<PathBuf>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Pool<TcpStream>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the warm load found at startup.
    pub fn warm(&self) -> WarmReport {
        self.warm
    }

    /// Shared application state (metrics, shutdown trigger) — mainly
    /// for tests; clients should use the HTTP surface.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Triggers graceful shutdown and waits for it to complete.
    pub fn shutdown(self) -> Result<ShutdownReport, RunError> {
        self.app.trigger_shutdown();
        self.finish()
    }

    /// Waits for an already-triggered shutdown (e.g. `POST /shutdown`
    /// or a deadline inside the binary) to complete: joins the accept
    /// loop, drains the pool, flushes the cache.
    pub fn finish(mut self) -> Result<ShutdownReport, RunError> {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The listener died with the accept loop, so new connections are
        // already refused; everything accepted drains to completion.
        if let Some(p) = self.pool.take() {
            p.close_and_drain();
        }
        let mut flushed = 0;
        if let Some(dir) = &self.warm_dir {
            flushed = self.app.cache.flush(dir)?;
        }
        Ok(ShutdownReport { flushed })
    }
}

/// The server constructor namespace.
pub struct Server;

impl Server {
    /// Binds, warm-loads the cache, spawns the worker pool and accept
    /// loop, and returns a handle.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, RunError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| RunError::Io {
            path: cfg.addr.clone(),
            message: format!("bind failed: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| RunError::Io {
            path: cfg.addr.clone(),
            message: format!("no local addr: {e}"),
        })?;

        // The pool's handler needs the App, and the App needs the
        // pool's handle for its gauges; a OnceLock slot breaks the
        // cycle — the slot is filled before any connection can arrive.
        let app_slot: Arc<OnceLock<Arc<App>>> = Arc::new(OnceLock::new());
        let handler_slot = Arc::clone(&app_slot);
        let pool = Pool::new(cfg.workers, cfg.queue_cap, move |stream: TcpStream| {
            if let Some(app) = handler_slot.get() {
                handle_connection(app, stream);
            }
        });
        let stop = Arc::new(AtomicBool::new(false));
        let app = Arc::new(App::new(
            cfg.cache_cap,
            cfg.base_cfg.clone(),
            cfg.run_timeout,
            cfg.inner_jobs,
            pool.handle(),
            Arc::clone(&stop),
        ));
        app.set_poke_addr(addr);
        let _ = app_slot.set(Arc::clone(&app));

        let mut warm = WarmReport::default();
        if let Some(dir) = &cfg.warm_dir {
            warm = app.cache.warm_load(dir)?;
        }

        let accept = {
            let app = Arc::clone(&app);
            let handle = pool.handle();
            let stop = Arc::clone(&stop);
            let retry_after = cfg.retry_after_s;
            std::thread::Builder::new()
                .name("mcd-serve-accept".to_string())
                .spawn(move || accept_loop(listener, &app, &handle, &stop, retry_after))
                .map_err(|e| RunError::Io {
                    path: "accept thread".to_string(),
                    message: e.to_string(),
                })?
        };

        Ok(ServerHandle {
            addr,
            app,
            warm,
            warm_dir: cfg.warm_dir,
            accept: Some(accept),
            pool: Some(pool),
        })
    }
}

/// Accepts connections until `stop` flips, dispatching each onto the
/// pool and shedding with an immediate 503 when the queue refuses. The
/// listener is dropped when this returns, so post-shutdown connection
/// attempts fail at the TCP layer.
fn accept_loop(
    listener: TcpListener,
    app: &Arc<App>,
    handle: &pool::PoolHandle<TcpStream>,
    stop: &AtomicBool,
    retry_after_s: u64,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            // The shutdown poke (or a client racing it) — drop unanswered.
            return;
        }
        app.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        match handle.submit(stream) {
            Ok(()) => {}
            Err((SubmitError::Full, stream)) => {
                app.metrics.shed.fetch_add(1, Ordering::Relaxed);
                // Answer on a short-lived thread so a slow client can
                // never stall the accept loop. Bursts bound the thread
                // count: each shed lives at most a few seconds.
                let app = Arc::clone(app);
                let _ = std::thread::Builder::new()
                    .name("mcd-serve-shed".to_string())
                    .spawn(move || {
                        let start = std::time::Instant::now();
                        shed_connection(stream, retry_after_s);
                        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        app.metrics.record_latency(
                            metrics::Endpoint::Other,
                            metrics::Outcome::Shed,
                            micros,
                        );
                    });
            }
            Err((SubmitError::Closed, _)) => return,
        }
    }
}

/// Answers a shed connection with 503 + `Retry-After`. The client's
/// request is drained first: closing a socket with unread bytes makes
/// the kernel send RST, which would destroy the 503 in flight.
fn shed_connection(mut stream: TcpStream, retry_after_s: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = read_request(&mut stream);
    let _ = Response::shed(retry_after_s).write_to(&mut stream);
}

/// Reads one request off the connection, routes it, writes the response.
fn handle_connection(app: &App, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream) {
        Ok(req) => {
            let response = app.handle(&req);
            let _ = response.write_to(&mut stream);
        }
        Err(HttpError::Malformed(m)) => {
            let _ = Response::error(400, "malformed", &m).write_to(&mut stream);
        }
        Err(HttpError::TooLarge) => {
            let _ = Response::error(413, "too-large", "request exceeds service bounds")
                .write_to(&mut stream);
        }
        Err(HttpError::Io(_)) => {}
    }
}
