//! The readiness-based connection path: one loop thread multiplexing
//! every connection over epoll (DESIGN.md §11).
//!
//! Replaces the PR 4 thread-per-connection model. The loop owns the
//! listener, a nonblocking socket per connection, and the worker→loop
//! message queue; simulation work still runs on the bounded worker pool
//! — the loop only parses, routes, and shuttles bytes, so a slow client
//! costs a buffer and a deadline, never a thread.
//!
//! Connection state machine (per [`Conn`]):
//!
//! ```text
//!   reading ──complete request──► inline answer ──► writing ──► reading
//!       │                     └──► POST /run: dispatched to pool
//!       │                           └─ Done/StreamEnd message ─► writing
//!       ├── parse error / shed ──► write + drain + close
//!       └── deadline expiry ──► 408 (mid-request) or silent close (idle)
//! ```
//!
//! Guarantees carried over from PR 4 and extended here:
//!
//! - **Shed never leaves a reusable connection**: a 503 renders with
//!   `Connection: close`, the connection keeps *reading* (and
//!   discarding) until the response is flushed, and teardown drains
//!   the socket once more — closing with unread bytes makes the kernel
//!   send RST, which would destroy the 503 in flight.
//! - **Keep-alive + pipelining**: HTTP/1.1 connections serve requests
//!   back to back; at most one dispatched run is in flight per
//!   connection, so pipelined responses come back in request order.
//! - **Deadlines**: a request must complete within `read_timeout` of
//!   its first byte (slow-loris), an idle keep-alive connection closes
//!   after `idle_timeout`, and a write making no progress for
//!   `write_timeout` is abandoned.
//! - **Drain**: on shutdown the listener closes immediately (connects
//!   refuse at the TCP layer), idle connections close, and the loop
//!   runs until every dispatched request and open stream finishes.

use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{
    chunk, chunk_end, parse_request, stream_head, stream_head_mcdt, Parsed, Request, Response,
    MAX_BODY, MAX_HEADER_BYTES,
};
use crate::metrics::{Endpoint, Outcome};
use crate::router::{App, Job};
use crate::stream::{LoopMsg, LoopSender};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Token reserved for the listening socket.
pub(crate) const LISTENER: u64 = 0;
/// Token reserved for the worker→loop eventfd.
pub(crate) const WAKE: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN: u64 = 2;

/// Hard bound on buffered, unparsed input per connection.
const INBUF_CAP: usize = MAX_HEADER_BYTES + MAX_BODY + 4096;

/// Knobs the loop needs, split out of `ServeConfig` by `Server::start`.
pub(crate) struct LoopConfig {
    /// First byte of a request → complete parse (slow-loris bound).
    pub read_timeout: Duration,
    /// Keep-alive connection with no request in progress.
    pub idle_timeout: Duration,
    /// Pending output making no progress.
    pub write_timeout: Duration,
    /// Connections held concurrently; beyond this, accepts are shed.
    pub max_conns: usize,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_s: u64,
}

/// Which timer a connection is currently running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    Read,
    Idle,
    Write,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    written: usize,
    /// A `POST /run` job is on the pool; responses for this connection
    /// arrive as loop messages, and further pipelined requests wait.
    dispatched: bool,
    /// The connection carries a chunked stream (runner or watcher).
    streaming: bool,
    /// Close once `outbuf` is flushed.
    close_after_write: bool,
    /// Read and discard input (post-error / post-shed drain).
    discard_input: bool,
    /// Peer closed its write half (EOF seen).
    read_closed: bool,
    /// `Connection: close` requested by the in-flight request.
    wants_close: bool,
    requests_served: u64,
    deadline: Option<(Instant, DeadlineKind)>,
    interest: u32,
}

/// Runs the event loop until shutdown completes. Owns the listener;
/// dropping it on drain is what makes post-shutdown connects fail at
/// the TCP layer.
pub(crate) fn run(
    listener: TcpListener,
    epoll: Epoll,
    app: Arc<App>,
    rx: LoopSender,
    cfg: LoopConfig,
) {
    let mut lp = EventLoop {
        epoll,
        listener: Some(listener),
        app,
        rx,
        cfg,
        conns: HashMap::new(),
        deadlines: BTreeSet::new(),
        next_token: FIRST_CONN,
        shutting_down: false,
    };
    lp.run();
}

struct EventLoop {
    epoll: Epoll,
    listener: Option<TcpListener>,
    app: Arc<App>,
    rx: LoopSender,
    cfg: LoopConfig,
    conns: HashMap<u64, Conn>,
    deadlines: BTreeSet<(Instant, u64)>,
    next_token: u64,
    shutting_down: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = vec![EpollEvent::zeroed(); 256];
        loop {
            let timeout = self.next_timeout_ms();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break, // epoll itself failing is unrecoverable
            };
            let began = Instant::now();
            self.app
                .metrics
                .loop_ready
                .store(n as u64, Ordering::Relaxed);
            for ev in events.iter().take(n) {
                let (token, bits) = (ev.token(), ev.readiness());
                match token {
                    LISTENER => self.accept_ready(),
                    WAKE => self.drain_messages(),
                    _ => self.conn_ready(token, bits),
                }
            }
            self.expire_deadlines();
            let fds = self.conns.len() as u64 + 1 + u64::from(self.listener.is_some());
            self.app.metrics.loop_fds.store(fds, Ordering::Relaxed);
            self.app
                .metrics
                .record_loop_iteration(began.elapsed().as_micros().min(u64::MAX as u128) as u64);
            if self.shutting_down && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Milliseconds until the earliest deadline, or -1 (wait forever).
    fn next_timeout_ms(&self) -> i32 {
        match self.deadlines.iter().next() {
            Some(&(when, _)) => {
                let now = Instant::now();
                if when <= now {
                    0
                } else {
                    // +1 rounds up so we never wake a hair early and spin.
                    (when - now).as_millis().min(i32::MAX as u128 - 1) as i32 + 1
                }
            }
            None => -1,
        }
    }

    // ---- accept -----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.shutting_down {
                continue; // racing the drain: drop unanswered
            }
            self.app.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn {
                stream,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                written: 0,
                dispatched: false,
                streaming: false,
                close_after_write: false,
                discard_input: false,
                read_closed: false,
                wants_close: false,
                requests_served: 0,
                deadline: None,
                interest: EPOLLIN | EPOLLRDHUP,
            };
            let overloaded = self.conns.len() >= self.cfg.max_conns;
            if overloaded {
                // Event-loop backpressure: over the connection bound the
                // accept converts straight into the shed path.
                self.app.metrics.shed.fetch_add(1, Ordering::Relaxed);
                self.app
                    .metrics
                    .record_latency(Endpoint::Other, Outcome::Shed, 0);
                conn.outbuf = Response::shed(self.cfg.retry_after_s).render(true);
                conn.close_after_write = true;
                conn.discard_input = true;
            }
            if self
                .epoll
                .add(conn.stream.as_raw_fd(), conn.interest, token)
                .is_err()
            {
                continue; // conn drops, client sees a reset
            }
            self.conns.insert(token, conn);
            if overloaded {
                self.try_write(token);
            } else {
                self.set_deadline(token, DeadlineKind::Idle, self.cfg.idle_timeout);
            }
        }
    }

    // ---- worker messages --------------------------------------------

    fn drain_messages(&mut self) {
        for msg in self.rx.drain() {
            match msg {
                LoopMsg::Done { token, response } => {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    conn.dispatched = false;
                    let close = conn.wants_close || conn.read_closed || self.shutting_down;
                    self.queue_response(token, &response, close);
                    self.process_inbuf(token);
                }
                LoopMsg::StreamStart { token, binary } => {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    conn.streaming = true;
                    conn.outbuf.extend_from_slice(&if binary {
                        stream_head_mcdt()
                    } else {
                        stream_head()
                    });
                    self.app
                        .metrics
                        .streams_opened
                        .fetch_add(1, Ordering::Relaxed);
                    self.clear_deadline(token);
                    self.try_write(token);
                }
                LoopMsg::StreamLine { token, data } => {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    if conn.streaming && !conn.close_after_write {
                        conn.outbuf.extend_from_slice(&chunk(&data));
                        self.try_write(token);
                    }
                }
                LoopMsg::StreamEnd { token, final_chunk } => {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    if !conn.streaming || conn.close_after_write {
                        continue;
                    }
                    if let Some(payload) = final_chunk {
                        conn.outbuf.extend_from_slice(&chunk(&payload));
                    }
                    conn.outbuf.extend_from_slice(chunk_end());
                    conn.dispatched = false;
                    conn.close_after_write = true;
                    self.try_write(token);
                }
                LoopMsg::Shutdown => self.begin_drain(),
            }
        }
    }

    fn begin_drain(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
            // Dropping the listener here is what refuses new connects.
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dispatched && !c.streaming && c.written == c.outbuf.len())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.teardown(token);
        }
    }

    // ---- connection readiness ---------------------------------------

    fn conn_ready(&mut self, token: u64, bits: u32) {
        if bits & (EPOLLHUP | EPOLLERR) != 0 {
            self.teardown(token);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.on_readable(token);
        }
        if bits & EPOLLOUT != 0 {
            self.try_write(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        let mut dead = false;
        let mut oversized = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut buf = [0u8; 16384];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.discard_input || conn.streaming {
                            // Drain-and-discard: shed/error responses in
                            // flight, or chatter on an open stream.
                            continue;
                        }
                        conn.inbuf.extend_from_slice(&buf[..n]);
                        if conn.inbuf.len() > INBUF_CAP {
                            oversized = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.teardown(token);
            return;
        }
        if oversized {
            let resp = crate::http::HttpError::HeadersTooLarge.response();
            self.app
                .metrics
                .record_latency(Endpoint::Other, Outcome::Error, 0);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.discard_input = true;
                conn.inbuf.clear();
            }
            self.queue_response(token, &resp, true);
            return;
        }
        let eof_teardown = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.read_closed
                && (conn.streaming
                    || (!conn.dispatched
                        && conn.written == conn.outbuf.len()
                        && !matches!(parse_request(&conn.inbuf), Parsed::Complete { .. })))
        };
        if eof_teardown {
            // A disconnecting streamer or a peer that left without a
            // pending exchange. Teardown unsubscribes any fan-out
            // registrations, so mid-stream disconnects leak nothing.
            self.teardown(token);
            return;
        }
        self.process_inbuf(token);
    }

    /// Parses and serves as many buffered requests as possible. Stops at
    /// a partial request, a dispatched job (pipelining order), or a
    /// connection already committed to closing.
    fn process_inbuf(&mut self, token: u64) {
        loop {
            let request = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.dispatched || conn.streaming || conn.close_after_write || conn.discard_input
                {
                    return;
                }
                match parse_request(&conn.inbuf) {
                    Parsed::Complete { request, consumed } => {
                        conn.inbuf.drain(..consumed);
                        conn.requests_served += 1;
                        if conn.requests_served > 1 {
                            self.app
                                .metrics
                                .keepalive_reuses
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        conn.wants_close = request.wants_close;
                        request
                    }
                    Parsed::Partial => {
                        if conn.inbuf.is_empty() {
                            self.set_deadline(token, DeadlineKind::Idle, self.cfg.idle_timeout);
                        } else if !matches!(conn.deadline, Some((_, DeadlineKind::Read))) {
                            // First bytes of a request start the
                            // slow-loris clock; more bytes don't reset it.
                            self.set_deadline(token, DeadlineKind::Read, self.cfg.read_timeout);
                        }
                        return;
                    }
                    Parsed::Error(e) => {
                        let resp = e.response();
                        conn.discard_input = true;
                        conn.inbuf.clear();
                        self.app
                            .metrics
                            .record_latency(Endpoint::Other, Outcome::Error, 0);
                        self.queue_response(token, &resp, true);
                        return;
                    }
                }
            };
            self.handle_request(token, request);
        }
    }

    fn handle_request(&mut self, token: u64, request: Request) {
        if request.method == "POST" && request.path == "/run" {
            match self.app.submit(Job { token, request }) {
                Ok(()) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.dispatched = true;
                    }
                    // No client-facing deadline while the run executes;
                    // the pool's own run_timeout bounds the work.
                    self.clear_deadline(token);
                }
                Err(()) => {
                    // Bounded queue full (or pool draining): the shed
                    // path. 503 + Retry-After, Connection: close, and
                    // the input keeps draining until the bytes are out.
                    self.app.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    self.app
                        .metrics
                        .record_latency(Endpoint::Run, Outcome::Shed, 0);
                    let resp = Response::shed(self.cfg.retry_after_s);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.discard_input = true;
                    }
                    self.queue_response(token, &resp, true);
                }
            }
            return;
        }
        if request.method == "GET" && request.path.starts_with("/watch/") {
            let started = Instant::now();
            let key = request.path["/watch/".len()..].to_string();
            self.app.metrics.requests.fetch_add(1, Ordering::Relaxed);
            if self.shutting_down || !self.app.watch(&key, token, request.accepts_mcdt) {
                let resp = Response::error(
                    404,
                    "no-active-flight",
                    "no run is currently executing under that fingerprint",
                );
                self.app.metrics.record_latency(
                    Endpoint::Other,
                    Outcome::Error,
                    started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                );
                self.queue_response(token, &resp, request.wants_close);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.streaming = true;
                conn.outbuf.extend_from_slice(&if request.accepts_mcdt {
                    stream_head_mcdt()
                } else {
                    stream_head()
                });
            }
            self.app
                .metrics
                .streams_opened
                .fetch_add(1, Ordering::Relaxed);
            self.app.metrics.record_latency(
                Endpoint::Other,
                Outcome::Ok,
                started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            );
            self.clear_deadline(token);
            self.try_write(token);
            return;
        }
        let response = self.app.handle_inline(&request);
        let close = request.wants_close || self.shutting_down || self.app.is_draining();
        self.queue_response(token, &response, close);
    }

    // ---- writing ----------------------------------------------------

    fn queue_response(&mut self, token: u64, response: &Response, close: bool) {
        let close = close || response.retry_after.is_some();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.outbuf.extend_from_slice(&response.render(close));
        if close {
            conn.close_after_write = true;
        }
        self.try_write(token);
    }

    fn try_write(&mut self, token: u64) {
        let mut dead = false;
        let (flushed, close_after, progressed) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let before = conn.written;
            while conn.written < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.written = 0;
            } else if conn.written > 65536 {
                conn.outbuf.drain(..conn.written);
                conn.written = 0;
            }
            (
                conn.outbuf.is_empty(),
                conn.close_after_write,
                conn.written != before || conn.outbuf.is_empty(),
            )
        };
        if dead {
            self.teardown(token);
            return;
        }
        self.update_interest(token);
        if flushed {
            if close_after {
                self.teardown(token);
                return;
            }
            let (dispatched, streaming, idle, read_closed) = {
                let conn = &self.conns[&token];
                (
                    conn.dispatched,
                    conn.streaming,
                    conn.inbuf.is_empty(),
                    conn.read_closed,
                )
            };
            if read_closed && !dispatched {
                self.teardown(token);
            } else if !dispatched && !streaming && idle {
                self.set_deadline(token, DeadlineKind::Idle, self.cfg.idle_timeout);
            }
        } else if progressed {
            // Still pending, but moving: restart the stall clock.
            self.set_deadline(token, DeadlineKind::Write, self.cfg.write_timeout);
        } else if !matches!(
            self.conns.get(&token).and_then(|c| c.deadline),
            Some((_, DeadlineKind::Write))
        ) {
            self.set_deadline(token, DeadlineKind::Write, self.cfg.write_timeout);
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = EPOLLIN | EPOLLRDHUP;
        if conn.written < conn.outbuf.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let _ = self.epoll.modify(conn.stream.as_raw_fd(), want, token);
        }
    }

    // ---- deadlines --------------------------------------------------

    fn set_deadline(&mut self, token: u64, kind: DeadlineKind, after: Duration) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some((old, _)) = conn.deadline.take() {
            self.deadlines.remove(&(old, token));
        }
        let when = Instant::now() + after;
        conn.deadline = Some((when, kind));
        self.deadlines.insert((when, token));
    }

    fn clear_deadline(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if let Some((old, _)) = conn.deadline.take() {
                self.deadlines.remove(&(old, token));
            }
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        loop {
            let Some(&(when, token)) = self.deadlines.iter().next() else {
                return;
            };
            if when > now {
                return;
            }
            self.deadlines.remove(&(when, token));
            let kind = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                match conn.deadline {
                    Some((w, kind)) if w == when => {
                        conn.deadline = None;
                        kind
                    }
                    _ => continue, // stale entry for a re-armed timer
                }
            };
            self.app
                .metrics
                .deadline_closes
                .fetch_add(1, Ordering::Relaxed);
            match kind {
                DeadlineKind::Idle | DeadlineKind::Write => self.teardown(token),
                DeadlineKind::Read => {
                    // Mid-request stall: answer 408 and close. The
                    // request never parsed, so no handler ran.
                    let resp = Response::error(
                        408,
                        "request-timeout",
                        "request did not complete within the read deadline",
                    );
                    self.app
                        .metrics
                        .record_latency(Endpoint::Other, Outcome::Error, 0);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.discard_input = true;
                        conn.inbuf.clear();
                    }
                    self.queue_response(token, &resp, true);
                }
            }
        }
    }

    // ---- teardown ---------------------------------------------------

    fn teardown(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if let Some((when, _)) = conn.deadline.take() {
            self.deadlines.remove(&(when, token));
        }
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        // Final courtesy drain: unread bytes at close make the kernel
        // send RST, which can destroy a response still in flight (the
        // PR 4 trap). Nonblocking, so this is a handful of reads at most.
        let mut buf = [0u8; 4096];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.app.broadcast().unsubscribe(token);
    }
}
