//! Bounded, content-addressed result cache with checkpoint-format
//! persistence.
//!
//! Entries are keyed by the request fingerprint
//! ([`CheckpointDir::fingerprint`] + experiment id), which already
//! embeds the [`code_fingerprint`] of the running binary — the cache is
//! content-addressed over *everything* that shapes response bytes.
//! Capacity is bounded with least-recently-used eviction, so a server
//! that sees millions of distinct configurations holds memory constant.
//!
//! Persistence reuses the checkpoint record format (DESIGN.md §7): on
//! graceful shutdown each entry is flushed as `<hash>.report.txt` +
//! `<hash>.record.json` (plus `<hash>.key.txt` mapping the hash back to
//! its experiment id and fingerprint), under a `manifest.json` pinned to
//! the current [`code_fingerprint`]. A restarted server warm-loads the
//! directory; a directory flushed by an *older binary* fails the
//! manifest check and is discarded — a stale cache is a miss, never a
//! hit.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Mutex};

use mcd_bench::checkpoint::{code_fingerprint, write_file, CheckpointDir, CompletedRun};
use mcd_bench::error::RunError;

/// 64-bit FNV-1a over `bytes` (entry file names under the flush dir).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached run: the experiment id, the full fingerprint it is
/// addressed by, and the completed-run record whose bytes every
/// response for this fingerprint is rendered from.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// Experiment id (`fig9`, `table2`, …).
    pub id: String,
    /// The content address: config fingerprint + experiment id.
    pub key: String,
    /// The completed run in checkpoint-record shape.
    pub run: CompletedRun,
}

struct Inner {
    map: HashMap<String, Arc<CachedRun>>,
    /// Recency order, least-recent at the front. Small (≤ capacity), so
    /// the O(n) promote scan is noise next to a simulation run.
    order: VecDeque<String>,
}

/// The bounded LRU cache itself. All methods take `&self`; callers on
/// worker threads share it behind an `Arc`.
pub struct ResultCache {
    cap: usize,
    inner: Mutex<Inner>,
}

/// What a warm load found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// Entries loaded into the cache.
    pub loaded: usize,
    /// True when a directory existed but was flushed by a different
    /// binary version and therefore discarded.
    pub stale_rejected: bool,
}

impl ResultCache {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<CachedRun>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let entry = inner.map.get(key).cloned()?;
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
        }
        inner.order.push_back(key.to_string());
        Some(entry)
    }

    /// Inserts (or refreshes) `entry` under `key`, evicting the
    /// least-recently-used entries beyond capacity.
    pub fn put(&self, key: &str, entry: CachedRun) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key.to_string(), Arc::new(entry)).is_some() {
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
            }
        }
        inner.order.push_back(key.to_string());
        while inner.map.len() > self.cap {
            let Some(evicted) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&evicted);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes every entry to `dir` in checkpoint format under the
    /// current code fingerprint; returns how many entries were written.
    /// A directory left by an older binary is discarded first (its
    /// entries could never validate).
    pub fn flush(&self, dir: &Path) -> Result<usize, RunError> {
        let ck = open_current(dir)?;
        let entries: Vec<Arc<CachedRun>> = {
            let inner = self.inner.lock().expect("cache poisoned");
            inner.map.values().cloned().collect()
        };
        for e in &entries {
            let name = format!("{:016x}", fnv1a64(e.key.as_bytes()));
            ck.store(&name, &e.run)?;
            write_file(
                &dir.join(format!("{name}.key.txt")),
                format!("{}\n{}\n", e.id, e.key).as_bytes(),
            )?;
        }
        Ok(entries.len())
    }

    /// Loads a previously flushed directory into the cache. Absent
    /// directories load nothing; a directory recorded under a different
    /// code fingerprint is removed and reported as `stale_rejected`.
    pub fn warm_load(&self, dir: &Path) -> Result<WarmReport, RunError> {
        if !dir.exists() {
            return Ok(WarmReport::default());
        }
        let ck = match CheckpointDir::open(dir, &code_fingerprint()) {
            Ok(ck) => ck,
            Err(RunError::Config(_)) => {
                // Flushed by a different binary: every entry is stale.
                // Reject wholesale rather than serving old reports.
                std::fs::remove_dir_all(dir).map_err(|e| RunError::Io {
                    path: dir.display().to_string(),
                    message: e.to_string(),
                })?;
                return Ok(WarmReport {
                    loaded: 0,
                    stale_rejected: true,
                });
            }
            Err(e) => return Err(e),
        };
        let mut loaded = 0;
        for name in ck.ids() {
            let Some(run) = ck.load(&name) else { continue };
            let Ok(keyfile) = std::fs::read_to_string(dir.join(format!("{name}.key.txt"))) else {
                continue;
            };
            let mut lines = keyfile.lines();
            let (Some(id), Some(key)) = (lines.next(), lines.next()) else {
                continue;
            };
            self.put(
                key,
                CachedRun {
                    id: id.to_string(),
                    key: key.to_string(),
                    run,
                },
            );
            loaded += 1;
        }
        Ok(WarmReport {
            loaded,
            stale_rejected: false,
        })
    }
}

/// Opens `dir` as a checkpoint pinned to the current code fingerprint,
/// discarding it first if it was recorded by a different binary.
fn open_current(dir: &Path) -> Result<CheckpointDir, RunError> {
    match CheckpointDir::open(dir, &code_fingerprint()) {
        Ok(ck) => Ok(ck),
        Err(RunError::Config(_)) => {
            std::fs::remove_dir_all(dir).map_err(|e| RunError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            CheckpointDir::open(dir, &code_fingerprint())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "mcd-serve-cache-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn entry(key: &str) -> CachedRun {
        CachedRun {
            id: "fig9".into(),
            key: key.into(),
            run: CompletedRun {
                report: format!("report for {key}\n"),
                kind: "simulation".into(),
                wall_s: 0.25,
                runs: 2,
                instructions: 1000,
                baseline_requests: 0,
                events_processed: 40,
                cycles_skipped: 160,
                run_wall_p50_s: 0.125,
                run_wall_p99_s: 0.25,
            },
        }
    }

    #[test]
    fn put_get_roundtrips() {
        let c = ResultCache::new(4);
        assert!(c.is_empty());
        c.put("a", entry("a"));
        assert_eq!(c.get("a").expect("present").key, "a");
        assert!(c.get("b").is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.put("a", entry("a"));
        c.put("b", entry("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get("a").is_some());
        c.put("c", entry("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_some(), "recently used survives");
        assert!(c.get("b").is_none(), "LRU entry evicted");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn refresh_does_not_grow_the_order_queue() {
        let c = ResultCache::new(2);
        for _ in 0..10 {
            c.put("a", entry("a"));
        }
        c.put("b", entry("b"));
        c.put("c", entry("c"));
        assert_eq!(c.len(), 2, "duplicate puts must not inflate occupancy");
    }

    #[test]
    fn flush_then_warm_load_roundtrips() {
        let dir = scratch_dir();
        let c = ResultCache::new(8);
        c.put("k1", entry("k1"));
        c.put("k2", entry("k2"));
        assert_eq!(c.flush(&dir).expect("flush"), 2);

        let warm = ResultCache::new(8);
        let report = warm.warm_load(&dir).expect("warm load");
        assert_eq!(
            report,
            WarmReport {
                loaded: 2,
                stale_rejected: false
            }
        );
        assert_eq!(
            warm.get("k1").expect("loaded"),
            c.get("k1").expect("still here")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The version-flip regression (ISSUE 4 bugfix): a warm dir flushed
    /// by an older binary must be a miss, not a hit.
    #[test]
    fn stale_version_warm_dir_is_rejected() {
        use mcd_bench::checkpoint::code_fingerprint_for;
        let dir = scratch_dir();
        // Simulate an older binary's flush: same layout, old fingerprint.
        let old = CheckpointDir::open(&dir, &code_fingerprint_for("0.0.0-old")).expect("open old");
        old.store("deadbeef00000000", &entry("k1").run)
            .expect("store");
        write_file(&dir.join("deadbeef00000000.key.txt"), b"fig9\nk1\n").expect("write key");

        let warm = ResultCache::new(8);
        let report = warm.warm_load(&dir).expect("warm load");
        assert_eq!(
            report,
            WarmReport {
                loaded: 0,
                stale_rejected: true
            }
        );
        assert!(warm.get("k1").is_none(), "stale entry must not be served");
        // The discarded directory is reusable by the current binary.
        let c = ResultCache::new(8);
        c.put("k1", entry("k1"));
        assert_eq!(c.flush(&dir).expect("flush over discarded dir"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_warm_loads_nothing() {
        let warm = ResultCache::new(8);
        let report = warm.warm_load(&scratch_dir()).expect("no dir is fine");
        assert_eq!(report, WarmReport::default());
    }
}
