//! Request routing and the `/run` execution path.
//!
//! The `/run` pipeline, in order:
//!
//! 1. **Validate** the JSON body against the experiment registry and the
//!    [`RunError`] taxonomy (unknown ids and bad knobs are 400s before
//!    any work happens).
//! 2. **Cache**: the request fingerprint ([`CheckpointDir::fingerprint`]
//!    + experiment id) is looked up in the bounded result cache.
//! 3. **Coalesce**: on a miss, join the flight for the fingerprint. One
//!    request leads and executes; concurrent duplicates follow and wait
//!    for the leader's bytes.
//! 4. **Execute** (leader only): the run goes through
//!    [`mcd_bench::parallel::par_try_map`] — panic isolation, a
//!    per-request wall-clock budget, one retry for transient failures —
//!    on a fresh per-request [`RunSet`], so counters attribute cleanly
//!    under concurrency and reports stay deterministic.
//! 5. **Publish**: the leader fills the cache, then publishes one shared
//!    response to every follower. Duplicates are byte-identical because
//!    they are literally the same buffer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcd_bench::checkpoint::{
    code_fingerprint, f64_field, str_field, u64_field, CheckpointDir, CompletedRun,
};
use mcd_bench::error::RunError;
use mcd_bench::experiments;
use mcd_bench::parallel::par_try_map;
use mcd_bench::runner::{ControllerActivity, EventTap, RunConfig, RunSet, RunStats};
use mcd_sim::trace::TraceEvent;
use mcd_telemetry::prometheus::CONTENT_TYPE;
use mcd_trace::{encode_event_frame, encode_meta_frame};

use crate::cache::{CachedRun, ResultCache};
use crate::coalesce::{Coalescer, Ticket};
use crate::http::{json_escape, Request, Response};
use crate::metrics::{Endpoint, Outcome, ServeMetrics};
use crate::pool::PoolHandle;
use crate::stream::{Broadcast, LoopMsg, LoopSender, Room};

/// One dispatched `POST /run`: the parsed request plus the event-loop
/// token of the connection awaiting the answer. Workers pull these off
/// the bounded pool and reply with [`LoopMsg`]s.
pub struct Job {
    /// Event-loop token of the requesting connection.
    pub token: u64,
    /// The parsed request (body and query intact).
    pub request: Request,
}

/// Shared application state: everything a worker needs to answer a
/// request. Lives behind an `Arc`, one instance per server.
pub struct App {
    /// Service counters (`GET /metrics`).
    pub metrics: ServeMetrics,
    pub(crate) cache: ResultCache,
    coalescer: Coalescer<Response>,
    pool: PoolHandle<Job>,
    broadcast: Arc<Broadcast>,
    loop_tx: LoopSender,
    base_cfg: RunConfig,
    run_timeout: Duration,
    inner_jobs: usize,
    draining: AtomicBool,
    started: Instant,
}

impl App {
    /// Builds the application state around the worker pool and the
    /// worker→loop channel.
    pub(crate) fn new(
        cache_cap: usize,
        base_cfg: RunConfig,
        run_timeout: Duration,
        inner_jobs: usize,
        pool: PoolHandle<Job>,
        loop_tx: LoopSender,
    ) -> App {
        App {
            metrics: ServeMetrics::default(),
            cache: ResultCache::new(cache_cap),
            coalescer: Coalescer::default(),
            pool,
            broadcast: Arc::new(Broadcast::new(loop_tx.clone())),
            loop_tx,
            base_cfg,
            run_timeout,
            inner_jobs: inner_jobs.max(1),
            draining: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// Whether shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins graceful shutdown: flips the draining flag and tells the
    /// event loop to drop the listener and drain.
    pub fn trigger_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.loop_tx.send(LoopMsg::Shutdown);
    }

    /// The room registry (event-loop side: watch + teardown cleanup).
    pub(crate) fn broadcast(&self) -> &Broadcast {
        &self.broadcast
    }

    /// Attaches a watcher connection to an active flight's room.
    /// `binary` selects frame delivery (`Accept: application/x-mcdt`).
    pub(crate) fn watch(&self, key: &str, token: u64, binary: bool) -> bool {
        self.broadcast.watch(key, token, binary)
    }

    /// Queues a `/run` job on the worker pool. `Err(())` is the shed
    /// signal: queue full, or the pool is already draining.
    pub(crate) fn submit(&self, job: Job) -> Result<(), ()> {
        self.pool.submit(job).map_err(|_| ())
    }

    /// Answers the endpoints cheap enough to serve on the event-loop
    /// thread itself — everything except `POST /run`, which dispatches
    /// to the worker pool before this is ever consulted. Records wall
    /// time and outcome into the endpoint × outcome histograms.
    pub fn handle_inline(&self, req: &Request) -> Response {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let (response, outcome) = self.route(req);
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics
            .record_latency(Endpoint::of_path(&req.path), outcome, micros);
        response
    }

    fn route(&self, req: &Request) -> (Response, Outcome) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (self.healthz(), Outcome::Ok),
            ("GET", "/metrics") => (self.metrics_response(req), Outcome::Ok),
            ("GET", "/experiments") => (Response::json(200, experiments_json()), Outcome::Ok),
            ("POST", "/run") => (
                // The event loop dispatches /run to the pool; reaching
                // the inline path would be a routing bug, not a 404.
                Response::error(500, "internal", "run requests dispatch to the worker pool"),
                Outcome::Error,
            ),
            ("POST", "/shutdown") => {
                self.trigger_shutdown();
                (
                    Response::json(200, "{\"status\": \"draining\"}\n".to_string()),
                    Outcome::Ok,
                )
            }
            (_, "/healthz" | "/metrics" | "/experiments" | "/run" | "/shutdown") => (
                Response::error(
                    405,
                    "method-not-allowed",
                    "see README for the endpoint table",
                ),
                Outcome::Error,
            ),
            _ => (
                Response::error(404, "not-found", "unknown path"),
                Outcome::Error,
            ),
        }
    }

    /// `GET /healthz`: liveness plus enough identity to debug a fleet —
    /// uptime, the running binary's code fingerprint, and the worker
    /// pool's load at a glance.
    fn healthz(&self) -> Response {
        let status = if self.is_draining() { "draining" } else { "ok" };
        Response::json(
            200,
            format!(
                "{{\"status\": \"{status}\", \"uptime_s\": {:.3}, \
                 \"code_fingerprint\": \"{}\", \"queue_depth\": {}, \"in_flight\": {}}}\n",
                self.started.elapsed().as_secs_f64(),
                json_escape(&code_fingerprint()),
                self.pool.depth(),
                self.pool.in_flight(),
            ),
        )
    }

    /// `GET /metrics`: Prometheus text exposition by default,
    /// `?format=json` for the JSON schema. Both render from one
    /// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot).
    fn metrics_response(&self, req: &Request) -> Response {
        // Fan-out gauges live in the broadcast registry; mirror them
        // into the metrics atomics so one snapshot covers everything.
        self.metrics
            .stream_subscribers
            .store(self.broadcast.subscribers() as u64, Ordering::Relaxed);
        self.metrics
            .stream_rooms
            .store(self.broadcast.rooms() as u64, Ordering::Relaxed);
        self.metrics
            .stream_events
            .store(self.broadcast.events_published(), Ordering::Relaxed);
        self.metrics
            .stream_frames
            .store(self.broadcast.frames_published(), Ordering::Relaxed);
        let snap = self.metrics.snapshot(
            self.pool.depth(),
            self.pool.in_flight(),
            self.cache.len(),
            self.is_draining(),
        );
        if req.query_has("format", "json") {
            Response::json(200, snap.to_json())
        } else {
            Response::text(200, snap.to_prometheus(), CONTENT_TYPE)
        }
    }

    /// Executes one dispatched `/run` job on a worker thread and replies
    /// to the event loop: a single [`LoopMsg::Done`] for a plain run, or
    /// a chunked stream (`?stream=1`) whose final line is the exact body
    /// a plain run would have returned — streamed-equals-unstreamed is
    /// by construction, not by comparison.
    pub fn execute_job(&self, job: Job) {
        let Job { token, request } = job;
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let wants_stream = request.query_has("stream", "1");
        let binary = wants_stream && request.accepts_mcdt;
        let mut streaming = false;
        let (response, outcome) = match parse_run_request(&request.body, &self.base_cfg) {
            Ok((id, cfg)) => {
                let key = format!("{};experiment={id}", CheckpointDir::fingerprint(&cfg));
                if wants_stream {
                    // Subscribe before joining the flight so the
                    // leader's earliest events reach this connection,
                    // then commit to the chunked wire format.
                    self.broadcast.subscribe(&key, token, binary);
                    self.loop_tx.send(LoopMsg::StreamStart { token, binary });
                    streaming = true;
                }
                self.run_keyed(id, &cfg, &key)
            }
            // Parse errors answer as a plain response even under
            // ?stream=1: the stream head is only worth sending once a
            // run is actually going to happen.
            Err(e) => (error_response(&e), Outcome::Error),
        };
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics.record_latency(Endpoint::Run, outcome, micros);
        if streaming {
            let body = String::from_utf8_lossy(&response.body).into_owned();
            let final_chunk = if binary {
                encode_meta_frame(body.trim_end_matches('\n'))
            } else {
                body.into_bytes()
            };
            self.loop_tx.send(LoopMsg::StreamEnd {
                token,
                final_chunk: Some(final_chunk),
            });
        } else {
            self.loop_tx.send(LoopMsg::Done { token, response });
        }
    }

    /// The cache → coalesce → execute pipeline described in the module
    /// docs, addressed by a precomputed fingerprint key.
    fn run_keyed(&self, id: &'static str, cfg: &RunConfig, key: &str) -> (Response, Outcome) {
        if let Some(hit) = self.cache.get(key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (render_run(&hit), Outcome::Hit);
        }
        match self.coalescer.join(key) {
            Ticket::Follower(flight) => {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                // The leader gets two attempts of `run_timeout` each
                // (par_try_map retries transient failures once); give it
                // that plus slack before giving up on the flight.
                let budget = self.run_timeout * 2 + Duration::from_secs(5);
                match flight.wait(budget) {
                    Some(shared) => {
                        let outcome = if shared.status == 200 {
                            Outcome::Coalesced
                        } else {
                            Outcome::Error
                        };
                        ((*shared).clone(), outcome)
                    }
                    None => (
                        Response::error(
                            500,
                            "coalesce-timeout",
                            "the coalesced run did not complete in time",
                        ),
                        Outcome::Error,
                    ),
                }
            }
            Ticket::Leader => {
                // Double-checked cache read: between our miss above and
                // winning leadership here, a previous leader for this
                // key may have retired its flight — and it always fills
                // the cache *before* retiring, so a second look now
                // either hits (answer it, retire our flight) or this is
                // genuinely fresh work. Without this, a duplicate
                // landing exactly at leader completion re-runs the
                // simulation.
                if let Some(hit) = self.cache.get(key) {
                    self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let response = render_run(&hit);
                    self.coalescer.publish(key, Arc::new(response.clone()));
                    return (response, Outcome::Hit);
                }
                // Publish *whatever* happens, so followers never hang on
                // a leader that failed in an unforeseen way.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.execute_as_leader(id, cfg, key)
                }))
                .unwrap_or_else(|_| {
                    Response::error(500, "internal", "run execution panicked outside isolation")
                });
                // Close the room before publishing the flight: every
                // event line is already queued FIFO ahead of the
                // watchers' final line, and followers can't send their
                // StreamEnd until publish wakes them — so finals always
                // trail the events they summarize.
                let body = String::from_utf8_lossy(&response.body);
                self.broadcast
                    .close(key, &body, &encode_meta_frame(body.trim_end_matches('\n')));
                self.coalescer.publish(key, Arc::new(response.clone()));
                let outcome = if response.status == 200 {
                    Outcome::Miss
                } else {
                    Outcome::Error
                };
                (response, outcome)
            }
        }
    }

    /// Executes the run, fills the cache on success, and renders the
    /// response the whole flight will share. Opens the fan-out room for
    /// the flight and taps the simulation's event stream into it; when
    /// nobody subscribes, the tap costs one relaxed atomic load per
    /// event and the report bytes are identical either way.
    fn execute_as_leader(&self, id: &'static str, cfg: &RunConfig, key: &str) -> Response {
        self.metrics.runs_executed.fetch_add(1, Ordering::Relaxed);
        let room = self.broadcast.open(key);
        let tap: Arc<dyn EventTap> = Arc::new(RoomTap {
            broadcast: Arc::clone(&self.broadcast),
            room,
        });
        match run_experiment(
            id,
            cfg.clone(),
            self.inner_jobs,
            self.run_timeout,
            Some(tap),
        ) {
            Ok(bundle) => {
                self.metrics.absorb_run(bundle.stats, &bundle.activity);
                let entry = CachedRun {
                    id: id.to_string(),
                    key: key.to_string(),
                    run: bundle.run,
                };
                let response = render_run(&entry);
                // Cache before publishing: a request arriving after the
                // flight retires must hit the cache, never re-run.
                self.cache.put(key, entry);
                response
            }
            Err(e) => {
                self.metrics.run_failures.fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        }
    }
}

/// Bridges the simulation's per-event tap into a fan-out room: one
/// JSONL line per event, delivered to every subscriber via the loop
/// channel. `wants` is the per-event gate — a single relaxed load when
/// the room is empty, so unwatched runs keep the NullSink fast path.
struct RoomTap {
    broadcast: Arc<Broadcast>,
    room: Arc<Room>,
}

impl EventTap for RoomTap {
    fn wants(&self, _label: &str) -> bool {
        self.room.is_watched()
    }

    fn record(&self, label: &str, event: &TraceEvent) {
        let line = format!(
            "{{\"label\": \"{}\", \"event\": {}}}\n",
            json_escape(label),
            event.to_json()
        );
        let frame = encode_event_frame(label, event);
        self.broadcast.publish(&self.room, &line, &frame);
    }
}

/// A completed execution plus the counters its private run set gathered.
#[derive(Debug)]
struct Bundle {
    run: CompletedRun,
    stats: RunStats,
    activity: ControllerActivity,
}

/// Runs `id` under `cfg` with `par_try_map` semantics: panic isolation,
/// a wall-clock budget per attempt, one retry for transient failures.
/// Each execution gets a fresh [`RunSet`] so counter deltas attribute to
/// this request even when other requests run concurrently; `tap`, when
/// given, observes every simulation event live (streaming fan-out).
fn run_experiment(
    id: &'static str,
    cfg: RunConfig,
    jobs: usize,
    timeout: Duration,
    tap: Option<Arc<dyn EventTap>>,
) -> Result<Bundle, RunError> {
    let slots = par_try_map(1, vec![(id, cfg)], Some(timeout), move |(id, cfg)| {
        let mut rs = RunSet::new(jobs);
        if let Some(tap) = tap.clone() {
            rs = rs.with_event_tap(tap);
        }
        let start = Instant::now();
        let report = experiments::run_on(&rs, id, &cfg)?;
        let wall_s = start.elapsed().as_secs_f64();
        let stats = rs.stats();
        // Fresh RunSet per request, so the whole histogram is ours.
        let wall = rs.wall_snapshot();
        let wall_p50_s = wall.p50() as f64 / 1e6;
        let wall_p99_s = wall.p99() as f64 / 1e6;
        Ok(Bundle {
            run: CompletedRun {
                report,
                kind: experiments::kind(id)
                    .expect("id validated against the registry")
                    .label()
                    .to_string(),
                wall_s,
                runs: stats.runs,
                instructions: stats.instructions,
                baseline_requests: stats.baseline_requests,
                events_processed: stats.events_processed,
                cycles_skipped: stats.cycles_skipped,
                run_wall_p50_s: wall_p50_s,
                run_wall_p99_s: wall_p99_s,
            },
            stats,
            activity: rs.activity(),
        })
    });
    slots
        .into_iter()
        .next()
        .expect("one item in, one ordered slot out")
}

/// Renders the shared 200 body for a completed run: the checkpoint
/// record plus the report, addressed by fingerprint.
fn render_run(entry: &CachedRun) -> Response {
    Response::json(
        200,
        format!(
            "{{\"experiment\": \"{}\", \"fingerprint\": \"{}\", \"record\": {}, \"report\": \"{}\"}}\n",
            entry.id,
            json_escape(&entry.key),
            entry.run.record_json(&entry.id),
            json_escape(&entry.run.report),
        ),
    )
}

/// Maps the typed taxonomy onto HTTP statuses: caller errors are 4xx,
/// budget overruns 504, everything environmental 500.
fn error_response(e: &RunError) -> Response {
    let status = match e {
        RunError::Config(_) | RunError::Workload(_) => 400,
        RunError::Diverged { .. } => 422,
        RunError::Timeout { .. } => 504,
        RunError::Panicked(_) | RunError::Io { .. } => 500,
    };
    Response::error(status, e.kind(), &e.to_string())
}

/// `GET /experiments`: the registry with each experiment's kind.
fn experiments_json() -> String {
    let rows: Vec<String> = experiments::ALL
        .iter()
        .map(|id| {
            let kind = experiments::kind(id)
                .expect("registry ids classify")
                .label();
            format!("  {{\"id\": \"{id}\", \"kind\": \"{kind}\"}}")
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Parses an optional unsigned field, distinguishing "absent" (fine)
/// from "present but not an unsigned integer" (a `Config` error).
fn opt_u64(text: &str, key: &str) -> Result<Option<u64>, RunError> {
    if !text.contains(&format!("\"{key}\"")) {
        return Ok(None);
    }
    match u64_field(text, key) {
        Some(v) => Ok(Some(v)),
        None => Err(RunError::Config(format!(
            "{key} must be an unsigned integer"
        ))),
    }
}

/// [`opt_u64`] for floats.
fn opt_f64(text: &str, key: &str) -> Result<Option<f64>, RunError> {
    if !text.contains(&format!("\"{key}\"")) {
        return Ok(None);
    }
    match f64_field(text, key) {
        Some(v) => Ok(Some(v)),
        None => Err(RunError::Config(format!("{key} must be a number"))),
    }
}

/// Validates a `/run` body into an experiment id and run configuration.
/// The body is a flat JSON object: `experiment` (required; `headline`
/// aliases `fig9`) plus optional `ops`, `seed`, `pid_interval`,
/// `q_ref_scale` overrides on the server's base configuration — the
/// exact knobs the checkpoint fingerprint covers.
fn parse_run_request(body: &[u8], base: &RunConfig) -> Result<(&'static str, RunConfig), RunError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RunError::Config("request body is not UTF-8".into()))?;
    if text.trim().is_empty() {
        return Err(RunError::Config(
            "empty request body; expected {\"experiment\": \"<id>\", ...}".into(),
        ));
    }
    let requested = str_field(text, "experiment")
        .ok_or_else(|| RunError::Config("missing \"experiment\" field".into()))?;
    let requested = if requested == "headline" {
        "fig9".to_string()
    } else {
        requested
    };
    let id = experiments::ALL
        .iter()
        .copied()
        .find(|e| *e == requested)
        .ok_or_else(|| RunError::Config(format!("unknown experiment id {requested}")))?;

    let mut cfg = base.clone();
    if let Some(ops) = opt_u64(text, "ops")? {
        if ops == 0 {
            return Err(RunError::Config("ops must be positive".into()));
        }
        cfg.ops = ops;
    }
    if let Some(seed) = opt_u64(text, "seed")? {
        cfg.seed = seed;
    }
    if let Some(interval) = opt_u64(text, "pid_interval")? {
        if interval == 0 {
            return Err(RunError::Config("pid_interval must be positive".into()));
        }
        cfg.pid_interval = interval;
    }
    if let Some(scale) = opt_f64(text, "q_ref_scale")? {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(RunError::Config(
                "q_ref_scale must be a positive finite number".into(),
            ));
        }
        cfg.q_ref_scale = scale;
    }
    Ok((id, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RunConfig {
        RunConfig::quick()
    }

    #[test]
    fn parse_accepts_overrides_and_alias() {
        let (id, cfg) = parse_run_request(
            br#"{"experiment": "headline", "ops": 5000, "seed": 9, "pid_interval": 2000, "q_ref_scale": 1.5}"#,
            &base(),
        )
        .expect("valid request");
        assert_eq!(id, "fig9");
        assert_eq!(cfg.ops, 5000);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.pid_interval, 2000);
        assert!((cfg.q_ref_scale - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parse_defaults_come_from_the_base_config() {
        let (id, cfg) = parse_run_request(br#"{"experiment": "table1"}"#, &base()).expect("valid");
        assert_eq!(id, "table1");
        assert_eq!(cfg.ops, base().ops);
        assert_eq!(cfg.seed, base().seed);
    }

    #[test]
    fn parse_rejects_bad_requests_with_config_errors() {
        let cases: [&[u8]; 7] = [
            b"",
            b"{\"ops\": 100}",
            br#"{"experiment": "nope"}"#,
            br#"{"experiment": "fig9", "ops": 0}"#,
            br#"{"experiment": "fig9", "ops": -5}"#,
            br#"{"experiment": "fig9", "pid_interval": 0}"#,
            br#"{"experiment": "fig9", "q_ref_scale": -1.0}"#,
        ];
        for body in cases {
            let err = parse_run_request(body, &base()).unwrap_err();
            assert_eq!(
                err.kind(),
                "config-invalid",
                "{:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn error_statuses_follow_the_taxonomy() {
        assert_eq!(error_response(&RunError::Config("x".into())).status, 400);
        assert_eq!(error_response(&RunError::Workload("x".into())).status, 400);
        assert_eq!(
            error_response(&RunError::Timeout { limit_ms: 1 }).status,
            504
        );
        assert_eq!(error_response(&RunError::Panicked("x".into())).status, 500);
    }

    #[test]
    fn experiments_json_lists_the_whole_registry() {
        let json = experiments_json();
        for id in experiments::ALL {
            assert!(json.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
        assert!(json.contains("\"kind\": \"analysis\""));
        assert!(json.contains("\"kind\": \"simulation\""));
    }

    #[test]
    fn run_experiment_returns_typed_errors_for_bad_ids() {
        // Unknown ids are caught at parse time, but run_on also guards —
        // and its typed error must surface through the isolation layer.
        let err = run_experiment("bogus", base(), 1, Duration::from_secs(30), None).unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
    }

    #[test]
    fn analysis_experiment_executes_end_to_end() {
        let bundle =
            run_experiment("table1", base(), 1, Duration::from_secs(30), None).expect("runs");
        assert_eq!(bundle.run.kind, "analysis");
        assert_eq!(bundle.stats.runs, 0, "analysis runs no simulations");
        assert!(bundle.run.report.contains("Table 1"));
    }
}
