//! Live trace streaming: rooms, fan-out, and the worker→loop channel.
//!
//! Every leader execution opens a **room** keyed by the run's cache
//! fingerprint and publishes each §6 trace event into it as one JSONL
//! line. Two kinds of subscriber tap a room:
//!
//! - **Runners** — connections that asked `POST /run?stream=1`. They get
//!   the event lines; their *final* result line is delivered by their
//!   own job's completion (leader, follower, or cache hit — the normal
//!   `/run` pipeline), never by the room. This is what makes a streamed
//!   run's final bytes provably equal to an unstreamed run's body.
//! - **Watchers** — `GET /watch/<fingerprint>` connections tailing a
//!   flight someone else started. They get the event lines, then the
//!   shared response body as a final line when the room closes.
//!
//! All delivery goes through [`LoopSender`]: a mutex-guarded FIFO plus
//! an eventfd the event loop polls. One queue for every producer means
//! event lines always precede the final line for any one connection —
//! ordering is by construction, not by locking discipline.
//!
//! When nobody subscribes to a room, the tap's per-event check is a
//! single relaxed atomic load ([`Room::sub_count`] via
//! [`Broadcast::room_is_watched`]), preserving the zero-cost NullSink
//! path end to end.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::http::Response;
use crate::sys::EventFd;

/// A message from a worker thread (or the shutdown path) to the event
/// loop. `token` addresses the connection the message is for; a token
/// whose connection has gone away is silently dropped.
pub enum LoopMsg {
    /// A dispatched request finished; write `response` on the connection.
    Done {
        /// Target connection.
        token: u64,
        /// The rendered-body response to write.
        response: Response,
    },
    /// A streaming run was admitted: write the chunked stream head.
    StreamStart {
        /// Target connection.
        token: u64,
        /// Whether the subscriber negotiated the binary frame format
        /// (`Accept: application/x-mcdt`); selects the stream head.
        binary: bool,
    },
    /// One event payload for an open stream: a newline-terminated JSONL
    /// line for NDJSON subscribers, or one CRC'd frame for binary ones.
    /// Either way the loop wraps it as one HTTP chunk.
    StreamLine {
        /// Target connection.
        token: u64,
        /// The payload bytes.
        data: Arc<[u8]>,
    },
    /// A stream is complete: optionally write a final payload, then the
    /// terminating chunk, then close.
    StreamEnd {
        /// Target connection.
        token: u64,
        /// Final payload (the `/run` response body as a line or meta
        /// frame) for runner streams; `None` for watcher streams, whose
        /// final arrives as a [`LoopMsg::StreamLine`] at room close.
        final_chunk: Option<Vec<u8>>,
    },
    /// Begin graceful drain: stop accepting, finish in-flight work.
    Shutdown,
}

struct LoopShared {
    queue: Mutex<VecDeque<LoopMsg>>,
    wake: EventFd,
}

/// Cloneable sending half of the worker→loop channel. The loop holds a
/// clone too and drains it each time the eventfd reports readable.
#[derive(Clone)]
pub struct LoopSender {
    shared: Arc<LoopShared>,
}

impl LoopSender {
    /// Creates the channel (allocates the eventfd).
    pub fn new() -> io::Result<LoopSender> {
        Ok(LoopSender {
            shared: Arc::new(LoopShared {
                queue: Mutex::new(VecDeque::new()),
                wake: EventFd::new()?,
            }),
        })
    }

    /// Enqueues a message and wakes the loop.
    pub fn send(&self, msg: LoopMsg) {
        self.shared
            .queue
            .lock()
            .expect("loop queue poisoned")
            .push_back(msg);
        self.shared.wake.signal();
    }

    /// The eventfd the loop registers for `EPOLLIN`.
    pub(crate) fn wake_fd(&self) -> std::os::unix::io::RawFd {
        self.shared.wake.fd()
    }

    /// Drains everything queued (loop side). Resets the eventfd first so
    /// a send racing the drain leaves the fd readable for the next wait.
    pub(crate) fn drain(&self) -> VecDeque<LoopMsg> {
        self.shared.wake.drain();
        std::mem::take(&mut *self.shared.queue.lock().expect("loop queue poisoned"))
    }
}

/// Which delivery contract a subscriber signed up for (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubKind {
    /// A `POST /run?stream=1` connection: events only; final line comes
    /// from its own job.
    Runner,
    /// A `GET /watch/...` connection: events, then the shared final
    /// line and stream end at room close.
    Watcher,
}

struct Sub {
    token: u64,
    kind: SubKind,
    /// Deliver binary frames instead of JSONL lines.
    binary: bool,
}

/// One published event, pre-rendered in both wire encodings so a mixed
/// room (NDJSON and binary subscribers) pays each encoding exactly once
/// and the backlog replays correctly to either kind of late watcher.
#[derive(Clone)]
struct StreamItem {
    /// The newline-terminated JSONL line.
    text: Arc<[u8]>,
    /// The equivalent self-contained binary frame.
    frame: Arc<[u8]>,
}

impl StreamItem {
    fn payload(&self, binary: bool) -> Arc<[u8]> {
        if binary {
            Arc::clone(&self.frame)
        } else {
            Arc::clone(&self.text)
        }
    }
}

/// Most-recent event lines a room retains for late subscribers. Bounded
/// so a watched multi-million-event run holds a window, not the whole
/// stream: a watcher attaching mid-flight sees the recent past and then
/// follows live, exactly like `tail -f`.
pub const BACKLOG_CAP: usize = 256;

/// Everything that must stay mutually consistent under one lock: who is
/// subscribed, and which lines they have already been sent. Replaying
/// the backlog to a new watcher happens under this same lock, so a
/// concurrent publish is either fully before the attach (line is in the
/// backlog, replayed) or fully after (subscriber is registered,
/// delivered live) — never both, never neither.
struct RoomState {
    subs: Vec<Sub>,
    backlog: VecDeque<StreamItem>,
}

/// One in-flight execution's fan-out point.
pub struct Room {
    state: Mutex<RoomState>,
    /// Mirrors `state.subs.len()`, readable without the lock — this is
    /// the per-event "anyone listening?" check on the simulation hot
    /// path. (It also gates event serialization, so the backlog only
    /// accumulates while someone subscribes: unwatched runs keep the
    /// zero-cost NullSink path and retain nothing.)
    sub_count: AtomicUsize,
    /// True while a leader execution is feeding the room. Watch requests
    /// only attach to active rooms; subscribing can race the close, in
    /// which case the subscriber is cleaned up at connection teardown.
    active: std::sync::atomic::AtomicBool,
}

impl Room {
    fn new() -> Room {
        Room {
            state: Mutex::new(RoomState {
                subs: Vec::new(),
                backlog: VecDeque::new(),
            }),
            sub_count: AtomicUsize::new(0),
            active: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether anyone is subscribed right now (relaxed; hot path).
    pub fn is_watched(&self) -> bool {
        self.sub_count.load(Ordering::Relaxed) > 0
    }

    fn push(&self, token: u64, kind: SubKind, binary: bool) {
        let mut st = self.state.lock().expect("room state poisoned");
        if st.subs.iter().any(|s| s.token == token) {
            return;
        }
        st.subs.push(Sub {
            token,
            kind,
            binary,
        });
        self.sub_count.store(st.subs.len(), Ordering::Relaxed);
    }

    fn remove(&self, token: u64) -> bool {
        let mut st = self.state.lock().expect("room state poisoned");
        let before = st.subs.len();
        st.subs.retain(|s| s.token != token);
        self.sub_count.store(st.subs.len(), Ordering::Relaxed);
        st.subs.len() != before
    }
}

/// The room registry: one per server, shared by workers (open, publish,
/// close) and the event loop (watch, unsubscribe-on-teardown).
pub struct Broadcast {
    rooms: Mutex<HashMap<String, Arc<Room>>>,
    tx: LoopSender,
    /// Event payloads fanned out to subscribers, cumulative (both
    /// encodings).
    events_published: AtomicU64,
    /// Binary frames among those deliveries, cumulative.
    frames_published: AtomicU64,
}

impl Broadcast {
    /// Creates an empty registry delivering through `tx`.
    pub fn new(tx: LoopSender) -> Broadcast {
        Broadcast {
            rooms: Mutex::new(HashMap::new()),
            tx,
            events_published: AtomicU64::new(0),
            frames_published: AtomicU64::new(0),
        }
    }

    fn room(&self, key: &str) -> Arc<Room> {
        let mut rooms = self.rooms.lock().expect("room registry poisoned");
        Arc::clone(
            rooms
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Room::new())),
        )
    }

    /// Opens (or reuses) the room for `key` and marks it active. Called
    /// by the flight leader before execution starts.
    pub fn open(&self, key: &str) -> Arc<Room> {
        let room = self.room(key);
        room.active.store(true, Ordering::SeqCst);
        room
    }

    /// Subscribes a streaming-run connection to `key`'s room, creating
    /// the room if the leader has not opened it yet (the leader's
    /// `open` will then find it). `binary` selects frame delivery.
    pub fn subscribe(&self, key: &str, token: u64, binary: bool) {
        self.room(key).push(token, SubKind::Runner, binary);
    }

    /// Attaches a watcher to `key`'s room **only if** a flight is
    /// actively feeding it. Returns whether the subscription happened.
    ///
    /// A successful attach immediately replays the room's backlog — the
    /// most recent [`BACKLOG_CAP`] event lines published while the room
    /// was watched — to the new token, *under the same lock `publish`
    /// takes*, so the replayed prefix and the live tail form one gapless,
    /// duplicate-free stream.
    pub fn watch(&self, key: &str, token: u64, binary: bool) -> bool {
        let room = {
            let rooms = self.rooms.lock().expect("room registry poisoned");
            rooms.get(key).cloned()
        };
        match room {
            Some(room) if room.active.load(Ordering::SeqCst) => {
                let mut st = room.state.lock().expect("room state poisoned");
                if !st.subs.iter().any(|s| s.token == token) {
                    st.subs.push(Sub {
                        token,
                        kind: SubKind::Watcher,
                        binary,
                    });
                    room.sub_count.store(st.subs.len(), Ordering::Relaxed);
                    self.events_published
                        .fetch_add(st.backlog.len() as u64, Ordering::Relaxed);
                    if binary {
                        self.frames_published
                            .fetch_add(st.backlog.len() as u64, Ordering::Relaxed);
                    }
                    for item in st.backlog.iter() {
                        self.tx.send(LoopMsg::StreamLine {
                            token,
                            data: item.payload(binary),
                        });
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Fans one event out to every subscriber of `room` — the JSONL
    /// `text` to NDJSON subscribers, the binary `frame` to frame
    /// subscribers — and appends both encodings to the room's bounded
    /// replay backlog for late watchers.
    pub fn publish(&self, room: &Room, text: &str, frame: &[u8]) {
        let mut st = room.state.lock().expect("room state poisoned");
        let item = StreamItem {
            text: Arc::from(text.as_bytes()),
            frame: Arc::from(frame),
        };
        if st.backlog.len() == BACKLOG_CAP {
            st.backlog.pop_front();
        }
        st.backlog.push_back(item.clone());
        if st.subs.is_empty() {
            return;
        }
        self.events_published
            .fetch_add(st.subs.len() as u64, Ordering::Relaxed);
        let frames = st.subs.iter().filter(|s| s.binary).count() as u64;
        self.frames_published.fetch_add(frames, Ordering::Relaxed);
        for sub in st.subs.iter() {
            self.tx.send(LoopMsg::StreamLine {
                token: sub.token,
                data: item.payload(sub.binary),
            });
        }
    }

    /// Closes `key`'s room: watchers receive `final_line` and a stream
    /// end; runner subscriptions are dropped (their own jobs deliver
    /// their finals). The room leaves the registry, so late watch
    /// requests see 404 rather than a stream that will never move.
    pub fn close(&self, key: &str, final_line: &str, final_frame: &[u8]) {
        let room = {
            let mut rooms = self.rooms.lock().expect("room registry poisoned");
            rooms.remove(key)
        };
        let Some(room) = room else { return };
        room.active.store(false, Ordering::SeqCst);
        let mut st = room.state.lock().expect("room state poisoned");
        st.backlog.clear();
        let final_item = StreamItem {
            text: Arc::from(final_line.as_bytes()),
            frame: Arc::from(final_frame),
        };
        for sub in st.subs.drain(..) {
            if sub.kind == SubKind::Watcher {
                self.tx.send(LoopMsg::StreamLine {
                    token: sub.token,
                    data: final_item.payload(sub.binary),
                });
                self.tx.send(LoopMsg::StreamEnd {
                    token: sub.token,
                    final_chunk: None,
                });
            }
        }
        room.sub_count.store(0, Ordering::Relaxed);
    }

    /// Removes `token` from every room (connection teardown) and
    /// garbage-collects rooms that are inactive and empty — the
    /// "no leaked fan-out registrations" invariant.
    pub fn unsubscribe(&self, token: u64) {
        let mut rooms = self.rooms.lock().expect("room registry poisoned");
        rooms.retain(|_, room| {
            room.remove(token);
            room.active.load(Ordering::SeqCst) || room.sub_count.load(Ordering::Relaxed) > 0
        });
    }

    /// Total live subscriptions across all rooms (gauge).
    pub fn subscribers(&self) -> usize {
        let rooms = self.rooms.lock().expect("room registry poisoned");
        rooms
            .values()
            .map(|r| r.sub_count.load(Ordering::Relaxed))
            .sum()
    }

    /// Rooms currently registered (gauge).
    pub fn rooms(&self) -> usize {
        self.rooms.lock().expect("room registry poisoned").len()
    }

    /// Event payloads fanned out so far, both encodings (counter).
    pub fn events_published(&self) -> u64 {
        self.events_published.load(Ordering::Relaxed)
    }

    /// Binary frames among those deliveries (counter).
    pub fn frames_published(&self) -> u64 {
        self.frames_published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tokens(tx: &LoopSender) -> Vec<(u64, &'static str)> {
        tx.drain()
            .into_iter()
            .map(|m| match m {
                LoopMsg::StreamLine { token, .. } => (token, "line"),
                LoopMsg::StreamEnd { token, .. } => (token, "end"),
                LoopMsg::Done { token, .. } => (token, "done"),
                LoopMsg::StreamStart { token, .. } => (token, "start"),
                LoopMsg::Shutdown => (0, "shutdown"),
            })
            .collect()
    }

    #[test]
    fn publish_reaches_every_subscriber_and_close_ends_watchers_only() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        assert!(!room.is_watched(), "empty room is unwatched");
        b.subscribe("k", 10, false); // runner
        assert!(b.watch("k", 20, false), "active room accepts watchers");
        assert!(room.is_watched());
        assert_eq!(b.subscribers(), 2);

        b.publish(&room, "{\"e\":1}\n", b"\xe1frame");
        let msgs = drain_tokens(&tx);
        assert!(msgs.contains(&(10, "line")) && msgs.contains(&(20, "line")));
        assert_eq!(b.events_published(), 2, "one line × two subscribers");
        assert_eq!(b.frames_published(), 0, "no binary subscribers yet");

        b.close("k", "{\"final\":true}\n", b"\xe0final");
        let msgs = drain_tokens(&tx);
        // Watcher 20 gets final line + end; runner 10 gets nothing more.
        assert!(msgs.contains(&(20, "line")) && msgs.contains(&(20, "end")));
        assert!(!msgs.iter().any(|(t, _)| *t == 10));
        assert_eq!(b.rooms(), 0, "closed rooms leave the registry");
        assert!(!b.watch("k", 30, false), "closed rooms refuse watchers");
    }

    #[test]
    fn binary_subscribers_get_frames_and_text_subscribers_get_lines() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        b.subscribe("k", 1, false);
        assert!(b.watch("k", 2, true), "binary watcher attaches");

        b.publish(&room, "text\n", b"FRAME");
        let payloads: Vec<(u64, Vec<u8>)> = tx
            .drain()
            .into_iter()
            .filter_map(|m| match m {
                LoopMsg::StreamLine { token, data } => Some((token, data.to_vec())),
                _ => None,
            })
            .collect();
        assert!(payloads.contains(&(1, b"text\n".to_vec())));
        assert!(payloads.contains(&(2, b"FRAME".to_vec())));
        assert_eq!(b.frames_published(), 1, "one frame delivery");
        assert_eq!(b.events_published(), 2, "two deliveries total");

        // A late binary watcher replays the backlog as frames.
        assert!(b.watch("k", 3, true));
        let replayed: Vec<Vec<u8>> = tx
            .drain()
            .into_iter()
            .filter_map(|m| match m {
                LoopMsg::StreamLine { token: 3, data } => Some(data.to_vec()),
                _ => None,
            })
            .collect();
        assert_eq!(replayed, vec![b"FRAME".to_vec()]);

        // Close delivers each watcher its own encoding of the final.
        b.close("k", "final\n", b"METAFRAME");
        let finals: Vec<(u64, Vec<u8>)> = tx
            .drain()
            .into_iter()
            .filter_map(|m| match m {
                LoopMsg::StreamLine { token, data } => Some((token, data.to_vec())),
                _ => None,
            })
            .collect();
        assert!(finals.contains(&(2, b"METAFRAME".to_vec())));
        assert!(finals.contains(&(3, b"METAFRAME".to_vec())));
        assert!(!finals.iter().any(|(t, _)| *t == 1), "runner gets no final");
    }

    #[test]
    fn unsubscribe_garbage_collects_inactive_rooms() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx);
        // A runner subscribing before the leader opened the room — then
        // the leader never comes (e.g. its flight hit the cache).
        b.subscribe("orphan", 7, false);
        assert_eq!(b.rooms(), 1);
        b.unsubscribe(7);
        assert_eq!(b.rooms(), 0, "empty inactive room collected");
        assert_eq!(b.subscribers(), 0);

        // An active room survives losing its last subscriber.
        let room = b.open("live");
        b.subscribe("live", 8, false);
        b.unsubscribe(8);
        assert_eq!(b.rooms(), 1, "active room persists for the leader");
        assert!(!room.is_watched());
        b.close("live", "x\n", b"x");
        assert_eq!(b.rooms(), 0);
    }

    fn drain_lines_for(tx: &LoopSender, token: u64) -> Vec<String> {
        tx.drain()
            .into_iter()
            .filter_map(|m| match m {
                LoopMsg::StreamLine { token: t, data } if t == token => {
                    Some(String::from_utf8_lossy(&data).into_owned())
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn late_watchers_replay_the_bounded_backlog_then_follow_live() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        b.subscribe("k", 1, false); // a runner keeps the room watched
        for i in 0..300 {
            b.publish(&room, &format!("{i}\n"), &[i as u8]);
        }
        tx.drain();

        // The late watcher gets exactly the newest BACKLOG_CAP lines, in
        // publish order, as its replayed prefix.
        assert!(b.watch("k", 2, false));
        let replayed = drain_lines_for(&tx, 2);
        assert_eq!(replayed.len(), BACKLOG_CAP);
        assert_eq!(replayed.first().map(String::as_str), Some("44\n"));
        assert_eq!(replayed.last().map(String::as_str), Some("299\n"));

        // A duplicate attach neither re-subscribes nor re-replays.
        assert!(b.watch("k", 2, false));
        assert!(drain_lines_for(&tx, 2).is_empty());
        assert_eq!(b.subscribers(), 2);

        // Live lines resume after the replayed prefix with no gap or dup.
        b.publish(&room, "live\n", b"live");
        assert_eq!(drain_lines_for(&tx, 2), ["live\n"]);

        // Close still ends watchers with the final line; the backlog is
        // not replayed again to anyone.
        b.close("k", "final\n", b"final");
        assert_eq!(drain_lines_for(&tx, 2), ["final\n"]);
    }

    #[test]
    fn duplicate_subscriptions_collapse() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        b.subscribe("k", 5, false);
        b.subscribe("k", 5, true);
        assert_eq!(b.subscribers(), 1);
        b.publish(&room, "x\n", b"x");
        assert_eq!(drain_tokens(&tx).len(), 1);
        b.close("k", "f\n", b"f");
    }

    #[test]
    fn sender_queue_is_fifo() {
        let tx = LoopSender::new().expect("eventfd");
        tx.send(LoopMsg::StreamStart {
            token: 1,
            binary: false,
        });
        tx.send(LoopMsg::StreamLine {
            token: 1,
            data: Arc::from(&b"a\n"[..]),
        });
        tx.send(LoopMsg::StreamEnd {
            token: 1,
            final_chunk: None,
        });
        let kinds: Vec<&str> = tx
            .drain()
            .into_iter()
            .map(|m| match m {
                LoopMsg::StreamStart { .. } => "start",
                LoopMsg::StreamLine { .. } => "line",
                LoopMsg::StreamEnd { .. } => "end",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["start", "line", "end"]);
    }
}
