//! Live trace streaming: rooms, fan-out, and the worker→loop channel.
//!
//! Every leader execution opens a **room** keyed by the run's cache
//! fingerprint and publishes each §6 trace event into it as one JSONL
//! line. Two kinds of subscriber tap a room:
//!
//! - **Runners** — connections that asked `POST /run?stream=1`. They get
//!   the event lines; their *final* result line is delivered by their
//!   own job's completion (leader, follower, or cache hit — the normal
//!   `/run` pipeline), never by the room. This is what makes a streamed
//!   run's final bytes provably equal to an unstreamed run's body.
//! - **Watchers** — `GET /watch/<fingerprint>` connections tailing a
//!   flight someone else started. They get the event lines, then the
//!   shared response body as a final line when the room closes.
//!
//! All delivery goes through [`LoopSender`]: a mutex-guarded FIFO plus
//! an eventfd the event loop polls. One queue for every producer means
//! event lines always precede the final line for any one connection —
//! ordering is by construction, not by locking discipline.
//!
//! When nobody subscribes to a room, the tap's per-event check is a
//! single relaxed atomic load ([`Room::sub_count`] via
//! [`Broadcast::room_is_watched`]), preserving the zero-cost NullSink
//! path end to end.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::http::Response;
use crate::sys::EventFd;

/// A message from a worker thread (or the shutdown path) to the event
/// loop. `token` addresses the connection the message is for; a token
/// whose connection has gone away is silently dropped.
pub enum LoopMsg {
    /// A dispatched request finished; write `response` on the connection.
    Done {
        /// Target connection.
        token: u64,
        /// The rendered-body response to write.
        response: Response,
    },
    /// A streaming run was admitted: write the chunked stream head.
    StreamStart {
        /// Target connection.
        token: u64,
    },
    /// One JSONL event line for an open stream.
    StreamLine {
        /// Target connection.
        token: u64,
        /// The line, newline-terminated.
        line: Arc<str>,
    },
    /// A stream is complete: optionally write a final line, then the
    /// terminating chunk, then close.
    StreamEnd {
        /// Target connection.
        token: u64,
        /// Final result line (the exact `/run` response body) for
        /// runner streams; `None` for watcher streams, whose final line
        /// arrives as a [`LoopMsg::StreamLine`] at room close.
        final_line: Option<String>,
    },
    /// Begin graceful drain: stop accepting, finish in-flight work.
    Shutdown,
}

struct LoopShared {
    queue: Mutex<VecDeque<LoopMsg>>,
    wake: EventFd,
}

/// Cloneable sending half of the worker→loop channel. The loop holds a
/// clone too and drains it each time the eventfd reports readable.
#[derive(Clone)]
pub struct LoopSender {
    shared: Arc<LoopShared>,
}

impl LoopSender {
    /// Creates the channel (allocates the eventfd).
    pub fn new() -> io::Result<LoopSender> {
        Ok(LoopSender {
            shared: Arc::new(LoopShared {
                queue: Mutex::new(VecDeque::new()),
                wake: EventFd::new()?,
            }),
        })
    }

    /// Enqueues a message and wakes the loop.
    pub fn send(&self, msg: LoopMsg) {
        self.shared
            .queue
            .lock()
            .expect("loop queue poisoned")
            .push_back(msg);
        self.shared.wake.signal();
    }

    /// The eventfd the loop registers for `EPOLLIN`.
    pub(crate) fn wake_fd(&self) -> std::os::unix::io::RawFd {
        self.shared.wake.fd()
    }

    /// Drains everything queued (loop side). Resets the eventfd first so
    /// a send racing the drain leaves the fd readable for the next wait.
    pub(crate) fn drain(&self) -> VecDeque<LoopMsg> {
        self.shared.wake.drain();
        std::mem::take(&mut *self.shared.queue.lock().expect("loop queue poisoned"))
    }
}

/// Which delivery contract a subscriber signed up for (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubKind {
    /// A `POST /run?stream=1` connection: events only; final line comes
    /// from its own job.
    Runner,
    /// A `GET /watch/...` connection: events, then the shared final
    /// line and stream end at room close.
    Watcher,
}

struct Sub {
    token: u64,
    kind: SubKind,
}

/// Most-recent event lines a room retains for late subscribers. Bounded
/// so a watched multi-million-event run holds a window, not the whole
/// stream: a watcher attaching mid-flight sees the recent past and then
/// follows live, exactly like `tail -f`.
pub const BACKLOG_CAP: usize = 256;

/// Everything that must stay mutually consistent under one lock: who is
/// subscribed, and which lines they have already been sent. Replaying
/// the backlog to a new watcher happens under this same lock, so a
/// concurrent publish is either fully before the attach (line is in the
/// backlog, replayed) or fully after (subscriber is registered,
/// delivered live) — never both, never neither.
struct RoomState {
    subs: Vec<Sub>,
    backlog: VecDeque<Arc<str>>,
}

/// One in-flight execution's fan-out point.
pub struct Room {
    state: Mutex<RoomState>,
    /// Mirrors `state.subs.len()`, readable without the lock — this is
    /// the per-event "anyone listening?" check on the simulation hot
    /// path. (It also gates event serialization, so the backlog only
    /// accumulates while someone subscribes: unwatched runs keep the
    /// zero-cost NullSink path and retain nothing.)
    sub_count: AtomicUsize,
    /// True while a leader execution is feeding the room. Watch requests
    /// only attach to active rooms; subscribing can race the close, in
    /// which case the subscriber is cleaned up at connection teardown.
    active: std::sync::atomic::AtomicBool,
}

impl Room {
    fn new() -> Room {
        Room {
            state: Mutex::new(RoomState {
                subs: Vec::new(),
                backlog: VecDeque::new(),
            }),
            sub_count: AtomicUsize::new(0),
            active: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether anyone is subscribed right now (relaxed; hot path).
    pub fn is_watched(&self) -> bool {
        self.sub_count.load(Ordering::Relaxed) > 0
    }

    fn push(&self, token: u64, kind: SubKind) {
        let mut st = self.state.lock().expect("room state poisoned");
        if st.subs.iter().any(|s| s.token == token) {
            return;
        }
        st.subs.push(Sub { token, kind });
        self.sub_count.store(st.subs.len(), Ordering::Relaxed);
    }

    fn remove(&self, token: u64) -> bool {
        let mut st = self.state.lock().expect("room state poisoned");
        let before = st.subs.len();
        st.subs.retain(|s| s.token != token);
        self.sub_count.store(st.subs.len(), Ordering::Relaxed);
        st.subs.len() != before
    }
}

/// The room registry: one per server, shared by workers (open, publish,
/// close) and the event loop (watch, unsubscribe-on-teardown).
pub struct Broadcast {
    rooms: Mutex<HashMap<String, Arc<Room>>>,
    tx: LoopSender,
    /// Event lines fanned out to subscribers, cumulative.
    events_published: AtomicU64,
}

impl Broadcast {
    /// Creates an empty registry delivering through `tx`.
    pub fn new(tx: LoopSender) -> Broadcast {
        Broadcast {
            rooms: Mutex::new(HashMap::new()),
            tx,
            events_published: AtomicU64::new(0),
        }
    }

    fn room(&self, key: &str) -> Arc<Room> {
        let mut rooms = self.rooms.lock().expect("room registry poisoned");
        Arc::clone(
            rooms
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Room::new())),
        )
    }

    /// Opens (or reuses) the room for `key` and marks it active. Called
    /// by the flight leader before execution starts.
    pub fn open(&self, key: &str) -> Arc<Room> {
        let room = self.room(key);
        room.active.store(true, Ordering::SeqCst);
        room
    }

    /// Subscribes a streaming-run connection to `key`'s room, creating
    /// the room if the leader has not opened it yet (the leader's
    /// `open` will then find it).
    pub fn subscribe(&self, key: &str, token: u64) {
        self.room(key).push(token, SubKind::Runner);
    }

    /// Attaches a watcher to `key`'s room **only if** a flight is
    /// actively feeding it. Returns whether the subscription happened.
    ///
    /// A successful attach immediately replays the room's backlog — the
    /// most recent [`BACKLOG_CAP`] event lines published while the room
    /// was watched — to the new token, *under the same lock `publish`
    /// takes*, so the replayed prefix and the live tail form one gapless,
    /// duplicate-free stream.
    pub fn watch(&self, key: &str, token: u64) -> bool {
        let room = {
            let rooms = self.rooms.lock().expect("room registry poisoned");
            rooms.get(key).cloned()
        };
        match room {
            Some(room) if room.active.load(Ordering::SeqCst) => {
                let mut st = room.state.lock().expect("room state poisoned");
                if !st.subs.iter().any(|s| s.token == token) {
                    st.subs.push(Sub {
                        token,
                        kind: SubKind::Watcher,
                    });
                    room.sub_count.store(st.subs.len(), Ordering::Relaxed);
                    self.events_published
                        .fetch_add(st.backlog.len() as u64, Ordering::Relaxed);
                    for line in st.backlog.iter() {
                        self.tx.send(LoopMsg::StreamLine {
                            token,
                            line: Arc::clone(line),
                        });
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Fans one event line out to every subscriber of `room` and appends
    /// it to the room's bounded replay backlog for late watchers.
    pub fn publish(&self, room: &Room, line: &str) {
        let mut st = room.state.lock().expect("room state poisoned");
        let line: Arc<str> = Arc::from(line);
        if st.backlog.len() == BACKLOG_CAP {
            st.backlog.pop_front();
        }
        st.backlog.push_back(Arc::clone(&line));
        if st.subs.is_empty() {
            return;
        }
        self.events_published
            .fetch_add(st.subs.len() as u64, Ordering::Relaxed);
        for sub in st.subs.iter() {
            self.tx.send(LoopMsg::StreamLine {
                token: sub.token,
                line: Arc::clone(&line),
            });
        }
    }

    /// Closes `key`'s room: watchers receive `final_line` and a stream
    /// end; runner subscriptions are dropped (their own jobs deliver
    /// their finals). The room leaves the registry, so late watch
    /// requests see 404 rather than a stream that will never move.
    pub fn close(&self, key: &str, final_line: &str) {
        let room = {
            let mut rooms = self.rooms.lock().expect("room registry poisoned");
            rooms.remove(key)
        };
        let Some(room) = room else { return };
        room.active.store(false, Ordering::SeqCst);
        let mut st = room.state.lock().expect("room state poisoned");
        st.backlog.clear();
        for sub in st.subs.drain(..) {
            if sub.kind == SubKind::Watcher {
                self.tx.send(LoopMsg::StreamLine {
                    token: sub.token,
                    line: Arc::from(final_line),
                });
                self.tx.send(LoopMsg::StreamEnd {
                    token: sub.token,
                    final_line: None,
                });
            }
        }
        room.sub_count.store(0, Ordering::Relaxed);
    }

    /// Removes `token` from every room (connection teardown) and
    /// garbage-collects rooms that are inactive and empty — the
    /// "no leaked fan-out registrations" invariant.
    pub fn unsubscribe(&self, token: u64) {
        let mut rooms = self.rooms.lock().expect("room registry poisoned");
        rooms.retain(|_, room| {
            room.remove(token);
            room.active.load(Ordering::SeqCst) || room.sub_count.load(Ordering::Relaxed) > 0
        });
    }

    /// Total live subscriptions across all rooms (gauge).
    pub fn subscribers(&self) -> usize {
        let rooms = self.rooms.lock().expect("room registry poisoned");
        rooms
            .values()
            .map(|r| r.sub_count.load(Ordering::Relaxed))
            .sum()
    }

    /// Rooms currently registered (gauge).
    pub fn rooms(&self) -> usize {
        self.rooms.lock().expect("room registry poisoned").len()
    }

    /// Event lines fanned out so far (counter).
    pub fn events_published(&self) -> u64 {
        self.events_published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tokens(tx: &LoopSender) -> Vec<(u64, &'static str)> {
        tx.drain()
            .into_iter()
            .map(|m| match m {
                LoopMsg::StreamLine { token, .. } => (token, "line"),
                LoopMsg::StreamEnd { token, .. } => (token, "end"),
                LoopMsg::Done { token, .. } => (token, "done"),
                LoopMsg::StreamStart { token } => (token, "start"),
                LoopMsg::Shutdown => (0, "shutdown"),
            })
            .collect()
    }

    #[test]
    fn publish_reaches_every_subscriber_and_close_ends_watchers_only() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        assert!(!room.is_watched(), "empty room is unwatched");
        b.subscribe("k", 10); // runner
        assert!(b.watch("k", 20), "active room accepts watchers");
        assert!(room.is_watched());
        assert_eq!(b.subscribers(), 2);

        b.publish(&room, "{\"e\":1}\n");
        let msgs = drain_tokens(&tx);
        assert!(msgs.contains(&(10, "line")) && msgs.contains(&(20, "line")));
        assert_eq!(b.events_published(), 2, "one line × two subscribers");

        b.close("k", "{\"final\":true}\n");
        let msgs = drain_tokens(&tx);
        // Watcher 20 gets final line + end; runner 10 gets nothing more.
        assert!(msgs.contains(&(20, "line")) && msgs.contains(&(20, "end")));
        assert!(!msgs.iter().any(|(t, _)| *t == 10));
        assert_eq!(b.rooms(), 0, "closed rooms leave the registry");
        assert!(!b.watch("k", 30), "closed rooms refuse watchers");
    }

    #[test]
    fn unsubscribe_garbage_collects_inactive_rooms() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx);
        // A runner subscribing before the leader opened the room — then
        // the leader never comes (e.g. its flight hit the cache).
        b.subscribe("orphan", 7);
        assert_eq!(b.rooms(), 1);
        b.unsubscribe(7);
        assert_eq!(b.rooms(), 0, "empty inactive room collected");
        assert_eq!(b.subscribers(), 0);

        // An active room survives losing its last subscriber.
        let room = b.open("live");
        b.subscribe("live", 8);
        b.unsubscribe(8);
        assert_eq!(b.rooms(), 1, "active room persists for the leader");
        assert!(!room.is_watched());
        b.close("live", "x\n");
        assert_eq!(b.rooms(), 0);
    }

    fn drain_lines_for(tx: &LoopSender, token: u64) -> Vec<String> {
        tx.drain()
            .into_iter()
            .filter_map(|m| match m {
                LoopMsg::StreamLine { token: t, line } if t == token => Some(line.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn late_watchers_replay_the_bounded_backlog_then_follow_live() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        b.subscribe("k", 1); // a runner keeps the room watched
        for i in 0..300 {
            b.publish(&room, &format!("{i}\n"));
        }
        tx.drain();

        // The late watcher gets exactly the newest BACKLOG_CAP lines, in
        // publish order, as its replayed prefix.
        assert!(b.watch("k", 2));
        let replayed = drain_lines_for(&tx, 2);
        assert_eq!(replayed.len(), BACKLOG_CAP);
        assert_eq!(replayed.first().map(String::as_str), Some("44\n"));
        assert_eq!(replayed.last().map(String::as_str), Some("299\n"));

        // A duplicate attach neither re-subscribes nor re-replays.
        assert!(b.watch("k", 2));
        assert!(drain_lines_for(&tx, 2).is_empty());
        assert_eq!(b.subscribers(), 2);

        // Live lines resume after the replayed prefix with no gap or dup.
        b.publish(&room, "live\n");
        assert_eq!(drain_lines_for(&tx, 2), ["live\n"]);

        // Close still ends watchers with the final line; the backlog is
        // not replayed again to anyone.
        b.close("k", "final\n");
        assert_eq!(drain_lines_for(&tx, 2), ["final\n"]);
    }

    #[test]
    fn duplicate_subscriptions_collapse() {
        let tx = LoopSender::new().expect("eventfd");
        let b = Broadcast::new(tx.clone());
        let room = b.open("k");
        b.subscribe("k", 5);
        b.subscribe("k", 5);
        assert_eq!(b.subscribers(), 1);
        b.publish(&room, "x\n");
        assert_eq!(drain_tokens(&tx).len(), 1);
        b.close("k", "f\n");
    }

    #[test]
    fn sender_queue_is_fifo() {
        let tx = LoopSender::new().expect("eventfd");
        tx.send(LoopMsg::StreamStart { token: 1 });
        tx.send(LoopMsg::StreamLine {
            token: 1,
            line: Arc::from("a\n"),
        });
        tx.send(LoopMsg::StreamEnd {
            token: 1,
            final_line: None,
        });
        let kinds: Vec<&str> = tx
            .drain()
            .into_iter()
            .map(|m| match m {
                LoopMsg::StreamStart { .. } => "start",
                LoopMsg::StreamLine { .. } => "line",
                LoopMsg::StreamEnd { .. } => "end",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["start", "line", "end"]);
    }
}
