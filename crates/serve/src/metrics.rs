//! Service counters surfaced by `GET /metrics`.
//!
//! Two layers in one response: the *service* counters (accepts, sheds,
//! coalesced followers, cache hits, executions, failures — everything
//! the load-shedding and coalescing machinery decides), and the
//! *simulation* counters from the observability layer (DESIGN.md §6):
//! runs, instructions, baseline-cache hits, and the per-domain
//! controller-activity aggregate including mean reaction time, folded in
//! from every run set the service has executed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mcd_bench::runner::{ControllerActivity, RunStats};

/// Simulation-side totals, merged from per-request run sets.
#[derive(Default)]
struct SimTotals {
    runs: u64,
    instructions: u64,
    baseline_hits: u64,
    activity: ControllerActivity,
}

/// All service counters. Every field is monotonic except the gauges
/// passed into [`ServeMetrics::to_json`] at render time.
#[derive(Default)]
pub struct ServeMetrics {
    /// Connections accepted off the listener.
    pub accepted: AtomicU64,
    /// Connections answered 503 because the accept queue was full.
    pub shed: AtomicU64,
    /// Requests successfully parsed.
    pub requests: AtomicU64,
    /// `POST /run` requests.
    pub run_requests: AtomicU64,
    /// Run requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Run requests answered by another request's in-flight run.
    pub coalesced: AtomicU64,
    /// Leader executions — exactly one per distinct fingerprint.
    pub runs_executed: AtomicU64,
    /// Leader executions that returned a typed error.
    pub run_failures: AtomicU64,
    sim: Mutex<SimTotals>,
}

impl ServeMetrics {
    /// Folds one executed request's run-set counters into the totals.
    pub fn absorb_run(&self, stats: RunStats, activity: &ControllerActivity) {
        let mut sim = self.sim.lock().expect("sim totals poisoned");
        sim.runs += stats.runs;
        sim.instructions += stats.instructions;
        sim.baseline_hits += stats.baseline_hits;
        sim.activity.merge(activity);
    }

    /// Renders the `/metrics` response body. `queue_depth` and
    /// `in_flight` are read from the worker pool at render time;
    /// `cache_entries` from the result cache; `draining` flips once
    /// shutdown begins.
    pub fn to_json(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_entries: usize,
        draining: bool,
    ) -> String {
        let sim = self.sim.lock().expect("sim totals poisoned");
        format!(
            "{{\n  \"service\": {{\"accepted\": {}, \"shed\": {}, \"requests\": {}, \
             \"run_requests\": {}, \"cache_hits\": {}, \"coalesced\": {}, \
             \"runs_executed\": {}, \"run_failures\": {}, \"queue_depth\": {queue_depth}, \
             \"in_flight\": {in_flight}, \"cache_entries\": {cache_entries}, \
             \"draining\": {draining}}},\n  \
             \"simulation\": {{\"runs\": {}, \"instructions\": {}, \"baseline_cache_hits\": {}}},\n  \
             \"controller_activity\": {}\n}}\n",
            self.accepted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.run_requests.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.runs_executed.load(Ordering::Relaxed),
            self.run_failures.load(Ordering::Relaxed),
            sim.runs,
            sim.instructions,
            sim.baseline_hits,
            sim.activity.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_bench::checkpoint::{f64_field, u64_field};

    #[test]
    fn counters_land_in_the_rendered_json() {
        let m = ServeMetrics::default();
        m.accepted.store(5, Ordering::Relaxed);
        m.shed.store(2, Ordering::Relaxed);
        m.runs_executed.store(3, Ordering::Relaxed);
        m.absorb_run(
            RunStats {
                runs: 4,
                instructions: 123,
                baseline_hits: 1,
            },
            &ControllerActivity::default(),
        );
        let json = m.to_json(7, 1, 9, false);
        assert_eq!(u64_field(&json, "accepted"), Some(5));
        assert_eq!(u64_field(&json, "shed"), Some(2));
        assert_eq!(u64_field(&json, "runs_executed"), Some(3));
        assert_eq!(u64_field(&json, "queue_depth"), Some(7));
        assert_eq!(u64_field(&json, "cache_entries"), Some(9));
        assert_eq!(u64_field(&json, "instructions"), Some(123));
        assert!(json.contains("\"draining\": false"));
        assert!(
            json.contains("\"domain\": \"INT\""),
            "per-domain counters present"
        );
    }

    #[test]
    fn absorb_accumulates_across_runs() {
        let m = ServeMetrics::default();
        let mut a = ControllerActivity::default();
        a.relay_fires[0] = 2;
        m.absorb_run(
            RunStats {
                runs: 1,
                instructions: 10,
                baseline_hits: 0,
            },
            &a,
        );
        m.absorb_run(
            RunStats {
                runs: 2,
                instructions: 30,
                baseline_hits: 1,
            },
            &a,
        );
        let json = m.to_json(0, 0, 0, true);
        assert_eq!(u64_field(&json, "runs"), Some(3));
        assert_eq!(u64_field(&json, "instructions"), Some(40));
        assert_eq!(u64_field(&json, "relay_fires"), Some(4));
        assert!(json.contains("\"draining\": true"));
        // Reaction time is null with no completed reactions.
        assert_eq!(f64_field(&json, "mean_reaction_ns"), None);
    }
}
