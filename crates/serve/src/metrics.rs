//! Service counters and latency distributions surfaced by `GET /metrics`.
//!
//! Three layers in one response: the *service* counters (accepts, sheds,
//! coalesced followers, cache hits, executions, failures — everything
//! the load-shedding and coalescing machinery decides), the per-endpoint
//! per-outcome *latency histograms*, and the *simulation* counters from
//! the observability layer (DESIGN.md §6): runs, instructions,
//! baseline-cache hits, and the per-domain controller-activity aggregate
//! including mean reaction time, folded in from every run set the
//! service has executed.
//!
//! Rendering goes through one [`MetricsSnapshot`]: every counter is
//! loaded exactly once per request, and both the JSON and the Prometheus
//! renderer read from that same struct, so the two views of a single
//! scrape always agree with each other. The snapshot itself is *not* a
//! consistent cut — each atomic is loaded `Relaxed` and independently,
//! so a request landing mid-snapshot can make e.g. `requests` and
//! `run_requests` differ by an in-flight increment. That staleness is
//! bounded by the number of concurrently executing requests and is
//! harmless for monotonic counters scraped at second granularity, which
//! is why the service tolerates it instead of paying for a global lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mcd_bench::runner::{ControllerActivity, RunStats};
use mcd_telemetry::prometheus::PromText;
use mcd_telemetry::{Histogram, HistogramSnapshot};

/// Request endpoints tracked by the latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /run`.
    Run,
    /// `GET /experiments`.
    Experiments,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else (404s, wrong methods, shed connections).
    Other,
}

impl Endpoint {
    /// Every endpoint, in label order.
    pub const ALL: [Endpoint; 6] = [
        Endpoint::Run,
        Endpoint::Experiments,
        Endpoint::Metrics,
        Endpoint::Healthz,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The endpoint a request path routes to (method-agnostic: a 405 on
    /// `/run` still counts against the run endpoint).
    pub fn of_path(path: &str) -> Endpoint {
        match path {
            "/run" => Endpoint::Run,
            "/experiments" => Endpoint::Experiments,
            "/metrics" => Endpoint::Metrics,
            "/healthz" => Endpoint::Healthz,
            "/shutdown" => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Run => "run",
            Endpoint::Experiments => "experiments",
            Endpoint::Metrics => "metrics",
            Endpoint::Healthz => "healthz",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }
}

/// How a tracked request concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// 2xx on a non-`/run` endpoint.
    Ok,
    /// `/run` answered from the result cache.
    Hit,
    /// `/run` answered by another request's in-flight execution.
    Coalesced,
    /// `/run` executed as the flight leader.
    Miss,
    /// Connection answered 503 because the accept queue was full.
    Shed,
    /// Any 4xx/5xx conclusion.
    Error,
}

impl Outcome {
    /// Every outcome, in label order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Ok,
        Outcome::Hit,
        Outcome::Coalesced,
        Outcome::Miss,
        Outcome::Shed,
        Outcome::Error,
    ];

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Hit => "hit",
            Outcome::Coalesced => "coalesced",
            Outcome::Miss => "miss",
            Outcome::Shed => "shed",
            Outcome::Error => "error",
        }
    }
}

/// Simulation-side totals, merged from per-request run sets.
#[derive(Default, Clone, Copy)]
struct SimTotals {
    runs: u64,
    instructions: u64,
    baseline_requests: u64,
    activity: ControllerActivity,
}

/// All service counters. Every field is monotonic except the gauges
/// passed into [`ServeMetrics::snapshot`] at render time.
#[derive(Default)]
pub struct ServeMetrics {
    /// Connections accepted off the listener.
    pub accepted: AtomicU64,
    /// Connections answered 503 because the accept queue was full.
    pub shed: AtomicU64,
    /// Requests successfully parsed.
    pub requests: AtomicU64,
    /// `POST /run` requests.
    pub run_requests: AtomicU64,
    /// Run requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Run requests answered by another request's in-flight run.
    pub coalesced: AtomicU64,
    /// Leader executions — exactly one per distinct fingerprint.
    pub runs_executed: AtomicU64,
    /// Leader executions that returned a typed error.
    pub run_failures: AtomicU64,
    /// Requests served on an already-used keep-alive connection
    /// (second and later requests per connection).
    pub keepalive_reuses: AtomicU64,
    /// Connections closed by a read/idle/write deadline.
    pub deadline_closes: AtomicU64,
    /// Chunked trace streams opened (`/run?stream=1` + `/watch`).
    pub streams_opened: AtomicU64,
    /// Event lines fanned out to stream subscribers (mirrored from the
    /// broadcast registry at render time).
    pub stream_events: AtomicU64,
    /// Binary `.mcdt` frames among those deliveries (mirrored counter).
    pub stream_frames: AtomicU64,
    /// Live stream subscriptions right now (mirrored gauge).
    pub stream_subscribers: AtomicU64,
    /// Fan-out rooms registered right now (mirrored gauge).
    pub stream_rooms: AtomicU64,
    /// File descriptors registered with the event loop (gauge, stored
    /// by the loop each iteration).
    pub loop_fds: AtomicU64,
    /// Readiness events delivered by the last `epoll_wait` (gauge).
    pub loop_ready: AtomicU64,
    /// Event-loop iteration wall time, microseconds.
    loop_iter_us: Histogram,
    /// Request latency in microseconds, by endpoint × outcome.
    latency: [[Histogram; Outcome::ALL.len()]; Endpoint::ALL.len()],
    sim: Mutex<SimTotals>,
}

impl ServeMetrics {
    /// Folds one executed request's run-set counters into the totals.
    pub fn absorb_run(&self, stats: RunStats, activity: &ControllerActivity) {
        let mut sim = self.sim.lock().expect("sim totals poisoned");
        sim.runs += stats.runs;
        sim.instructions += stats.instructions;
        sim.baseline_requests += stats.baseline_requests;
        sim.activity.merge(activity);
    }

    /// Records one event-loop iteration's wall time (called by the loop
    /// thread, once per `epoll_wait` round).
    pub fn record_loop_iteration(&self, micros: u64) {
        self.loop_iter_us.record(micros);
    }

    /// Records one request's wall time into its endpoint × outcome
    /// latency histogram.
    pub fn record_latency(&self, endpoint: Endpoint, outcome: Outcome, micros: u64) {
        let ei = Endpoint::ALL
            .iter()
            .position(|&e| e == endpoint)
            .expect("exhaustive");
        let oi = Outcome::ALL
            .iter()
            .position(|&o| o == outcome)
            .expect("exhaustive");
        self.latency[ei][oi].record(micros);
    }

    /// Captures one coherent view of every counter and histogram.
    /// `queue_depth` and `in_flight` are read from the worker pool at
    /// render time; `cache_entries` from the result cache; `draining`
    /// flips once shutdown begins. See the module docs for the staleness
    /// tolerance this snapshot provides (and what it does not).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_entries: usize,
        draining: bool,
    ) -> MetricsSnapshot {
        let sim = *self.sim.lock().expect("sim totals poisoned");
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            run_requests: self.run_requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            runs_executed: self.runs_executed.load(Ordering::Relaxed),
            run_failures: self.run_failures.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            deadline_closes: self.deadline_closes.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            stream_events: self.stream_events.load(Ordering::Relaxed),
            stream_frames: self.stream_frames.load(Ordering::Relaxed),
            stream_subscribers: self.stream_subscribers.load(Ordering::Relaxed),
            stream_rooms: self.stream_rooms.load(Ordering::Relaxed),
            loop_fds: self.loop_fds.load(Ordering::Relaxed),
            loop_ready: self.loop_ready.load(Ordering::Relaxed),
            loop_iter: self.loop_iter_us.snapshot(),
            queue_depth,
            in_flight,
            cache_entries,
            draining,
            latency: self
                .latency
                .iter()
                .map(|row| {
                    row.iter()
                        .map(Histogram::snapshot)
                        .collect::<Vec<_>>()
                        .try_into()
                        .expect("row length fixed")
                })
                .collect::<Vec<_>>()
                .try_into()
                .expect("grid length fixed"),
            sim,
        }
    }

    /// Renders the JSON `/metrics` body (see [`MetricsSnapshot::to_json`]).
    pub fn to_json(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_entries: usize,
        draining: bool,
    ) -> String {
        self.snapshot(queue_depth, in_flight, cache_entries, draining)
            .to_json()
    }
}

/// One coherent view of the service: all counters loaded once, all
/// histograms snapshotted once. Both renderers read from here.
pub struct MetricsSnapshot {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Connections answered 503 because the accept queue was full.
    pub shed: u64,
    /// Requests successfully parsed.
    pub requests: u64,
    /// `POST /run` requests.
    pub run_requests: u64,
    /// Run requests answered from the result cache.
    pub cache_hits: u64,
    /// Run requests answered by another request's in-flight run.
    pub coalesced: u64,
    /// Leader executions.
    pub runs_executed: u64,
    /// Leader executions that returned a typed error.
    pub run_failures: u64,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuses: u64,
    /// Connections closed by a read/idle/write deadline.
    pub deadline_closes: u64,
    /// Chunked trace streams opened.
    pub streams_opened: u64,
    /// Event lines fanned out to stream subscribers.
    pub stream_events: u64,
    /// Binary `.mcdt` frames among those deliveries.
    pub stream_frames: u64,
    /// Live stream subscriptions at snapshot time.
    pub stream_subscribers: u64,
    /// Fan-out rooms registered at snapshot time.
    pub stream_rooms: u64,
    /// File descriptors registered with the event loop.
    pub loop_fds: u64,
    /// Readiness events delivered by the last `epoll_wait`.
    pub loop_ready: u64,
    loop_iter: HistogramSnapshot,
    /// Worker-pool queue depth at snapshot time.
    pub queue_depth: usize,
    /// Requests executing at snapshot time.
    pub in_flight: usize,
    /// Result-cache entries at snapshot time.
    pub cache_entries: usize,
    /// Whether graceful shutdown has begun.
    pub draining: bool,
    latency: [[HistogramSnapshot; Outcome::ALL.len()]; Endpoint::ALL.len()],
    sim: SimTotals,
}

impl MetricsSnapshot {
    /// Renders the JSON view. The PR 4 sections (`service`,
    /// `simulation`, `controller_activity`) keep their exact keys;
    /// the event-loop rebuild adds `streaming` and `event_loop`
    /// sections alongside them. The latency histograms are
    /// Prometheus-only; JSON consumers get the counters.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"service\": {{\"accepted\": {}, \"shed\": {}, \"requests\": {}, \
             \"run_requests\": {}, \"cache_hits\": {}, \"coalesced\": {}, \
             \"runs_executed\": {}, \"run_failures\": {}, \"queue_depth\": {}, \
             \"in_flight\": {}, \"cache_entries\": {}, \
             \"draining\": {}}},\n  \
             \"streaming\": {{\"streams_opened\": {}, \"stream_events\": {}, \
             \"stream_frames\": {}, \"stream_subscribers\": {}, \"stream_rooms\": {}}},\n  \
             \"event_loop\": {{\"keepalive_reuses\": {}, \"deadline_closes\": {}, \
             \"loop_fds\": {}, \"loop_ready\": {}}},\n  \
             \"simulation\": {{\"runs\": {}, \"instructions\": {}, \"baseline_requests\": {}}},\n  \
             \"controller_activity\": {}\n}}\n",
            self.accepted,
            self.shed,
            self.requests,
            self.run_requests,
            self.cache_hits,
            self.coalesced,
            self.runs_executed,
            self.run_failures,
            self.queue_depth,
            self.in_flight,
            self.cache_entries,
            self.draining,
            self.streams_opened,
            self.stream_events,
            self.stream_frames,
            self.stream_subscribers,
            self.stream_rooms,
            self.keepalive_reuses,
            self.deadline_closes,
            self.loop_fds,
            self.loop_ready,
            self.sim.runs,
            self.sim.instructions,
            self.sim.baseline_requests,
            self.sim.activity.to_json(),
        )
    }

    /// Renders the Prometheus text-exposition view of the same snapshot.
    /// Latency histograms record microseconds and are exposed in seconds
    /// (`scale = 1e-6`); empty endpoint × outcome series are omitted to
    /// keep the page proportional to observed traffic.
    pub fn to_prometheus(&self) -> String {
        let mut page = PromText::new();
        page.counter(
            "mcd_serve_accepted_total",
            "Connections accepted off the listener.",
        )
        .sample(&[], self.accepted);
        page.counter(
            "mcd_serve_shed_total",
            "Connections answered 503 because the accept queue was full.",
        )
        .sample(&[], self.shed);
        page.counter("mcd_serve_requests_total", "Requests successfully parsed.")
            .sample(&[], self.requests);
        page.counter("mcd_serve_run_requests_total", "POST /run requests.")
            .sample(&[], self.run_requests);
        page.counter(
            "mcd_serve_cache_hits_total",
            "Run requests answered from the result cache.",
        )
        .sample(&[], self.cache_hits);
        page.counter(
            "mcd_serve_coalesced_total",
            "Run requests answered by another request's in-flight run.",
        )
        .sample(&[], self.coalesced);
        page.counter(
            "mcd_serve_runs_executed_total",
            "Leader executions, one per distinct fingerprint.",
        )
        .sample(&[], self.runs_executed);
        page.counter(
            "mcd_serve_run_failures_total",
            "Leader executions that returned a typed error.",
        )
        .sample(&[], self.run_failures);
        page.gauge("mcd_serve_queue_depth", "Worker-pool queue depth.")
            .sample(&[], self.queue_depth as u64);
        page.gauge("mcd_serve_in_flight", "Requests executing right now.")
            .sample(&[], self.in_flight as u64);
        page.gauge("mcd_serve_cache_entries", "Result-cache entries.")
            .sample(&[], self.cache_entries as u64);
        page.gauge(
            "mcd_serve_draining",
            "1 once graceful shutdown has begun, else 0.",
        )
        .sample(&[], u64::from(self.draining));
        page.counter(
            "mcd_serve_keepalive_reuses_total",
            "Requests served on an already-used keep-alive connection.",
        )
        .sample(&[], self.keepalive_reuses);
        page.counter(
            "mcd_serve_deadline_closes_total",
            "Connections closed by a read/idle/write deadline.",
        )
        .sample(&[], self.deadline_closes);
        page.counter(
            "mcd_serve_streams_opened_total",
            "Chunked trace streams opened (/run?stream=1 and /watch).",
        )
        .sample(&[], self.streams_opened);
        page.counter(
            "mcd_serve_stream_events_total",
            "Event lines fanned out to stream subscribers.",
        )
        .sample(&[], self.stream_events);
        page.counter(
            "mcd_serve_stream_frames_total",
            "Binary .mcdt frames among the fanned-out deliveries.",
        )
        .sample(&[], self.stream_frames);
        page.gauge(
            "mcd_serve_stream_subscribers",
            "Live stream subscriptions across all fan-out rooms.",
        )
        .sample(&[], self.stream_subscribers);
        page.gauge(
            "mcd_serve_stream_rooms",
            "Fan-out rooms currently registered.",
        )
        .sample(&[], self.stream_rooms);
        page.gauge(
            "mcd_serve_loop_fds",
            "File descriptors registered with the event loop.",
        )
        .sample(&[], self.loop_fds);
        page.gauge(
            "mcd_serve_loop_ready",
            "Readiness events delivered by the last epoll_wait.",
        )
        .sample(&[], self.loop_ready);
        {
            let mut family = page.histogram(
                "mcd_serve_loop_iteration_seconds",
                "Event-loop iteration wall time.",
            );
            family.series(&[], &self.loop_iter, 1e-6);
        }
        {
            let mut family = page.histogram(
                "mcd_serve_request_seconds",
                "Request wall time by endpoint and outcome.",
            );
            for (ei, endpoint) in Endpoint::ALL.iter().enumerate() {
                for (oi, outcome) in Outcome::ALL.iter().enumerate() {
                    let snap = &self.latency[ei][oi];
                    if snap.count() == 0 {
                        continue;
                    }
                    family.series(
                        &[("endpoint", endpoint.label()), ("outcome", outcome.label())],
                        snap,
                        1e-6,
                    );
                }
            }
        }
        page.counter("mcd_sim_runs_total", "Simulations executed.")
            .sample(&[], self.sim.runs);
        page.counter("mcd_sim_instructions_total", "Instructions simulated.")
            .sample(&[], self.sim.instructions);
        page.counter(
            "mcd_sim_baseline_requests_total",
            "Baseline lookups issued against the memo cache (hits and computes).",
        )
        .sample(&[], self.sim.baseline_requests);

        let a = &self.sim.activity;
        let per_domain: [(&str, &str, &[u64; 3]); 8] = [
            (
                "mcd_ctrl_relay_arms_total",
                "Time-delay relay arms.",
                &a.relay_arms,
            ),
            (
                "mcd_ctrl_relay_fires_total",
                "Time-delay relay firings.",
                &a.relay_fires,
            ),
            (
                "mcd_ctrl_relay_resets_total",
                "Time-delay relay resets.",
                &a.relay_resets,
            ),
            (
                "mcd_ctrl_freq_steps_up_total",
                "Upward frequency steps issued.",
                &a.freq_steps_up,
            ),
            (
                "mcd_ctrl_freq_steps_down_total",
                "Downward frequency steps issued.",
                &a.freq_steps_down,
            ),
            (
                "mcd_ctrl_reactions_total",
                "Completed deviation-onset to frequency-step episodes.",
                &a.reaction_count,
            ),
            (
                "mcd_ctrl_reaction_time_picoseconds_total",
                "Summed reaction time; divide by mcd_ctrl_reactions_total for the mean.",
                &a.reaction_sum_ps,
            ),
            (
                "mcd_ctrl_sync_stalls_total",
                "Enqueues delayed by the synchronization window.",
                &a.sync_enqueues,
            ),
        ];
        for (name, help, values) in per_domain {
            let mut family = page.counter(name, help);
            for (i, domain) in ControllerActivity::DOMAINS.iter().enumerate() {
                family.sample(&[("domain", domain)], values[i]);
            }
        }
        page.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_bench::checkpoint::{f64_field, u64_field};
    use mcd_telemetry::prometheus::lint;

    #[test]
    fn counters_land_in_the_rendered_json() {
        let m = ServeMetrics::default();
        m.accepted.store(5, Ordering::Relaxed);
        m.shed.store(2, Ordering::Relaxed);
        m.runs_executed.store(3, Ordering::Relaxed);
        m.absorb_run(
            RunStats {
                runs: 4,
                instructions: 123,
                baseline_requests: 1,
                ..RunStats::default()
            },
            &ControllerActivity::default(),
        );
        let json = m.to_json(7, 1, 9, false);
        assert_eq!(u64_field(&json, "accepted"), Some(5));
        assert_eq!(u64_field(&json, "shed"), Some(2));
        assert_eq!(u64_field(&json, "runs_executed"), Some(3));
        assert_eq!(u64_field(&json, "queue_depth"), Some(7));
        assert_eq!(u64_field(&json, "cache_entries"), Some(9));
        assert_eq!(u64_field(&json, "instructions"), Some(123));
        assert!(json.contains("\"draining\": false"));
        assert!(
            json.contains("\"domain\": \"INT\""),
            "per-domain counters present"
        );
    }

    #[test]
    fn absorb_accumulates_across_runs() {
        let m = ServeMetrics::default();
        let mut a = ControllerActivity::default();
        a.relay_fires[0] = 2;
        m.absorb_run(
            RunStats {
                runs: 1,
                instructions: 10,
                baseline_requests: 0,
                ..RunStats::default()
            },
            &a,
        );
        m.absorb_run(
            RunStats {
                runs: 2,
                instructions: 30,
                baseline_requests: 1,
                ..RunStats::default()
            },
            &a,
        );
        let json = m.to_json(0, 0, 0, true);
        assert_eq!(u64_field(&json, "runs"), Some(3));
        assert_eq!(u64_field(&json, "instructions"), Some(40));
        assert_eq!(u64_field(&json, "relay_fires"), Some(4));
        assert!(json.contains("\"draining\": true"));
        // Reaction time is null with no completed reactions.
        assert_eq!(f64_field(&json, "mean_reaction_ns"), None);
    }

    #[test]
    fn prometheus_page_lints_and_carries_latency_series() {
        let m = ServeMetrics::default();
        m.accepted.store(4, Ordering::Relaxed);
        m.record_latency(Endpoint::Run, Outcome::Hit, 250);
        m.record_latency(Endpoint::Run, Outcome::Hit, 900);
        m.record_latency(Endpoint::Healthz, Outcome::Ok, 40);
        m.record_latency(Endpoint::Other, Outcome::Shed, 1200);
        let mut a = ControllerActivity::default();
        a.relay_fires[1] = 7;
        m.absorb_run(
            RunStats {
                runs: 1,
                instructions: 10,
                baseline_requests: 0,
                ..RunStats::default()
            },
            &a,
        );
        let page = m.snapshot(3, 1, 2, false).to_prometheus();
        lint(page.as_bytes()).unwrap_or_else(|e| panic!("lint failed: {e}\n{page}"));
        assert!(page.contains("mcd_serve_accepted_total 4"));
        assert!(
            page.contains("mcd_serve_request_seconds_count{endpoint=\"run\",outcome=\"hit\"} 2")
        );
        assert!(page.contains("outcome=\"shed\""));
        assert!(page.contains("mcd_ctrl_relay_fires_total{domain=\"FP\"} 7"));
        assert!(
            !page.contains("outcome=\"miss\""),
            "empty series are omitted"
        );
    }

    #[test]
    fn json_and_prometheus_render_the_same_snapshot() {
        let m = ServeMetrics::default();
        m.requests.store(11, Ordering::Relaxed);
        let snap = m.snapshot(0, 0, 0, false);
        // One more request lands after the snapshot was taken...
        m.requests.fetch_add(1, Ordering::Relaxed);
        // ...and both renderers still agree, because they read the cut.
        assert_eq!(u64_field(&snap.to_json(), "requests"), Some(11));
        assert!(snap.to_prometheus().contains("mcd_serve_requests_total 11"));
    }
}
