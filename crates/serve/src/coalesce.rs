//! Request coalescing: concurrent identical requests share one run.
//!
//! Requests are identical when their configuration fingerprints match
//! (`checkpoint::fingerprint` plus the experiment id — everything that
//! shapes response bytes). The first arrival for a fingerprint becomes
//! the **leader** and executes the run; everyone who arrives while it is
//! in flight becomes a **follower** and waits on the leader's flight.
//! The leader publishes one `Arc`'d response that every member of the
//! flight returns verbatim — duplicates are byte-identical by
//! construction, because there is only one byte buffer.
//!
//! Lifecycle invariant: a flight is removed from the index *in the same
//! lock hold* that publishes its value, so a request arriving after
//! publication can never join a dead flight — it either hits the result
//! cache (the leader fills it before publishing) or becomes a fresh
//! leader. Follower waits are bounded; a leader that somehow never
//! publishes costs its followers a timeout, not a deadlock.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One in-flight computation; followers block on [`Flight::wait`].
pub struct Flight<T> {
    slot: Mutex<Option<Arc<T>>>,
    ready: Condvar,
}

impl<T> Flight<T> {
    fn new() -> Flight<T> {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, value: Arc<T>) {
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
    }

    /// Blocks until the leader publishes, or `timeout` elapses (`None`).
    pub fn wait(&self, timeout: Duration) -> Option<Arc<T>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(v) = slot.as_ref() {
                return Some(Arc::clone(v));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("flight slot poisoned");
            slot = guard;
        }
    }
}

/// What [`Coalescer::join`] hands back.
pub enum Ticket<T> {
    /// This request runs the computation and must eventually
    /// [`Coalescer::publish`] for its key.
    Leader,
    /// This request waits on an existing flight.
    Follower(Arc<Flight<T>>),
}

/// The flight index: fingerprint → in-flight computation.
pub struct Coalescer<T> {
    flights: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T> Default for Coalescer<T> {
    fn default() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<T> Coalescer<T> {
    /// Joins the flight for `key`, creating it (and becoming leader) if
    /// none is in flight.
    pub fn join(&self, key: &str) -> Ticket<T> {
        let mut flights = self.flights.lock().expect("flight index poisoned");
        match flights.get(key) {
            Some(flight) => Ticket::Follower(Arc::clone(flight)),
            None => {
                flights.insert(key.to_string(), Arc::new(Flight::new()));
                Ticket::Leader
            }
        }
    }

    /// Publishes the leader's result for `key` and retires the flight.
    /// Removal and publication happen under one index lock hold, so no
    /// later arrival can join a flight that already completed.
    pub fn publish(&self, key: &str, value: Arc<T>) {
        let mut flights = self.flights.lock().expect("flight index poisoned");
        if let Some(flight) = flights.remove(key) {
            flight.publish(value);
        }
    }

    /// Flights currently in the index (for metrics/tests).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight index poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_join_leads_second_follows() {
        let c: Coalescer<u32> = Coalescer::default();
        assert!(matches!(c.join("k"), Ticket::Leader));
        let Ticket::Follower(flight) = c.join("k") else {
            panic!("second join must follow");
        };
        assert_eq!(c.in_flight(), 1);
        c.publish("k", Arc::new(7));
        assert_eq!(*flight.wait(Duration::from_secs(1)).expect("published"), 7);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn after_publish_the_next_join_leads_again() {
        let c: Coalescer<u32> = Coalescer::default();
        assert!(matches!(c.join("k"), Ticket::Leader));
        c.publish("k", Arc::new(1));
        assert!(matches!(c.join("k"), Ticket::Leader), "flight was retired");
    }

    #[test]
    fn followers_share_one_allocation() {
        let c: Coalescer<String> = Coalescer::default();
        assert!(matches!(c.join("k"), Ticket::Leader));
        let followers: Vec<Arc<Flight<String>>> = (0..4)
            .map(|_| match c.join("k") {
                Ticket::Follower(f) => f,
                Ticket::Leader => panic!("flight already exists"),
            })
            .collect();
        let value = Arc::new("body".to_string());
        c.publish("k", Arc::clone(&value));
        for f in followers {
            let got = f.wait(Duration::from_secs(1)).expect("published");
            assert!(Arc::ptr_eq(&got, &value), "bytes are shared, not copied");
        }
    }

    #[test]
    fn wait_times_out_when_leader_never_publishes() {
        let c: Coalescer<u32> = Coalescer::default();
        assert!(matches!(c.join("k"), Ticket::Leader));
        let Ticket::Follower(flight) = c.join("k") else {
            panic!("second join must follow");
        };
        assert!(flight.wait(Duration::from_millis(30)).is_none());
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c: Coalescer<u32> = Coalescer::default();
        assert!(matches!(c.join("a"), Ticket::Leader));
        assert!(matches!(c.join("b"), Ticket::Leader));
        assert_eq!(c.in_flight(), 2);
    }
}
