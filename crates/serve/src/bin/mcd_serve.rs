//! `mcd-serve` binary: run the simulation service from the command line.
//!
//! ```text
//! mcd-serve --addr 127.0.0.1:7979 --workers 4 --warm /tmp/mcd-warm
//! curl -s localhost:7979/run -d '{"experiment": "fig8", "ops": 40000}'
//! ```
//!
//! Shutdown paths (all graceful — drain, then flush):
//! - `POST /shutdown` over HTTP;
//! - `--shutdown-after <secs>` deadline;
//! - `--stdin-control`: reading `shutdown` (or EOF) on stdin.

use std::time::Duration;

use mcd_bench::runner::RunConfig;
use mcd_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: mcd-serve [options]\n\
         \n\
         --addr HOST:PORT       bind address (default 127.0.0.1:7979; port 0 = ephemeral)\n\
         --workers N            connection worker threads (default 4)\n\
         --queue-cap N          bounded accept queue; beyond it requests are shed (default 32)\n\
         --cache-cap N          result-cache entries, LRU-evicted (default 256)\n\
         --jobs N               inner simulation threads per run (default 2)\n\
         --run-timeout SECS     wall-clock budget per run attempt (default 60)\n\
         --retry-after SECS     Retry-After advertised on shed 503s (default 1)\n\
         --read-timeout SECS    slow-loris bound: first byte to complete request (default 10)\n\
         --idle-timeout SECS    idle keep-alive connections close after SECS (default 30)\n\
         --write-timeout SECS   stalled response writes abandoned after SECS (default 10)\n\
         --max-conns N          concurrent connections held; beyond N accepts shed (default 256)\n\
         --warm DIR             warm-load DIR at start, flush cache there on shutdown;\n\
        \u{20}                       also stores mid-run snapshots under DIR/snapshots so\n\
        \u{20}                       uncached runs resume from their last shard boundary\n\
         --ops N                base dynamic-operation count per benchmark (default quick)\n\
         --seed N               base workload seed\n\
         --full                 start from the full paper-scale configuration\n\
         --shutdown-after SECS  trigger graceful shutdown after SECS\n\
         --stdin-control        shut down on the line 'shutdown' (or EOF) from stdin"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("error: bad value {v:?} for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7979".to_string(),
        ..ServeConfig::default()
    };
    let mut shutdown_after: Option<u64> = None;
    let mut stdin_control = false;
    let mut full = false;
    let mut ops: Option<u64> = None;
    let mut seed: Option<u64> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse(&arg, argv.next()),
            "--workers" => cfg.workers = parse(&arg, argv.next()),
            "--queue-cap" => cfg.queue_cap = parse(&arg, argv.next()),
            "--cache-cap" => cfg.cache_cap = parse(&arg, argv.next()),
            "--jobs" => cfg.inner_jobs = parse(&arg, argv.next()),
            "--run-timeout" => {
                cfg.run_timeout = Duration::from_secs(parse(&arg, argv.next()));
            }
            "--retry-after" => cfg.retry_after_s = parse(&arg, argv.next()),
            "--read-timeout" => {
                cfg.read_timeout = Duration::from_secs(parse(&arg, argv.next()));
            }
            "--idle-timeout" => {
                cfg.idle_timeout = Duration::from_secs(parse(&arg, argv.next()));
            }
            "--write-timeout" => {
                cfg.write_timeout = Duration::from_secs(parse(&arg, argv.next()));
            }
            "--max-conns" => cfg.max_conns = parse(&arg, argv.next()),
            "--warm" => cfg.warm_dir = Some(parse::<String>(&arg, argv.next()).into()),
            "--ops" => ops = Some(parse(&arg, argv.next())),
            "--seed" => seed = Some(parse(&arg, argv.next())),
            "--full" => full = true,
            "--shutdown-after" => shutdown_after = Some(parse(&arg, argv.next())),
            "--stdin-control" => stdin_control = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }

    cfg.base_cfg = if full {
        RunConfig::full()
    } else {
        RunConfig::quick()
    };
    if let Some(ops) = ops {
        if ops == 0 {
            eprintln!("error: --ops must be positive");
            usage();
        }
        cfg.base_cfg.ops = ops;
    }
    if let Some(seed) = seed {
        cfg.base_cfg.seed = seed;
    }

    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let warm = handle.warm();
    if warm.stale_rejected {
        eprintln!("warm cache was written by a different binary version; discarded");
    } else if warm.loaded > 0 {
        eprintln!("warm-loaded {} cached result(s)", warm.loaded);
    }
    println!("listening on http://{}", handle.addr());

    let app = std::sync::Arc::clone(handle.app());
    if let Some(secs) = shutdown_after {
        let app = std::sync::Arc::clone(&app);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(secs));
            eprintln!("shutdown deadline reached; draining");
            app.trigger_shutdown();
        });
    }
    if stdin_control {
        let app = std::sync::Arc::clone(&app);
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) if line.trim() == "shutdown" => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            eprintln!("stdin control requested shutdown; draining");
            app.trigger_shutdown();
        });
    }

    // Blocks until some path (HTTP, deadline, stdin) triggers shutdown,
    // then drains in-flight work and flushes the cache.
    match handle.finish() {
        Ok(report) => {
            if report.flushed > 0 {
                eprintln!("flushed {} cached result(s)", report.flushed);
            }
            eprintln!("shutdown complete");
        }
        Err(e) => {
            eprintln!("error during shutdown: {e}");
            std::process::exit(1);
        }
    }
}
