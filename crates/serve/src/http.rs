//! Minimal HTTP/1.1 framing over `std::net` — exactly the subset the
//! service needs.
//!
//! One request per connection (`Connection: close` on every response),
//! no chunked bodies, no TLS, no keep-alive. The simplicity is a
//! correctness feature: every response is a single write of a fully
//! rendered byte buffer, which is what makes "duplicate requests receive
//! byte-identical responses" a checkable property rather than a hope.
//!
//! Parsing is bounded everywhere (request line, header count, body
//! size), so a malformed or hostile client costs a worker at most
//! [`MAX_BODY`] bytes and one read-timeout.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request body; larger requests get 413.
pub const MAX_BODY: usize = 64 * 1024;
/// Largest accepted request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Most header lines read before the request is rejected.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path, and body (headers are consumed; only
/// `Content-Length` matters to this service).
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string after `?` (empty when none; no decoding).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the query string contains the exact `key=value` pair
    /// (the only query syntax this service speaks; no percent-decoding).
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (maps to 400).
    Malformed(String),
    /// Body or line over the configured bound (maps to 413).
    TooLarge,
    /// The connection died mid-read; nothing to answer.
    Io(std::io::Error),
}

/// Reads one line (through `\n`), byte-at-a-time against the stream,
/// bounded by [`MAX_LINE`]. Byte-wise reads are fine here: request lines
/// and headers are tiny, and the body below is read in one `read_exact`.
fn read_line(stream: &mut TcpStream) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Io(std::io::ErrorKind::UnexpectedEof.into()));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if line.len() >= MAX_LINE {
                    return Err(HttpError::TooLarge);
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// Reads and parses one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let request_line = read_line(stream)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(stream)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            stream.read_exact(&mut body).map_err(HttpError::Io)?;
            return Ok(Request {
                method: method.to_ascii_uppercase(),
                path,
                query,
                body,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
            if n > MAX_BODY {
                return Err(HttpError::TooLarge);
            }
            content_length = n;
        }
    }
    Err(HttpError::TooLarge)
}

/// A fully rendered response, written to the wire in one shot.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds, set on load-shedding 503s.
    pub retry_after: Option<u64>,
}

/// Reason phrase for the status codes this service emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// text exposition format on `GET /metrics`).
    pub fn text(status: u16, body: String, content_type: &'static str) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type,
            retry_after: None,
        }
    }

    /// A structured error body: `{"error": <kind>, "message": <msg>}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": \"{}\", \"message\": \"{}\"}}\n",
                json_escape(kind),
                json_escape(message)
            ),
        )
    }

    /// The load-shedding response: 503 plus `Retry-After`.
    pub fn shed(retry_after_s: u64) -> Response {
        let mut r = Response::error(
            503,
            "overloaded",
            "accept queue full; retry after the indicated delay",
        );
        r.retry_after = Some(retry_after_s);
        r
    }

    /// Serializes status line, headers, and body onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
        );
        if let Some(s) = self.retry_after {
            head.push_str(&format!("Retry-After: {s}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_controls_and_passthrough() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("l1\nl2\tt"), "l1\\nl2\\tt");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn error_responses_are_flat_json() {
        let r = Response::error(400, "bad-request", "missing \"experiment\"");
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"error\": \"bad-request\""));
        assert!(body.contains("missing \\\"experiment\\\""));
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let r = Response::shed(2);
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(2));
    }

    #[test]
    fn status_text_is_stable() {
        for s in [200, 400, 404, 405, 413, 422, 500, 503, 504] {
            assert_ne!(status_text(s), "Unknown");
        }
        assert_eq!(status_text(418), "Unknown");
    }
}
