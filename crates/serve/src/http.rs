//! HTTP/1.1 framing for the readiness-based connection path — exactly
//! the subset the service needs.
//!
//! Parsing is **incremental**: [`parse_request`] examines a byte buffer
//! the event loop has accumulated so far and reports either a complete
//! request (plus how many bytes it consumed, so pipelined successors
//! stay in the buffer), "need more bytes", or a typed error. It never
//! blocks and never touches a socket, which is what lets one loop
//! thread interleave thousands of partially-read connections.
//!
//! Keep-alive is the default (HTTP/1.1 semantics); a request carries
//! [`Request::wants_close`] when the client opted out. Responses render
//! to a single byte buffer in one shot — the property that makes
//! "duplicate requests receive byte-identical response bodies" checkable
//! rather than hoped-for survives the I/O model swap because the body
//! bytes are still rendered exactly once and shared.
//!
//! Bounds are enforced everywhere: header bytes past [`MAX_HEADER_BYTES`]
//! are a 431, bodies past [`MAX_BODY`] a 413, so a hostile client costs
//! the loop a bounded buffer and one deadline, never a thread.

/// Largest accepted request body; larger requests get 413.
pub const MAX_BODY: usize = 64 * 1024;
/// Largest accepted request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Most header lines read before the request is rejected with 431.
const MAX_HEADERS: usize = 64;
/// Total header-section bound (request line + headers + separators);
/// beyond it the request is rejected with 431.
pub const MAX_HEADER_BYTES: usize = MAX_LINE + MAX_HEADERS * 256;

/// A parsed request: method, path, query, body, and the connection
/// disposition the client asked for.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string after `?` (empty when none; no decoding).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `true` when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without requesting keep-alive).
    pub wants_close: bool,
    /// `true` when the `Accept` header lists `application/x-mcdt`: the
    /// client wants trace streams as CRC'd binary frames, not NDJSON.
    pub accepts_mcdt: bool,
}

impl Request {
    /// Whether the query string contains the exact `key=value` pair
    /// (the only query syntax this service speaks; no percent-decoding).
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (maps to 400).
    Malformed(String),
    /// Header section over the configured bound (maps to 431).
    HeadersTooLarge,
    /// Body over the configured bound (maps to 413).
    BodyTooLarge,
}

impl HttpError {
    /// The response this parse error maps to. Every parse error closes
    /// the connection: framing is unreliable after a bad request.
    pub fn response(&self) -> Response {
        match self {
            HttpError::Malformed(m) => Response::error(400, "malformed", m),
            HttpError::HeadersTooLarge => Response::error(
                431,
                "headers-too-large",
                "request header section exceeds service bounds",
            ),
            HttpError::BodyTooLarge => {
                Response::error(413, "too-large", "request exceeds service bounds")
            }
        }
    }
}

/// What [`parse_request`] found at the front of the buffer.
pub enum Parsed {
    /// A complete request occupying the first `consumed` bytes.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
    /// The buffer holds a valid prefix; wait for more bytes.
    Partial,
    /// The buffer can never become a valid request.
    Error(HttpError),
}

/// Attempts to parse one request from the front of `buf`. Stateless:
/// call it again with the grown buffer after every read. O(len) per
/// call, which stays cheap because the header section is bounded.
pub fn parse_request(buf: &[u8]) -> Parsed {
    // Find the end of the header section.
    let Some(head_end) = find_header_end(buf) else {
        // No terminator yet — partial, unless the section can no longer
        // fit in bounds.
        if buf.len() > MAX_HEADER_BYTES {
            return Parsed::Error(HttpError::HeadersTooLarge);
        }
        return Parsed::Partial;
    };
    if head_end > MAX_HEADER_BYTES {
        return Parsed::Error(HttpError::HeadersTooLarge);
    }
    let head = &buf[..head_end];
    let mut lines = split_lines(head);
    let Some(request_line) = lines.next() else {
        return Parsed::Error(HttpError::Malformed("empty request".into()));
    };
    if request_line.len() > MAX_LINE {
        return Parsed::Error(HttpError::HeadersTooLarge);
    }
    let Ok(request_line) = std::str::from_utf8(request_line) else {
        return Parsed::Error(HttpError::Malformed("non-UTF-8 request line".into()));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parsed::Error(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Parsed::Error(HttpError::Malformed(format!("bad version {version:?}")));
    }
    let http10 = version == "HTTP/1.0";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut wants_close = http10;
    let mut accepts_mcdt = false;
    let mut header_count = 0usize;
    for line in lines {
        header_count += 1;
        if header_count > MAX_HEADERS || line.len() > MAX_LINE {
            return Parsed::Error(HttpError::HeadersTooLarge);
        }
        let Ok(line) = std::str::from_utf8(line) else {
            return Parsed::Error(HttpError::Malformed("non-UTF-8 header bytes".into()));
        };
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Error(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return Parsed::Error(HttpError::Malformed(format!(
                    "bad content-length {value:?}"
                )));
            };
            if n > MAX_BODY {
                return Parsed::Error(HttpError::BodyTooLarge);
            }
            content_length = n;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                wants_close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                wants_close = false;
            }
        } else if name.eq_ignore_ascii_case("accept") {
            if value
                .split(',')
                .any(|m| m.trim().eq_ignore_ascii_case("application/x-mcdt"))
            {
                accepts_mcdt = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // The service never accepts chunked request bodies.
            return Parsed::Error(HttpError::Malformed(
                "transfer-encoding request bodies are not supported".into(),
            ));
        }
    }

    let body_start = head_end;
    if buf.len() < body_start + content_length {
        return Parsed::Partial;
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    Parsed::Complete {
        request: Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            body,
            wants_close,
            accepts_mcdt,
        },
        consumed: body_start + content_length,
    }
}

/// Index one past the `\r\n\r\n` (or `\n\n`) separating headers from
/// body, or `None` when the separator has not arrived yet.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // "\n\n" or "\n\r\n" both end the section.
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Splits the header section into lines, tolerating both `\r\n` and
/// bare `\n`, dropping the empty terminator line.
fn split_lines(head: &[u8]) -> impl Iterator<Item = &[u8]> {
    head.split(|&b| b == b'\n').filter_map(|line| {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            None
        } else {
            Some(line)
        }
    })
}

/// A fully rendered response body plus the headers that depend on it.
/// The wire bytes are produced by [`Response::render`] exactly once per
/// connection; coalesced duplicates share the same body buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds, set on load-shedding 503s.
    pub retry_after: Option<u64>,
}

/// Reason phrase for the status codes this service emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// text exposition format on `GET /metrics`).
    pub fn text(status: u16, body: String, content_type: &'static str) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type,
            retry_after: None,
        }
    }

    /// A structured error body: `{"error": <kind>, "message": <msg>}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": \"{}\", \"message\": \"{}\"}}\n",
                json_escape(kind),
                json_escape(message)
            ),
        )
    }

    /// The load-shedding response: 503 plus `Retry-After`. Always
    /// rendered with `Connection: close` — a shed connection must not
    /// be reused, or a pipelined successor would be half-answered.
    pub fn shed(retry_after_s: u64) -> Response {
        let mut r = Response::error(
            503,
            "overloaded",
            "service at capacity; retry after the indicated delay",
        );
        r.retry_after = Some(retry_after_s);
        r
    }

    /// Serializes status line, headers, and body into one wire buffer.
    /// `close` selects the `Connection` header; shed responses force it.
    pub fn render(&self, close: bool) -> Vec<u8> {
        let close = close || self.retry_after.is_some();
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        if let Some(s) = self.retry_after {
            head.push_str(&format!("Retry-After: {s}\r\n"));
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// The response head that opens a trace stream: chunked JSON-lines,
/// `Connection: close` (a chunked stream is this connection's last act).
pub fn stream_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
      Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        .to_vec()
}

/// The stream head for `Accept: application/x-mcdt` subscribers: same
/// chunked framing, but the chunks carry self-contained binary frames
/// (see `mcd_trace::frame`) instead of JSON lines.
pub fn stream_head_mcdt() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: application/x-mcdt\r\n\
      Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        .to_vec()
}

/// Wraps `data` as one HTTP chunk.
pub fn chunk(data: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating zero-length chunk.
pub fn chunk_end() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parsed::Complete { request, consumed } => (request, consumed),
            Parsed::Partial => panic!("unexpectedly partial"),
            Parsed::Error(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn parses_a_complete_request_and_reports_consumption() {
        let wire = b"POST /run?stream=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
        let (req, consumed) = complete(wire);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "stream=1");
        assert!(req.query_has("stream", "1"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, wire.len() - 5, "EXTRA stays for the pipeline");
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        assert!(matches!(parse_request(b"GET /hea"), Parsed::Partial));
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1\r\nHost: y\r\n"),
            Parsed::Partial
        ));
        // Headers complete but body still in flight.
        assert!(matches!(
            parse_request(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Parsed::Partial
        ));
    }

    #[test]
    fn connection_close_and_http10_are_honored() {
        let (req, _) = complete(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close);
        let (req, _) = complete(b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(req.wants_close, "HTTP/1.0 defaults to close");
        let (req, _) = complete(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close);
    }

    #[test]
    fn oversized_headers_are_431_and_oversized_bodies_413() {
        let long_line = vec![b'a'; MAX_HEADER_BYTES + 2];
        assert!(matches!(
            parse_request(&long_line),
            Parsed::Error(HttpError::HeadersTooLarge)
        ));
        let wire = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_request(wire.as_bytes()),
            Parsed::Error(HttpError::BodyTooLarge)
        ));
        assert_eq!(HttpError::HeadersTooLarge.response().status, 431);
        assert_eq!(HttpError::BodyTooLarge.response().status, 413);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for wire in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse_request(wire), Parsed::Error(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = complete(wire);
        assert_eq!(first.path, "/healthz");
        let (second, rest) = complete(&wire[consumed..]);
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + rest, wire.len());
    }

    #[test]
    fn render_emits_connection_header_and_shed_forces_close() {
        let ok = Response::json(200, "{}\n".to_string());
        let keep = String::from_utf8(ok.render(false)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        let closed = String::from_utf8(ok.render(true)).unwrap();
        assert!(closed.contains("Connection: close\r\n"), "{closed}");

        let shed = String::from_utf8(Response::shed(2).render(false)).unwrap();
        assert!(
            shed.contains("Connection: close\r\n"),
            "shed must never keep alive: {shed}"
        );
        assert!(shed.contains("Retry-After: 2\r\n"));
    }

    #[test]
    fn chunked_helpers_frame_correctly() {
        assert_eq!(chunk(b"abc"), b"3\r\nabc\r\n");
        assert_eq!(chunk_end(), b"0\r\n\r\n");
        let head = String::from_utf8(stream_head()).unwrap();
        assert!(head.contains("Transfer-Encoding: chunked"));
        assert!(head.ends_with("\r\n\r\n"));
        let bin = String::from_utf8(stream_head_mcdt()).unwrap();
        assert!(bin.contains("Content-Type: application/x-mcdt"));
        assert!(bin.contains("Transfer-Encoding: chunked"));
    }

    #[test]
    fn accept_header_selects_the_binary_stream_format() {
        let (req, _) = complete(b"GET /watch/k HTTP/1.1\r\nAccept: application/x-mcdt\r\n\r\n");
        assert!(req.accepts_mcdt);
        // A list with parameters still matches the exact media type.
        let (req, _) =
            complete(b"GET /watch/k HTTP/1.1\r\nAccept: text/html, application/x-mcdt\r\n\r\n");
        assert!(req.accepts_mcdt);
        let (req, _) = complete(b"GET /watch/k HTTP/1.1\r\nAccept: application/json\r\n\r\n");
        assert!(!req.accepts_mcdt);
        let (req, _) = complete(b"GET /watch/k HTTP/1.1\r\n\r\n");
        assert!(!req.accepts_mcdt, "no Accept header defaults to NDJSON");
    }

    #[test]
    fn escape_covers_quotes_controls_and_passthrough() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("l1\nl2\tt"), "l1\\nl2\\tt");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn error_responses_are_flat_json() {
        let r = Response::error(400, "bad-request", "missing \"experiment\"");
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"error\": \"bad-request\""));
        assert!(body.contains("missing \\\"experiment\\\""));
    }

    #[test]
    fn status_text_is_stable() {
        for s in [200, 400, 404, 405, 408, 413, 422, 431, 500, 503, 504] {
            assert_ne!(status_text(s), "Unknown");
        }
        assert_eq!(status_text(418), "Unknown");
    }
}
