//! Integral power regulator with adjustable gain, after Chen, Wardi and
//! Yalamanchili, *Power Regulation in High Performance Multicore
//! Processors* (arXiv:1709.04859).
//!
//! The regulator tracks a **power reference** with a pure integral law
//! whose gain is re-derived every interval from a measured estimate of
//! the plant's local slope:
//!
//! ```text
//! u_{k+1} = u_k + K_k (P_ref − P_k),   K_k = c / ĝ_k
//! ```
//!
//! where `u` is the frequency setting (in curve steps), `P_k` the
//! interval's measured power proxy, and `ĝ_k` a finite-difference
//! estimate of `dP/du` updated whenever the setting actually moved. The
//! adjustable gain is the paper's point: a fixed-gain integrator is
//! either sluggish at the top of the V/f curve or oscillatory at the
//! bottom, because the power-vs-step slope varies by an order of
//! magnitude across the curve. Estimating the slope online keeps the
//! loop's effective bandwidth constant over the whole operating range.
//!
//! The controller observes nothing the other schemes do not: its power
//! proxy is the operating point's normalized `V²f` scaled by the
//! interval's mean queue utilization (switching activity tracks
//! occupancy), so comparisons against PID and attack/decay isolate the
//! decision policy.

use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};

use crate::interval::IntervalFramer;

/// Integral power-regulator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralGainConfig {
    /// Interval length in committed instructions.
    pub interval_insts: u64,
    /// Power reference as a fraction of the maximum point's `V²f` at
    /// full utilization.
    pub p_ref: f64,
    /// Loop-bandwidth constant `c`: the fraction of the remaining power
    /// error closed per interval when the slope estimate is exact.
    pub bandwidth: f64,
    /// Floor on the slope estimate (steps are never treated as having
    /// less power authority than this), which bounds the gain.
    pub slope_min: f64,
}

impl IntegralGainConfig {
    /// Per-domain defaults: the INT domain regulates to a higher power
    /// budget than FP/LS, mirroring the occupancy references the other
    /// schemes use (6 vs 4 entries).
    ///
    /// # Panics
    ///
    /// Panics if `domain` is the front end.
    pub fn for_domain(domain: DomainId) -> Self {
        let p_ref = match domain {
            DomainId::Int => 0.30,
            DomainId::Fp | DomainId::Ls => 0.20,
            DomainId::FrontEnd => panic!("the front end is not DVFS-controlled"),
        };
        IntegralGainConfig {
            interval_insts: 10_000,
            p_ref,
            bandwidth: 0.5,
            slope_min: 5e-4,
        }
    }

    /// Overrides the interval length.
    ///
    /// # Panics
    ///
    /// Panics if `interval_insts` is zero.
    pub fn with_interval(mut self, interval_insts: u64) -> Self {
        assert!(interval_insts > 0, "interval length must be positive");
        self.interval_insts = interval_insts;
        self
    }

    /// Overrides the power reference.
    ///
    /// # Panics
    ///
    /// Panics unless `p_ref` is in `(0, 1]`.
    pub fn with_p_ref(mut self, p_ref: f64) -> Self {
        assert!(p_ref > 0.0 && p_ref <= 1.0, "p_ref must be in (0, 1]");
        self.p_ref = p_ref;
        self
    }
}

/// The adjustable-gain integral power regulator for one domain.
#[derive(Debug)]
pub struct IntegralGainController {
    cfg: IntegralGainConfig,
    framer: IntervalFramer,
    /// Continuous frequency setting in curve steps (carries fractions).
    setting: Option<f64>,
    /// Previous interval's measured power proxy and setting, for the
    /// finite-difference slope estimate.
    prev_power: Option<f64>,
    prev_setting: Option<f64>,
    /// Current `dP/du` slope estimate (power fraction per curve step).
    slope: f64,
    intervals: u64,
}

impl IntegralGainController {
    /// Builds a controller with explicit parameters.
    pub fn new(cfg: IntegralGainConfig) -> Self {
        IntegralGainController {
            framer: IntervalFramer::new(cfg.interval_insts),
            // Initial slope: the analytic slope of normalized V²f at the
            // top of the default curve (≈ 3 power-fractions per full
            // range, over 320 steps) at half utilization.
            slope: 1.5 / 320.0,
            cfg,
            setting: None,
            prev_power: None,
            prev_setting: None,
            intervals: 0,
        }
    }

    /// Builds the default configuration for `domain`.
    pub fn for_domain(domain: DomainId) -> Self {
        IntegralGainController::new(IntegralGainConfig::for_domain(domain))
    }

    /// The controller's configuration.
    pub fn config(&self) -> &IntegralGainConfig {
        &self.cfg
    }

    /// Completed decision intervals so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

impl DvfsController for IntegralGainController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let summary = self.framer.observe(sample.occupancy as f64, ctx.retired)?;
        self.intervals += 1;

        // Power proxy: normalized V²f at the current point, scaled by
        // the interval's mean utilization (activity factor).
        let max = ctx.curve.max();
        let point = ctx.curve.point(ctx.current);
        let v_rel = point.voltage.as_volts() / max.voltage.as_volts();
        let f_rel = point.frequency.as_mhz() / max.frequency.as_mhz();
        let util = (summary.mean_occupancy / sample.capacity as f64).clamp(0.0, 1.0);
        let power = v_rel * v_rel * f_rel * util;

        let setting = *self.setting.get_or_insert(ctx.current.0 as f64);

        // Re-estimate the plant slope from the last interval's move,
        // whenever the setting moved enough for the quotient to mean
        // anything. Slope stays positive: more frequency is never less
        // power.
        if let (Some(p0), Some(u0)) = (self.prev_power, self.prev_setting) {
            let du = setting - u0;
            if du.abs() >= 1.0 {
                let g = (power - p0) / du;
                if g > self.cfg.slope_min {
                    self.slope = g;
                }
            }
        }
        self.prev_power = Some(power);
        self.prev_setting = Some(setting);

        // Integral law with the adjusted gain, clamped so one interval
        // never jumps more than a quarter of the curve (the estimate can
        // be briefly stale right after a workload shift).
        let range = ctx.curve.max_index().0 as f64;
        let gain = (self.cfg.bandwidth / self.slope.max(self.cfg.slope_min)).min(range / 4.0);
        let error = self.cfg.p_ref - power;
        let next = (setting + gain * error).clamp(0.0, range);
        self.setting = Some(next);

        let target = mcd_power::OpIndex(next.round() as u16);
        (target != ctx.current).then_some(DvfsAction::Set(target))
    }

    fn name(&self) -> &'static str {
        "integral-gain"
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.framer.save_state(w);
        for v in [self.setting, self.prev_power, self.prev_setting] {
            w.put_bool(v.is_some());
            if let Some(v) = v {
                w.put_f64(v);
            }
        }
        w.put_f64(self.slope);
        w.put_u64(self.intervals);
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.framer.load_state(r)?;
        for slot in [
            &mut self.setting,
            &mut self.prev_power,
            &mut self.prev_setting,
        ] {
            *slot = if r.take_bool()? {
                Some(r.take_f64()?)
            } else {
                None
            };
        }
        self.slope = r.take_f64()?;
        self.intervals = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{OpIndex, TimePs, VfCurve};

    struct Harness {
        curve: VfCurve,
        retired: u64,
        now: TimePs,
        current: OpIndex,
        ctrl: IntegralGainController,
    }

    impl Harness {
        fn new(ctrl: IntegralGainController) -> Self {
            let curve = VfCurve::mcd_default();
            Harness {
                current: curve.max_index(),
                curve,
                retired: 0,
                now: TimePs::ZERO,
                ctrl,
            }
        }

        /// Runs one 10k-instruction interval at constant occupancy.
        fn interval(&mut self, occupancy: u32) -> Option<DvfsAction> {
            let mut out = None;
            for _ in 0..10 {
                self.retired += 1_000;
                self.now += TimePs::from_ns(4);
                let ctx = ControllerCtx {
                    now: self.now,
                    domain: DomainId::Int,
                    current: self.current,
                    curve: &self.curve,
                    in_transition: false,
                    single_step_time: TimePs::from_ns(172),
                    sample_period: TimePs::from_ns(4),
                    retired: self.retired,
                };
                if let Some(a) = self.ctrl.on_sample(
                    &ctx,
                    QueueSample {
                        occupancy,
                        capacity: 20,
                    },
                ) {
                    self.current = a.resolve(self.current, &self.curve);
                    out = Some(a);
                }
            }
            out
        }
    }

    #[test]
    fn over_budget_regulates_downward() {
        // Full speed at high utilization is far above the 0.30 budget.
        let mut h = Harness::new(IntegralGainController::for_domain(DomainId::Int));
        let start = h.current;
        for _ in 0..30 {
            h.interval(16);
        }
        assert!(h.current < start, "stayed at {:?}", h.current);
    }

    #[test]
    fn idle_domain_rails_at_full_responsiveness() {
        let mut h = Harness::new(IntegralGainController::for_domain(DomainId::Int));
        for _ in 0..200 {
            h.interval(0);
        }
        // Zero utilization means zero proxy power: the budget can never
        // be met, and the integrator rails at the top of the curve
        // (maximum responsiveness costs no measured power) — the same
        // degenerate fixture every power regulator has, pinned here.
        assert_eq!(h.current, h.curve.max_index());
    }

    #[test]
    fn converges_without_oscillating_at_the_bottom() {
        // The adjustable gain is what keeps the loop from ringing where
        // the V²f slope is shallow: settle, then require the setting to
        // stay within a tight band.
        let mut h = Harness::new(IntegralGainController::for_domain(DomainId::Fp));
        for _ in 0..100 {
            h.interval(8);
        }
        let settled = h.current;
        let mut lo = settled;
        let mut hi = settled;
        for _ in 0..50 {
            h.interval(8);
            lo = lo.min(h.current);
            hi = hi.max(h.current);
        }
        assert!(
            hi.0 - lo.0 <= 24,
            "rang between {lo:?} and {hi:?} after settling"
        );
    }

    #[test]
    fn gain_is_bounded_through_workload_shifts() {
        let mut h = Harness::new(IntegralGainController::for_domain(DomainId::Int));
        for _ in 0..20 {
            h.interval(16);
        }
        let before = h.current;
        h.interval(1); // collapse in utilization: power proxy craters
        let after = h.current;
        let moved = (after.0 as i32 - before.0 as i32).unsigned_abs();
        assert!(moved <= 80, "one interval moved {moved} steps");
    }

    #[test]
    fn reports_name() {
        assert_eq!(
            IntegralGainController::for_domain(DomainId::Ls).name(),
            "integral-gain"
        );
    }

    #[test]
    fn state_round_trips_through_snapshot() {
        let mut h = Harness::new(IntegralGainController::for_domain(DomainId::Int));
        for _ in 0..7 {
            h.interval(13);
        }
        let mut w = mcd_snap::SnapWriter::new();
        h.ctrl.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = IntegralGainController::for_domain(DomainId::Int);
        let mut r = mcd_snap::SnapReader::new(&bytes);
        restored.load_state(&mut r).expect("round-trip");
        r.finish().expect("no trailing bytes");
        // Both controllers must issue identical decisions from here on.
        let mut other = Harness::new(restored);
        other.current = h.current;
        other.retired = h.retired;
        other.now = h.now;
        for occ in [13, 2, 18, 9, 0, 16] {
            assert_eq!(h.interval(occ), other.interval(occ), "diverged at {occ}");
        }
    }
}
