//! Fixed-interval framing shared by the baseline schemes.
//!
//! Both prior schemes frame their decisions on a fixed number of committed
//! instructions (10 000 in the original papers). The framer accumulates
//! queue samples and reports the interval's mean occupancy when the
//! instruction boundary passes.

/// Accumulates queue samples over fixed instruction intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalFramer {
    interval_insts: u64,
    next_boundary: u64,
    sum: f64,
    n: u64,
}

/// Summary of one completed interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSummary {
    /// Mean queue occupancy over the interval's samples.
    pub mean_occupancy: f64,
    /// Number of samples that fell into the interval.
    pub samples: u64,
}

impl IntervalFramer {
    /// Creates a framer with the given interval length in committed
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval_insts` is zero.
    pub fn new(interval_insts: u64) -> Self {
        assert!(interval_insts > 0, "interval length must be positive");
        IntervalFramer {
            interval_insts,
            next_boundary: interval_insts,
            sum: 0.0,
            n: 0,
        }
    }

    /// The configured interval length.
    pub fn interval_insts(&self) -> u64 {
        self.interval_insts
    }

    /// Feeds one sample (occupancy + the current retired-instruction
    /// count). Returns the completed interval's summary when the boundary
    /// has passed, `None` otherwise.
    pub fn observe(&mut self, occupancy: f64, retired: u64) -> Option<IntervalSummary> {
        self.sum += occupancy;
        self.n += 1;
        if retired < self.next_boundary {
            return None;
        }
        let summary = IntervalSummary {
            mean_occupancy: self.sum / self.n as f64,
            samples: self.n,
        };
        self.sum = 0.0;
        self.n = 0;
        // Skip ahead if the program raced through several intervals.
        while self.next_boundary <= retired {
            self.next_boundary += self.interval_insts;
        }
        Some(summary)
    }

    /// Serializes the in-flight interval, led by the configured interval
    /// length so a restore into a differently-framed controller fails by
    /// name instead of silently adopting the donor's boundaries.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u64(self.interval_insts);
        w.put_u64(self.next_boundary);
        w.put_f64(self.sum);
        w.put_u64(self.n);
    }

    /// Restores state captured by [`IntervalFramer::save_state`].
    ///
    /// The engine's snapshot header hashes the *machine* configuration,
    /// not the controllers attached after construction — so without this
    /// check, a snapshot taken under one interval length would restore
    /// into a controller configured with another and keep the donor's
    /// `next_boundary`, silently misframing every interval from then on
    /// (the integrator state would be bit-exact but mean the wrong
    /// thing). Mismatched interval lengths are rejected as
    /// [`mcd_snap::SnapError::Mismatch`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        r.expect_u64(self.interval_insts, "controller interval length")?;
        self.next_boundary = r.take_u64()?;
        self.sum = r.take_f64()?;
        self.n = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_summary_before_boundary() {
        let mut f = IntervalFramer::new(100);
        assert_eq!(f.observe(5.0, 10), None);
        assert_eq!(f.observe(7.0, 50), None);
    }

    #[test]
    fn summary_at_boundary_averages_samples() {
        let mut f = IntervalFramer::new(100);
        f.observe(4.0, 30);
        f.observe(6.0, 60);
        let s = f.observe(8.0, 100).expect("boundary crossed");
        assert_eq!(s.mean_occupancy, 6.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn next_interval_starts_fresh() {
        let mut f = IntervalFramer::new(100);
        f.observe(10.0, 100).expect("first interval");
        assert_eq!(f.observe(2.0, 150), None);
        let s = f.observe(4.0, 205).expect("second interval");
        assert_eq!(s.mean_occupancy, 3.0);
    }

    #[test]
    fn fast_programs_skip_boundaries_cleanly() {
        let mut f = IntervalFramer::new(100);
        let s = f.observe(5.0, 350).expect("boundary far behind");
        assert_eq!(s.samples, 1);
        // Next boundary is 400, not 200.
        assert_eq!(f.observe(5.0, 399), None);
        assert!(f.observe(5.0, 400).is_some());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_panics() {
        let _ = IntervalFramer::new(0);
    }

    #[test]
    fn state_round_trips_mid_interval() {
        let mut f = IntervalFramer::new(100);
        f.observe(4.0, 30);
        f.observe(6.0, 60);
        let mut w = mcd_snap::SnapWriter::new();
        f.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut g = IntervalFramer::new(100);
        let mut r = mcd_snap::SnapReader::new(&bytes);
        g.load_state(&mut r).expect("same interval restores");
        assert_eq!(f, g);
        let s = g.observe(8.0, 100).expect("boundary crossed");
        assert_eq!(s.mean_occupancy, 6.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn restore_into_a_different_interval_fails_by_name() {
        let f = IntervalFramer::new(10_000);
        let mut w = mcd_snap::SnapWriter::new();
        f.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut g = IntervalFramer::new(5_000);
        let mut r = mcd_snap::SnapReader::new(&bytes);
        let err = g.load_state(&mut r).expect_err("interval must gate");
        assert!(
            err.to_string().contains("controller interval length"),
            "unexpected error: {err}"
        );
    }
}
