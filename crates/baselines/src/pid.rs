//! The PID fixed-interval controller of Wu et al. (ASPLOS 2004) — the
//! paper's reference \[23\].
//!
//! Per fixed interval the controller computes the occupancy error
//! `e = q̄ − q_ref` and updates the frequency setting with an incremental
//! (velocity-form) PID law:
//!
//! ```text
//! Δu_k = K_P (e_k − e_{k−1}) + K_I e_k + K_D (e_k − 2e_{k−1} + e_{k−2})
//! ```
//!
//! A queue above its reference means the domain is too slow (frequency
//! rises); below, too fast (frequency falls). The incremental form has no
//! integral windup and maps directly onto hardware
//! multipliers — the very hardware this paper's adaptive scheme avoids.

use mcd_power::OpIndex;
use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};

use crate::interval::IntervalFramer;

/// PID controller parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PidConfig {
    /// Interval length in committed instructions (10 000 in \[23\]).
    pub interval_insts: u64,
    /// Reference queue occupancy.
    pub q_ref: f64,
    /// Proportional gain, in curve steps per occupancy entry.
    pub kp: f64,
    /// Integral gain, in curve steps per occupancy entry per interval.
    pub ki: f64,
    /// Derivative gain, in curve steps per occupancy entry.
    pub kd: f64,
}

impl PidConfig {
    /// The per-domain defaults used in the reproduction: `q_ref` matches
    /// the adaptive scheme (6 INT, 4 FP/LS) so the two schemes pursue the
    /// same operating point, with gains tuned for stable tracking on
    /// 10 k-instruction intervals.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is the front end.
    pub fn for_domain(domain: DomainId) -> Self {
        let q_ref = match domain {
            DomainId::Int => 6.0,
            DomainId::Fp | DomainId::Ls => 4.0,
            DomainId::FrontEnd => panic!("the front end is not DVFS-controlled"),
        };
        PidConfig {
            interval_insts: 10_000,
            q_ref,
            kp: 6.0,
            ki: 2.0,
            kd: 1.0,
        }
    }

    /// Overrides the interval length (the paper's closing study sweeps
    /// this).
    ///
    /// # Panics
    ///
    /// Panics if `interval_insts` is zero.
    pub fn with_interval(mut self, interval_insts: u64) -> Self {
        assert!(interval_insts > 0, "interval length must be positive");
        self.interval_insts = interval_insts;
        self
    }

    /// Overrides the PID gains.
    pub fn with_gains(mut self, kp: f64, ki: f64, kd: f64) -> Self {
        self.kp = kp;
        self.ki = ki;
        self.kd = kd;
        self
    }
}

/// The PID DVFS controller for one domain.
#[derive(Debug)]
pub struct PidController {
    cfg: PidConfig,
    framer: IntervalFramer,
    e1: Option<f64>,
    e2: Option<f64>,
    /// Continuous frequency setting in curve steps (carries fractions).
    setting: Option<f64>,
    intervals: u64,
}

impl PidController {
    /// Builds a controller with explicit parameters.
    pub fn new(cfg: PidConfig) -> Self {
        PidController {
            framer: IntervalFramer::new(cfg.interval_insts),
            cfg,
            e1: None,
            e2: None,
            setting: None,
            intervals: 0,
        }
    }

    /// Builds the default configuration for `domain`.
    pub fn for_domain(domain: DomainId) -> Self {
        PidController::new(PidConfig::for_domain(domain))
    }

    /// The controller's configuration.
    pub fn config(&self) -> &PidConfig {
        &self.cfg
    }

    /// Completed decision intervals so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

impl DvfsController for PidController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let summary = self.framer.observe(sample.occupancy as f64, ctx.retired)?;
        self.intervals += 1;

        let e = summary.mean_occupancy - self.cfg.q_ref;
        let e1 = self.e1.unwrap_or(e);
        let e2 = self.e2.unwrap_or(e1);
        self.e2 = Some(e1);
        self.e1 = Some(e);

        let du = self.cfg.kp * (e - e1) + self.cfg.ki * e + self.cfg.kd * (e - 2.0 * e1 + e2);
        let setting = self.setting.get_or_insert(ctx.current.0 as f64);
        *setting = (*setting + du).clamp(0.0, ctx.curve.max_index().0 as f64);
        let target = OpIndex(setting.round() as u16);
        if target == ctx.current {
            None
        } else {
            Some(DvfsAction::Set(target))
        }
    }

    fn name(&self) -> &'static str {
        "pid"
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.framer.save_state(w);
        for v in [self.e1, self.e2, self.setting] {
            w.put_bool(v.is_some());
            if let Some(v) = v {
                w.put_f64(v);
            }
        }
        w.put_u64(self.intervals);
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.framer.load_state(r)?;
        for slot in [&mut self.e1, &mut self.e2, &mut self.setting] {
            *slot = if r.take_bool()? {
                Some(r.take_f64()?)
            } else {
                None
            };
        }
        self.intervals = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{TimePs, VfCurve};

    struct Harness {
        curve: VfCurve,
        retired: u64,
        now: TimePs,
        current: OpIndex,
        ctrl: PidController,
    }

    impl Harness {
        fn new(ctrl: PidController) -> Self {
            let curve = VfCurve::mcd_default();
            Harness {
                current: curve.max_index(),
                curve,
                retired: 0,
                now: TimePs::ZERO,
                ctrl,
            }
        }

        fn interval(&mut self, occupancy: u32) -> Option<DvfsAction> {
            let per = self.ctrl.config().interval_insts / 10;
            let mut out = None;
            for _ in 0..10 {
                self.retired += per;
                self.now += TimePs::from_ns(4);
                let ctx = ControllerCtx {
                    now: self.now,
                    domain: DomainId::Fp,
                    current: self.current,
                    curve: &self.curve,
                    in_transition: false,
                    single_step_time: TimePs::from_ns(172),
                    sample_period: TimePs::from_ns(4),
                    retired: self.retired,
                };
                if let Some(a) = self.ctrl.on_sample(
                    &ctx,
                    QueueSample {
                        occupancy,
                        capacity: 16,
                    },
                ) {
                    self.current = a.resolve(self.current, &self.curve);
                    out = Some(a);
                }
            }
            out
        }
    }

    #[test]
    fn at_reference_no_movement() {
        let mut h = Harness::new(PidController::for_domain(DomainId::Fp));
        for _ in 0..50 {
            h.interval(4); // e = 0
        }
        assert_eq!(h.current, h.curve.max_index());
    }

    #[test]
    fn empty_queue_integrates_down_to_minimum() {
        let mut h = Harness::new(PidController::for_domain(DomainId::Fp));
        for _ in 0..200 {
            h.interval(0); // e = −4 persistently
        }
        assert_eq!(h.current, OpIndex(0));
    }

    #[test]
    fn overfull_queue_drives_back_up() {
        let mut h = Harness::new(PidController::for_domain(DomainId::Fp));
        h.current = OpIndex(0);
        for _ in 0..200 {
            h.interval(16); // e = +12 persistently
        }
        assert_eq!(h.current, h.curve.max_index());
    }

    #[test]
    fn integral_speed_scales_with_error() {
        let drop_after = |occ: u32, n: usize| {
            let mut h = Harness::new(PidController::for_domain(DomainId::Fp));
            for _ in 0..n {
                h.interval(occ);
            }
            h.curve.max_index().0 - h.current.0
        };
        let small_err = drop_after(3, 10); // e = −1
        let large_err = drop_after(0, 10); // e = −4
        assert!(
            large_err > small_err * 2,
            "large {large_err} vs small {small_err}"
        );
    }

    #[test]
    fn shorter_intervals_react_sooner_in_instructions() {
        // Same persistent error; count *instructions* until first action.
        let insts_to_first_action = |interval: u64| {
            let cfg = PidConfig::for_domain(DomainId::Fp).with_interval(interval);
            let mut h = Harness::new(PidController::new(cfg));
            let mut insts = 0;
            loop {
                insts += interval; // one interval per call below
                if h.interval(0).is_some() {
                    return insts;
                }
                assert!(insts < 10_000_000);
            }
        };
        assert!(insts_to_first_action(2_500) < insts_to_first_action(25_000));
    }

    #[test]
    fn no_action_while_setting_rounds_to_current() {
        let mut h = Harness::new(PidController::new(
            PidConfig::for_domain(DomainId::Fp).with_gains(0.01, 0.01, 0.0),
        ));
        // Tiny gains: first interval moves the setting by < 0.5 steps.
        assert_eq!(h.interval(5), None);
    }

    #[test]
    fn reports_name() {
        assert_eq!(PidController::for_domain(DomainId::Ls).name(), "pid");
    }

    /// Regression: the integrator state (`setting`, the error history,
    /// and the in-flight interval frame) must survive the engine's
    /// controller sub-blob. Snapshot the machine *mid-transient and
    /// mid-interval* — while the setting carries a fraction and the
    /// framer holds partial sums — restore into a fresh machine, and
    /// byte-compare both the continued trace stream and the final
    /// result against an uninterrupted run.
    #[test]
    fn snapshot_mid_transient_continues_byte_identically() {
        use mcd_sim::{Machine, SimConfig, VecSink};
        use mcd_workloads::{synthetic, TraceGenerator};

        // A square wave shorter than the PID interval keeps the
        // controller permanently in transient: every interval lands on a
        // different blend of burst and quiet.
        let spec = synthetic::square_wave(6_000, 0.5);
        let build = || {
            Machine::new(
                SimConfig::default().with_traces(),
                TraceGenerator::new(&spec, 24_000, 3),
            )
            .with_controllers(|d| Box::new(PidController::for_domain(d)))
        };

        let mut whole_sink = VecSink::new();
        let whole = build().run_traced(&mut whole_sink);

        let mut seg_sink = VecSink::new();
        let mut m = build();
        // Boundaries deliberately avoid the 10k interval frame.
        for b in [3_500u64, 7_321, 13_333] {
            let done = m
                .try_advance_traced(b, &mut seg_sink)
                .expect("no divergence");
            assert!(!done, "run pauses at {b}");
            let snapshot = m.snapshot();
            m = build();
            m.restore(&snapshot)
                .expect("mid-transient snapshot restores");
        }
        let done = m
            .try_advance_traced(u64::MAX, &mut seg_sink)
            .expect("no divergence");
        assert!(done);
        let segmented = m.finish_traced(&mut seg_sink);

        assert_eq!(
            format!("{whole:?}"),
            format!("{segmented:?}"),
            "results diverged across the snapshot"
        );
        let a: Vec<String> = whole_sink
            .into_events()
            .iter()
            .map(|e| e.to_json())
            .collect();
        let b: Vec<String> = seg_sink.into_events().iter().map(|e| e.to_json()).collect();
        assert_eq!(a, b, "trace streams diverged across the snapshot");
    }
}
