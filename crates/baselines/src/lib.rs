//! Fixed-interval DVFS baselines for MCD processors.
//!
//! The HPCA 2005 paper compares its adaptive controller against the two
//! best-known prior online DVFS schemes for MCD processors, both of which
//! frame decisions on a **fixed interval**:
//!
//! * [`AttackDecayController`] — the attack/decay heuristic of Semeraro et
//!   al. (MICRO 2002), the paper's reference \[9\]: per interval, a large
//!   change in average queue utilization triggers a proportional "attack"
//!   step; otherwise the frequency "decays" slowly downward.
//! * [`PidController`] — the formal PID controller of Wu et al.
//!   (ASPLOS 2004), the paper's reference \[23\]: per interval, a PID law on
//!   the average-occupancy error computes a new frequency setting.
//!
//! Two further baselines map the design space the wider literature
//! explores, for the controller bake-off matrix:
//!
//! * [`IntegralGainController`] — the adjustable-gain integral power
//!   regulator of Chen, Wardi and Yalamanchili (arXiv:1709.04859).
//! * [`FeedbackDvsController`] — the control-theoretic feedback DVS
//!   scheme of Xia et al. (arXiv:0806.0132): PI on utilization with a
//!   deadband and integrator anti-windup.
//!
//! All observe exactly the same queue samples as the adaptive scheme, so
//! comparisons isolate the *decision policy*. [`FixedOperatingPoint`] pins
//! a domain to one point (for ablations and the full-speed baseline).
//!
//! # Example
//!
//! ```
//! use mcd_baselines::PidController;
//! use mcd_sim::{Machine, SimConfig};
//! use mcd_workloads::{registry, TraceGenerator};
//!
//! let spec = registry::by_name("gzip").expect("known benchmark");
//! let machine = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 10_000, 1))
//!     .with_controllers(|d| Box::new(PidController::for_domain(d)));
//! let result = machine.run();
//! assert_eq!(result.instructions, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_decay;
pub mod feedback_dvs;
pub mod fixed;
pub mod integral;
pub mod interval;
pub mod pid;

pub use attack_decay::{AttackDecayConfig, AttackDecayController};
pub use feedback_dvs::{FeedbackDvsConfig, FeedbackDvsController};
pub use fixed::FixedOperatingPoint;
pub use integral::{IntegralGainConfig, IntegralGainController};
pub use interval::IntervalFramer;
pub use pid::{PidConfig, PidController};
