//! Fixed-interval DVFS baselines for MCD processors.
//!
//! The HPCA 2005 paper compares its adaptive controller against the two
//! best-known prior online DVFS schemes for MCD processors, both of which
//! frame decisions on a **fixed interval**:
//!
//! * [`AttackDecayController`] — the attack/decay heuristic of Semeraro et
//!   al. (MICRO 2002), the paper's reference \[9\]: per interval, a large
//!   change in average queue utilization triggers a proportional "attack"
//!   step; otherwise the frequency "decays" slowly downward.
//! * [`PidController`] — the formal PID controller of Wu et al.
//!   (ASPLOS 2004), the paper's reference \[23\]: per interval, a PID law on
//!   the average-occupancy error computes a new frequency setting.
//!
//! Both observe exactly the same queue samples as the adaptive scheme, so
//! comparisons isolate the *decision policy*. [`FixedOperatingPoint`] pins
//! a domain to one point (for ablations and the full-speed baseline).
//!
//! # Example
//!
//! ```
//! use mcd_baselines::PidController;
//! use mcd_sim::{Machine, SimConfig};
//! use mcd_workloads::{registry, TraceGenerator};
//!
//! let spec = registry::by_name("gzip").expect("known benchmark");
//! let machine = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, 10_000, 1))
//!     .with_controllers(|d| Box::new(PidController::for_domain(d)));
//! let result = machine.run();
//! assert_eq!(result.instructions, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_decay;
pub mod fixed;
pub mod interval;
pub mod pid;

pub use attack_decay::{AttackDecayConfig, AttackDecayController};
pub use fixed::FixedOperatingPoint;
pub use interval::IntervalFramer;
pub use pid::{PidConfig, PidController};
