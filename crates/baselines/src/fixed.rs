//! Pinning a domain at a fixed operating point (ablation helper).

use mcd_power::OpIndex;
use mcd_sim::{ControllerCtx, DvfsAction, DvfsController, QueueSample};

/// A "controller" that pins its domain at one operating point forever.
///
/// Useful for static-scaling ablations and oracle studies; the full-speed
/// baseline itself needs no controller at all (domains start at maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedOperatingPoint(pub OpIndex);

impl DvfsController for FixedOperatingPoint {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, _: QueueSample) -> Option<DvfsAction> {
        (ctx.current != self.0).then_some(DvfsAction::Set(self.0))
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{TimePs, VfCurve};
    use mcd_sim::DomainId;

    #[test]
    fn requests_target_until_reached_then_stays_silent() {
        let curve = VfCurve::mcd_default();
        let mut c = FixedOperatingPoint(OpIndex(40));
        let ctx = |current: OpIndex| ControllerCtx {
            now: TimePs::ZERO,
            domain: DomainId::Int,
            current,
            curve: &curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired: 0,
        };
        let s = QueueSample {
            occupancy: 3,
            capacity: 20,
        };
        assert_eq!(
            c.on_sample(&ctx(curve.max_index()), s),
            Some(DvfsAction::Set(OpIndex(40)))
        );
        assert_eq!(c.on_sample(&ctx(OpIndex(40)), s), None);
        assert_eq!(c.name(), "fixed");
    }
}
