//! Control-theoretic DVS feedback controller, after Xia, Sun, Dong and
//! Wang, *Control-theoretic dynamic voltage scaling for embedded
//! controllers* (arXiv:0806.0132).
//!
//! Where the PID baseline regulates an **absolute occupancy** toward a
//! reference entry count, this scheme closes the loop on **utilization**
//! — occupancy as a fraction of queue capacity — with a PI law, a
//! deadband, and integrator anti-windup:
//!
//! ```text
//! e_k = ū_k − U_ref
//! I_k = clamp(I_{k−1} + e_k, ±I_max)          (anti-windup)
//! Δf  = (K_P e_k + K_I I_k) · range           (skipped when |e_k| ≤ δ)
//! ```
//!
//! The three control-theoretic ingredients are the point of the
//! baseline, and each earns its keep on the adversarial workloads: the
//! deadband keeps a near-reference domain from dithering between
//! adjacent operating points (regulator energy), the anti-windup clamp
//! bounds the overshoot after a long saturated stretch (a storm phase
//! pinning the queue empty or full), and the utilization framing makes
//! the gains meaningful as fractions-of-range rather than entries.

use mcd_power::OpIndex;
use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};

use crate::interval::IntervalFramer;

/// Feedback-DVS controller parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackDvsConfig {
    /// Interval length in committed instructions.
    pub interval_insts: u64,
    /// Utilization setpoint (fraction of queue capacity).
    pub u_ref: f64,
    /// Proportional gain, in fractions of the curve range per unit
    /// utilization error.
    pub kp: f64,
    /// Integral gain, in fractions of the curve range per unit
    /// accumulated error.
    pub ki: f64,
    /// Deadband half-width: utilization errors at or below this take no
    /// action (and leave the integrator untouched).
    pub deadband: f64,
    /// Anti-windup clamp on the accumulated error.
    pub i_max: f64,
}

impl FeedbackDvsConfig {
    /// Per-domain defaults: setpoints chosen so the scheme pursues the
    /// same operating region as the adaptive and PID schemes (reference
    /// occupancy over typical queue capacity).
    ///
    /// # Panics
    ///
    /// Panics if `domain` is the front end.
    pub fn for_domain(domain: DomainId) -> Self {
        let u_ref = match domain {
            DomainId::Int => 0.30,
            DomainId::Fp | DomainId::Ls => 0.25,
            DomainId::FrontEnd => panic!("the front end is not DVFS-controlled"),
        };
        FeedbackDvsConfig {
            interval_insts: 10_000,
            u_ref,
            kp: 1.2,
            ki: 0.4,
            deadband: 0.02,
            i_max: 2.0,
        }
    }

    /// Overrides the interval length.
    ///
    /// # Panics
    ///
    /// Panics if `interval_insts` is zero.
    pub fn with_interval(mut self, interval_insts: u64) -> Self {
        assert!(interval_insts > 0, "interval length must be positive");
        self.interval_insts = interval_insts;
        self
    }

    /// Overrides the PI gains.
    pub fn with_gains(mut self, kp: f64, ki: f64) -> Self {
        self.kp = kp;
        self.ki = ki;
        self
    }
}

/// The control-theoretic feedback-DVS controller for one domain.
#[derive(Debug)]
pub struct FeedbackDvsController {
    cfg: FeedbackDvsConfig,
    framer: IntervalFramer,
    /// Accumulated (clamped) utilization error.
    integral: f64,
    /// Continuous frequency setting in curve steps (carries fractions).
    setting: Option<f64>,
    intervals: u64,
}

impl FeedbackDvsController {
    /// Builds a controller with explicit parameters.
    pub fn new(cfg: FeedbackDvsConfig) -> Self {
        FeedbackDvsController {
            framer: IntervalFramer::new(cfg.interval_insts),
            cfg,
            integral: 0.0,
            setting: None,
            intervals: 0,
        }
    }

    /// Builds the default configuration for `domain`.
    pub fn for_domain(domain: DomainId) -> Self {
        FeedbackDvsController::new(FeedbackDvsConfig::for_domain(domain))
    }

    /// The controller's configuration.
    pub fn config(&self) -> &FeedbackDvsConfig {
        &self.cfg
    }

    /// Completed decision intervals so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

impl DvfsController for FeedbackDvsController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let summary = self.framer.observe(sample.occupancy as f64, ctx.retired)?;
        self.intervals += 1;

        let util = (summary.mean_occupancy / sample.capacity as f64).clamp(0.0, 1.0);
        let e = util - self.cfg.u_ref;
        if e.abs() <= self.cfg.deadband {
            return None;
        }
        self.integral = (self.integral + e).clamp(-self.cfg.i_max, self.cfg.i_max);

        let range = ctx.curve.max_index().0 as f64;
        let du = (self.cfg.kp * e + self.cfg.ki * self.integral) * range;
        let setting = self.setting.get_or_insert(ctx.current.0 as f64);
        *setting = (*setting + du).clamp(0.0, range);
        let target = OpIndex(setting.round() as u16);
        (target != ctx.current).then_some(DvfsAction::Set(target))
    }

    fn name(&self) -> &'static str {
        "feedback-dvs"
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.framer.save_state(w);
        w.put_f64(self.integral);
        w.put_bool(self.setting.is_some());
        if let Some(s) = self.setting {
            w.put_f64(s);
        }
        w.put_u64(self.intervals);
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.framer.load_state(r)?;
        self.integral = r.take_f64()?;
        self.setting = if r.take_bool()? {
            Some(r.take_f64()?)
        } else {
            None
        };
        self.intervals = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{TimePs, VfCurve};

    struct Harness {
        curve: VfCurve,
        retired: u64,
        now: TimePs,
        current: OpIndex,
        ctrl: FeedbackDvsController,
    }

    impl Harness {
        fn new(ctrl: FeedbackDvsController) -> Self {
            let curve = VfCurve::mcd_default();
            Harness {
                current: curve.max_index(),
                curve,
                retired: 0,
                now: TimePs::ZERO,
                ctrl,
            }
        }

        fn interval(&mut self, occupancy: u32) -> Option<DvfsAction> {
            let mut out = None;
            for _ in 0..10 {
                self.retired += 1_000;
                self.now += TimePs::from_ns(4);
                let ctx = ControllerCtx {
                    now: self.now,
                    domain: DomainId::Fp,
                    current: self.current,
                    curve: &self.curve,
                    in_transition: false,
                    single_step_time: TimePs::from_ns(172),
                    sample_period: TimePs::from_ns(4),
                    retired: self.retired,
                };
                if let Some(a) = self.ctrl.on_sample(
                    &ctx,
                    QueueSample {
                        occupancy,
                        capacity: 16,
                    },
                ) {
                    self.current = a.resolve(self.current, &self.curve);
                    out = Some(a);
                }
            }
            out
        }
    }

    #[test]
    fn inside_the_deadband_no_action() {
        let mut h = Harness::new(FeedbackDvsController::for_domain(DomainId::Fp));
        for _ in 0..50 {
            // u_ref = 0.25 with capacity 16 → 4 entries; e = 0.
            assert_eq!(h.interval(4), None);
        }
        assert_eq!(h.current, h.curve.max_index());
        assert_eq!(h.ctrl.intervals(), 50);
    }

    #[test]
    fn empty_queue_drives_to_minimum() {
        let mut h = Harness::new(FeedbackDvsController::for_domain(DomainId::Fp));
        for _ in 0..60 {
            h.interval(0);
        }
        assert_eq!(h.current, OpIndex(0));
    }

    #[test]
    fn overfull_queue_recovers_to_maximum() {
        let mut h = Harness::new(FeedbackDvsController::for_domain(DomainId::Fp));
        h.current = OpIndex(0);
        for _ in 0..60 {
            h.interval(16);
        }
        assert_eq!(h.current, h.curve.max_index());
    }

    #[test]
    fn anti_windup_bounds_the_turnaround() {
        // A long saturated stretch must not wind the integrator so far
        // that the turnaround takes forever: after 100 empty intervals,
        // a persistently overfull queue recovers within a bounded number
        // of intervals.
        let mut h = Harness::new(FeedbackDvsController::for_domain(DomainId::Fp));
        for _ in 0..100 {
            h.interval(0);
        }
        assert_eq!(h.current, OpIndex(0));
        let mut recovered = None;
        for k in 0..40 {
            h.interval(16);
            if h.current == h.curve.max_index() {
                recovered = Some(k);
                break;
            }
        }
        let k = recovered.expect("must recover within 40 intervals");
        assert!(k <= 20, "took {k} intervals to turn around");
    }

    #[test]
    fn utilization_framing_ignores_capacity_scale() {
        // Same utilization at different capacities → identical decisions.
        let decide = |capacity: u32, occupancy: u32| {
            let curve = VfCurve::mcd_default();
            let mut ctrl = FeedbackDvsController::for_domain(DomainId::Fp);
            let mut out = Vec::new();
            for i in 1..=30u64 {
                let ctx = ControllerCtx {
                    now: TimePs::from_ns(4 * i),
                    domain: DomainId::Fp,
                    current: curve.max_index(),
                    curve: &curve,
                    in_transition: false,
                    single_step_time: TimePs::from_ns(172),
                    sample_period: TimePs::from_ns(4),
                    retired: i * 1_000,
                };
                out.push(ctrl.on_sample(
                    &ctx,
                    QueueSample {
                        occupancy,
                        capacity,
                    },
                ));
            }
            out
        };
        assert_eq!(decide(16, 2), decide(32, 4));
    }

    #[test]
    fn reports_name() {
        assert_eq!(
            FeedbackDvsController::for_domain(DomainId::Int).name(),
            "feedback-dvs"
        );
    }

    #[test]
    fn state_round_trips_through_snapshot() {
        let mut h = Harness::new(FeedbackDvsController::for_domain(DomainId::Fp));
        for occ in [0, 0, 9, 14, 1] {
            h.interval(occ);
        }
        let mut w = mcd_snap::SnapWriter::new();
        h.ctrl.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = FeedbackDvsController::for_domain(DomainId::Fp);
        let mut r = mcd_snap::SnapReader::new(&bytes);
        restored.load_state(&mut r).expect("round-trip");
        r.finish().expect("no trailing bytes");
        let mut other = Harness::new(restored);
        other.current = h.current;
        other.retired = h.retired;
        other.now = h.now;
        for occ in [7, 0, 16, 3, 12] {
            assert_eq!(h.interval(occ), other.interval(occ), "diverged at {occ}");
        }
    }
}
