//! The attack/decay controller of Semeraro et al. (MICRO 2002) — the
//! paper's reference \[9\].
//!
//! Per fixed interval, the controller compares the interval's average
//! queue utilization to the previous interval's. A change above the
//! *reaction threshold* triggers an **attack**: a frequency jump in the
//! direction of the change, proportional to the attack factor. Small
//! changes trigger the **decay**: a slow steady drift downward that
//! harvests energy whenever the workload is not visibly growing.

use mcd_sim::{ControllerCtx, DomainId, DvfsAction, DvfsController, QueueSample};

use crate::interval::IntervalFramer;

/// Attack/decay tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackDecayConfig {
    /// Interval length in committed instructions (10 000 in \[9\]).
    pub interval_insts: u64,
    /// Utilization-change magnitude (fraction of capacity) that triggers
    /// an attack.
    pub threshold: f64,
    /// Attack step as a fraction of the full frequency range.
    pub attack: f64,
    /// Decay step as a fraction of the full frequency range.
    pub decay: f64,
}

impl Default for AttackDecayConfig {
    /// The MICRO 2002 settings: 10 k-instruction intervals, 1.7 %
    /// reaction threshold, 6 % attack, 0.17 % decay.
    fn default() -> Self {
        AttackDecayConfig {
            interval_insts: 10_000,
            threshold: 0.017,
            attack: 0.06,
            decay: 0.0017,
        }
    }
}

/// The attack/decay DVFS controller for one domain.
#[derive(Debug)]
pub struct AttackDecayController {
    cfg: AttackDecayConfig,
    framer: IntervalFramer,
    prev_util: Option<f64>,
    /// Fractional-step carry so the tiny decay is not lost to rounding.
    carry: f64,
    intervals: u64,
}

impl AttackDecayController {
    /// Builds a controller with explicit parameters.
    pub fn new(cfg: AttackDecayConfig) -> Self {
        AttackDecayController {
            framer: IntervalFramer::new(cfg.interval_insts),
            cfg,
            prev_util: None,
            carry: 0.0,
            intervals: 0,
        }
    }

    /// Builds the default (\[9\]) configuration; the parameters do not vary
    /// by domain, so `_domain` only mirrors the other schemes' interface.
    pub fn for_domain(_domain: DomainId) -> Self {
        AttackDecayController::new(AttackDecayConfig::default())
    }

    /// Completed decision intervals so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

impl DvfsController for AttackDecayController {
    fn on_sample(&mut self, ctx: &ControllerCtx<'_>, sample: QueueSample) -> Option<DvfsAction> {
        let summary = self.framer.observe(sample.occupancy as f64, ctx.retired)?;
        self.intervals += 1;
        let util = summary.mean_occupancy / sample.capacity as f64;
        let prev = self.prev_util.replace(util);
        let steps_in_range = ctx.curve.max_index().0 as f64;

        // First interval: no history, no action.
        let prev = prev?;

        let delta = util - prev;
        let step_frac = if delta.abs() >= self.cfg.threshold {
            // Attack in the direction of the utilization change.
            self.cfg.attack * delta.signum()
        } else {
            // Quiet interval: decay downward.
            -self.cfg.decay
        };
        let exact = step_frac * steps_in_range + self.carry;
        let whole = exact.trunc();
        self.carry = exact - whole;
        let steps = whole as i32;
        if steps == 0 {
            return None;
        }
        Some(DvfsAction::Step(steps))
    }

    fn name(&self) -> &'static str {
        "attack-decay"
    }

    fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.framer.save_state(w);
        w.put_bool(self.prev_util.is_some());
        if let Some(u) = self.prev_util {
            w.put_f64(u);
        }
        w.put_f64(self.carry);
        w.put_u64(self.intervals);
    }

    fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.framer.load_state(r)?;
        self.prev_util = if r.take_bool()? {
            Some(r.take_f64()?)
        } else {
            None
        };
        self.carry = r.take_f64()?;
        self.intervals = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{OpIndex, TimePs, VfCurve};

    struct Harness {
        curve: VfCurve,
        retired: u64,
        now: TimePs,
        current: OpIndex,
        ctrl: AttackDecayController,
    }

    impl Harness {
        fn new() -> Self {
            let curve = VfCurve::mcd_default();
            Harness {
                current: curve.max_index(),
                curve,
                retired: 0,
                now: TimePs::ZERO,
                ctrl: AttackDecayController::for_domain(DomainId::Int),
            }
        }

        /// One sample with the given occupancy; advances `retired` by
        /// `insts` instructions.
        fn sample(&mut self, occupancy: u32, insts: u64) -> Option<DvfsAction> {
            self.retired += insts;
            self.now += TimePs::from_ns(4);
            let ctx = ControllerCtx {
                now: self.now,
                domain: DomainId::Int,
                current: self.current,
                curve: &self.curve,
                in_transition: false,
                single_step_time: TimePs::from_ns(172),
                sample_period: TimePs::from_ns(4),
                retired: self.retired,
            };
            let a = self.ctrl.on_sample(
                &ctx,
                QueueSample {
                    occupancy,
                    capacity: 20,
                },
            );
            if let Some(act) = a {
                self.current = act.resolve(self.current, &self.curve);
            }
            a
        }

        /// Runs exactly one 10k-instruction interval at constant occupancy.
        fn interval(&mut self, occupancy: u32) -> Option<DvfsAction> {
            let mut last = None;
            for _ in 0..10 {
                if let Some(a) = self.sample(occupancy, 1000) {
                    last = Some(a);
                }
            }
            last
        }
    }

    #[test]
    fn first_interval_takes_no_action() {
        let mut h = Harness::new();
        assert_eq!(h.interval(10), None);
        assert_eq!(h.ctrl.intervals(), 1);
    }

    #[test]
    fn quiet_intervals_decay_downward() {
        let mut h = Harness::new();
        h.interval(10); // priming interval
        let start = h.current;
        for _ in 0..20 {
            h.interval(10); // identical utilization: decay path
        }
        assert!(h.current < start, "decay should have lowered frequency");
        // Decay is slow: 0.17% of 320 steps ≈ 0.54 steps/interval.
        let dropped = start.0 - h.current.0;
        assert!(
            (8..=14).contains(&dropped),
            "dropped {dropped} steps in 20 intervals"
        );
    }

    #[test]
    fn rising_utilization_attacks_upward() {
        let mut h = Harness::new();
        h.current = OpIndex(100);
        h.interval(5); // prime at 25% utilization
        let before = h.current;
        let action = h.interval(15); // 75%: change +50% >> threshold
        assert!(
            matches!(action, Some(DvfsAction::Step(s)) if s > 0),
            "{action:?}"
        );
        assert!(h.current > before);
        // Attack: 6% of 320 ≈ 19 steps.
        assert_eq!(h.current.0 - before.0, 19);
    }

    #[test]
    fn falling_utilization_attacks_downward() {
        let mut h = Harness::new();
        h.interval(15);
        let before = h.current;
        h.interval(5);
        assert!(h.current < before);
        assert_eq!(before.0 - h.current.0, 19);
    }

    #[test]
    fn small_changes_do_not_attack() {
        let mut h = Harness::new();
        h.interval(10);
        let before = h.current;
        h.interval(10); // |Δutil| = 0 < 1.7%: decay only
        let dropped = before.0 - h.current.0;
        assert!(
            dropped <= 1,
            "dropped {dropped}, expected at most the decay"
        );
    }

    #[test]
    fn reports_name() {
        assert_eq!(
            AttackDecayController::for_domain(DomainId::Fp).name(),
            "attack-decay"
        );
    }
}
