//! Property-based tests for the fixed-interval baselines.

use mcd_baselines::{AttackDecayController, IntervalFramer, PidConfig, PidController};
use mcd_power::{OpIndex, TimePs, VfCurve};
use mcd_sim::{ControllerCtx, DomainId, DvfsController, QueueSample};
use proptest::prelude::*;

/// Drives any controller over an occupancy sequence with a fixed
/// instructions-per-sample rate, applying every action.
fn drive(ctrl: &mut dyn DvfsController, occupancies: &[u8], insts_per_sample: u64) -> Vec<OpIndex> {
    let curve = VfCurve::mcd_default();
    let mut current = curve.max_index();
    let mut now = TimePs::ZERO;
    let mut retired = 0;
    let mut visited = vec![current];
    for &occ in occupancies {
        now += TimePs::from_ns(4);
        retired += insts_per_sample;
        let ctx = ControllerCtx {
            now,
            domain: DomainId::Int,
            current,
            curve: &curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired,
        };
        if let Some(a) = ctrl.on_sample(
            &ctx,
            QueueSample {
                occupancy: occ.min(20) as u32,
                capacity: 20,
            },
        ) {
            current = a.resolve(current, &curve);
            visited.push(current);
        }
    }
    visited
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both baselines keep the operating point on the curve for arbitrary
    /// occupancy streams and instruction rates.
    #[test]
    fn baselines_stay_on_curve(
        occupancies in proptest::collection::vec(0u8..=20, 1..3000),
        rate in 1u64..2000,
    ) {
        let max = VfCurve::mcd_default().max_index();
        let mut pid = PidController::for_domain(DomainId::Int);
        for p in drive(&mut pid, &occupancies, rate) {
            prop_assert!(p.0 <= max.0);
        }
        let mut ad = AttackDecayController::for_domain(DomainId::Int);
        for p in drive(&mut ad, &occupancies, rate) {
            prop_assert!(p.0 <= max.0);
        }
    }

    /// Fixed-interval schemes act at most once per completed interval.
    #[test]
    fn actions_bounded_by_interval_count(
        occupancies in proptest::collection::vec(0u8..=20, 1..3000),
        rate in 1u64..500,
    ) {
        let total_insts = occupancies.len() as u64 * rate;
        let intervals = total_insts / 10_000 + 1;
        let mut pid = PidController::for_domain(DomainId::Int);
        let actions = drive(&mut pid, &occupancies, rate).len() as u64 - 1;
        prop_assert!(
            actions <= intervals,
            "{actions} actions in {intervals} intervals"
        );
    }

    /// The interval framer's summaries always average within the observed
    /// occupancy range and cover every sample exactly once.
    #[test]
    fn framer_summaries_are_consistent(
        occupancies in proptest::collection::vec(0.0f64..20.0, 1..2000),
        interval in 10u64..5000,
        rate in 1u64..50,
    ) {
        let mut framer = IntervalFramer::new(interval);
        let mut retired = 0;
        let mut covered = 0u64;
        for &q in &occupancies {
            retired += rate;
            if let Some(s) = framer.observe(q, retired) {
                prop_assert!(s.mean_occupancy >= 0.0 && s.mean_occupancy <= 20.0);
                prop_assert!(s.samples > 0);
                covered += s.samples;
            }
        }
        prop_assert!(covered <= occupancies.len() as u64);
    }

    /// PID with zero gains never acts, whatever it observes.
    #[test]
    fn zero_gain_pid_is_inert(occupancies in proptest::collection::vec(0u8..=20, 1..2000)) {
        let cfg = PidConfig::for_domain(DomainId::Int).with_gains(0.0, 0.0, 0.0);
        let mut pid = PidController::new(cfg);
        let visited = drive(&mut pid, &occupancies, 100);
        prop_assert_eq!(visited.len(), 1);
    }
}
