//! Per-sample decision cost of each controller in *software*.
//!
//! Note the contrast with the paper's hardware claim (`repro hardware`):
//! in gates, the adaptive logic is ~15× cheaper than the PID scheme
//! because it needs no multipliers. In software the ranking flips — the
//! adaptive controller runs its window/relay logic on *every* sample,
//! while the fixed-interval schemes mostly just accumulate until the
//! interval boundary. Both observations are faces of the same design
//! point: the adaptive scheme trades per-decision complexity for
//! always-on responsiveness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_baselines::{AttackDecayController, PidController};
use mcd_power::{TimePs, VfCurve};
use mcd_sim::{ControllerCtx, DomainId, DvfsController, QueueSample};

fn drive(controller: &mut dyn DvfsController, samples: u64) {
    let curve = VfCurve::mcd_default();
    let mut now = TimePs::ZERO;
    let mut retired = 0u64;
    for i in 0..samples {
        now += TimePs::from_ns(4);
        retired += 2;
        let ctx = ControllerCtx {
            now,
            domain: DomainId::Int,
            current: curve.max_index(),
            curve: &curve,
            in_transition: false,
            single_step_time: TimePs::from_ns(172),
            sample_period: TimePs::from_ns(4),
            retired,
        };
        let occupancy = ((i * 7 + 3) % 20) as u32;
        let _ = criterion::black_box(controller.on_sample(
            &ctx,
            QueueSample {
                occupancy,
                capacity: 20,
            },
        ));
    }
}

fn controller_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_on_sample");
    let samples = 10_000u64;
    group.bench_function(BenchmarkId::new("adaptive", samples), |b| {
        b.iter(|| {
            let mut ctrl = AdaptiveDvfsController::new(AdaptiveConfig::for_domain(DomainId::Int));
            drive(&mut ctrl, samples);
        })
    });
    group.bench_function(BenchmarkId::new("pid", samples), |b| {
        b.iter(|| {
            let mut ctrl = PidController::for_domain(DomainId::Int);
            drive(&mut ctrl, samples);
        })
    });
    group.bench_function(BenchmarkId::new("attack_decay", samples), |b| {
        b.iter(|| {
            let mut ctrl = AttackDecayController::for_domain(DomainId::Int);
            drive(&mut ctrl, samples);
        })
    });
    group.finish();
}

criterion_group!(benches, controller_cost);
criterion_main!(benches);
