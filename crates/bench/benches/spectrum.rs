//! Spectral-estimation cost: FFT, periodogram, Welch and multitaper on
//! occupancy-sized series (the Figure 8 / Table 2 pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcd_analysis::spectrum::{fft, multitaper, periodogram, welch};

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            6.0 + 4.0 * (t / 977.0).sin() + 2.0 * (t / 37.0).cos()
        })
        .collect()
}

fn spectrum_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum");
    for &n in &[16_384usize, 131_072] {
        let x = series(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fft", n), &x, |b, x| {
            b.iter(|| {
                let mut re = x.clone();
                let mut im = vec![0.0; re.len()];
                fft(&mut re, &mut im);
                criterion::black_box(re[1])
            })
        });
        group.bench_with_input(BenchmarkId::new("periodogram", n), &x, |b, x| {
            b.iter(|| criterion::black_box(periodogram(x).total_variance()))
        });
        group.bench_with_input(BenchmarkId::new("welch_1024", n), &x, |b, x| {
            b.iter(|| criterion::black_box(welch(x, 1024).total_variance()))
        });
        group.bench_with_input(BenchmarkId::new("multitaper_4", n), &x, |b, x| {
            b.iter(|| criterion::black_box(multitaper(x, 4).total_variance()))
        });
    }
    group.finish();
}

criterion_group!(benches, spectrum_benches);
criterion_main!(benches);
