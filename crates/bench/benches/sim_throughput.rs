//! Simulator throughput: simulated instructions per second of host time,
//! for the baseline machine and under each DVFS scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcd_bench::runner::{run, RunConfig, Scheme};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    let ops = 20_000u64;
    group.throughput(Throughput::Elements(ops));
    group.sample_size(10);
    for scheme in [
        Scheme::Baseline,
        Scheme::Adaptive,
        Scheme::Pid,
        Scheme::AttackDecay,
    ] {
        group.bench_with_input(
            BenchmarkId::new("gzip", scheme.name()),
            &scheme,
            |b, &scheme| {
                let cfg = RunConfig::quick().with_ops(ops);
                b.iter(|| run("gzip", scheme, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
