//! Simulator throughput: simulated instructions per second of host time,
//! for the baseline machine and under each DVFS scheme, plus the
//! experiment harness's parallel fan-out and baseline memo cache.
//!
//! For a machine-readable throughput report of the real experiment
//! suite, use `repro all --quick --bench-out results/bench_sim.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcd_bench::parallel::default_jobs;
use mcd_bench::runner::{run, RunConfig, RunSet, Scheme};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    let ops = 20_000u64;
    group.throughput(Throughput::Elements(ops));
    group.sample_size(10);
    for scheme in [
        Scheme::Baseline,
        Scheme::Adaptive,
        Scheme::Pid,
        Scheme::AttackDecay,
    ] {
        group.bench_with_input(
            BenchmarkId::new("gzip", scheme.name()),
            &scheme,
            |b, &scheme| {
                let cfg = RunConfig::quick().with_ops(ops);
                b.iter(|| run("gzip", scheme, &cfg));
            },
        );
    }
    // Workload extremes for the engine's fast paths: adpcm_encode keeps
    // the INT queue busy (issue-loop bound), mcf misses caches constantly
    // (memory bound, mostly idle queues), swim exercises the FP domain.
    for name in ["adpcm_encode", "mcf", "swim"] {
        group.bench_with_input(BenchmarkId::new(name, "baseline"), &name, |b, &name| {
            let cfg = RunConfig::quick().with_ops(ops);
            b.iter(|| run(name, Scheme::Baseline, &cfg));
        });
    }
    group.finish();
}

/// The event-driven core against the `cycle_stepping` debug path, in
/// scheduler events per second. Each benchmark's throughput denominator
/// is its own dispatched-event count (probed once up front), so the
/// reported elements/sec reads directly as events/s; the probe also
/// prints the skip leverage — cycles absorbed by steady-state replay or
/// sample batching per dispatched event — which is exactly what the
/// stepping path gives up.
fn event_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core");
    let ops = 20_000u64;
    group.sample_size(10);
    for name in ["adpcm_encode", "mcf"] {
        for (mode, stepping) in [("event-driven", false), ("cycle-stepping", true)] {
            let mut cfg = RunConfig::quick().with_ops(ops);
            cfg.sim.cycle_stepping = stepping;
            let probe = run(name, Scheme::Adaptive, &cfg).expect("probe run");
            let m = &probe.metrics;
            println!(
                "{name}/{mode}: {} events, {} cycles skipped ({:.2} skipped/event)",
                m.events_processed,
                m.cycles_skipped,
                m.cycles_skipped as f64 / m.events_processed.max(1) as f64
            );
            group.throughput(Throughput::Elements(m.events_processed));
            group.bench_with_input(BenchmarkId::new(name, mode), &cfg, |b, cfg| {
                b.iter(|| run(name, Scheme::Adaptive, cfg));
            });
        }
    }
    group.finish();
}

fn harness_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    let ops = 10_000u64;
    let names = ["gzip", "swim", "adpcm_encode", "epic_decode"];
    group.throughput(Throughput::Elements(ops * names.len() as u64));
    group.sample_size(10);
    for jobs in [1usize, default_jobs()] {
        group.bench_with_input(
            BenchmarkId::new("fanout", format!("{jobs}-jobs")),
            &jobs,
            |b, &jobs| {
                let cfg = RunConfig::quick().with_ops(ops);
                b.iter(|| {
                    let rs = RunSet::new(jobs);
                    rs.par(names.to_vec(), |name| rs.run(name, Scheme::Adaptive, &cfg))
                });
            },
        );
    }
    // Baseline memoization: the second and later requests are free.
    group.bench_function("baseline_cache_hit", |b| {
        let cfg = RunConfig::quick().with_ops(ops);
        let rs = RunSet::new(1);
        let _ = rs.baseline("gzip", &cfg); // warm the cache
        b.iter(|| rs.baseline("gzip", &cfg));
    });
    group.finish();
}

criterion_group!(benches, sim_throughput, event_core, harness_throughput);
criterion_main!(benches);
